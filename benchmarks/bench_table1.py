"""Table 1: R_fast with uniform multiplexing degrees.

Regenerates the three panels — (a) single backup, torus; (b) double
backups, torus; (c) single backup, mesh — and checks the paper's
guarantees and shapes:

* mux=1 gives perfect coverage of all single failures,
* mux=3 gives perfect coverage of single *link* failures,
* both spare bandwidth and R_fast decrease with the mux degree,
* double backups reach single-backup-grade coverage at far lower spare
  (the paper's comparison of 2-backup mux=6 vs 1-backup mux=3/5),
* the torus double-backup panel hits the N/A condition at mux=1.

The printed tables put measured values next to the paper's.
"""

from __future__ import annotations

from conftest import DOUBLE_NODE_SAMPLES, FULL_SCALE, run_once

from repro.experiments import run_table1
from repro.experiments.setup import FAILURE_MODELS
from repro.util.tables import format_percent, format_table


def print_with_reference(result):
    print()
    print(result.format())
    reference = result.paper_reference()
    if reference is None or not FULL_SCALE:
        return
    rows = []
    for label, values in reference.items():
        rows.append(
            [f"paper: {label}"]
            + [format_percent(values.get(d)) for d in result.mux_degrees]
        )
    print(format_table(
        ["row"] + [f"mux={d}" for d in result.mux_degrees], rows,
        title="Paper-reported values (8x8 scale)",
    ))


def test_table1a_torus_single_backup(benchmark, torus_config):
    result = run_once(
        benchmark, run_table1, torus_config, num_backups=1,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    assert result.r_fast["1 link failure"][1] == 1.0
    assert result.r_fast["1 node failure"][1] == 1.0
    assert result.r_fast["1 link failure"][3] == 1.0
    spares = [result.spare[d] for d in result.mux_degrees]
    assert spares == sorted(spares, reverse=True)
    for model in FAILURE_MODELS:
        values = [result.r_fast[model][d] for d in result.mux_degrees]
        assert values == sorted(values, reverse=True)


def test_table1b_torus_double_backups(benchmark, torus_config):
    result = run_once(
        benchmark, run_table1, torus_config, num_backups=2,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    # Paper's headline comparison: double backups at mux=6 match (or beat)
    # a single backup at mux=3 on single-failure coverage with less spare.
    # (Only at full scale — 4x4 paths are too short for mux=6 to retain
    # coverage, which is itself consistent with the paper's model.)
    single = run_table1(torus_config, num_backups=1, mux_degrees=(3,),
                        double_node_samples=DOUBLE_NODE_SAMPLES)
    if result.spare[6] is not None and single.spare[3] is not None:
        assert result.spare[6] < single.spare[3]
        if FULL_SCALE:
            assert (result.r_fast["1 link failure"][6]
                    >= single.r_fast["1 link failure"][3] - 0.05)


def test_table1c_mesh_single_backup(benchmark, mesh_config):
    result = run_once(
        benchmark, run_table1, mesh_config, num_backups=1,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    assert result.r_fast["1 link failure"][1] == 1.0
    assert result.r_fast["1 link failure"][3] == 1.0
    # Mesh spare overhead exceeds the torus at equal degree (Section 7.1).
    torus_result = run_table1(
        type(mesh_config)(topology="torus", rows=mesh_config.rows,
                          cols=mesh_config.cols),
        num_backups=1, mux_degrees=(5,),
        double_node_samples=5,
    )
    assert result.spare[5] > torus_result.spare[5]
