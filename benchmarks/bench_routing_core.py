"""Microbenchmarks of the flat-index routing core.

These are the benchmarks gated by ``scripts/check_bench_regression.py``
against the committed ``benchmarks/BENCH_routing.json`` baseline.  The
reference-kernel benchmark is the *calibration anchor*: the gate compares
flat-kernel medians normalised by the anchor's median, so a slower or
faster CI machine shifts every number together and only genuine
regressions of flat-vs-reference relative speed trip the gate.
"""

from __future__ import annotations

import pytest

from repro.network import torus
from repro.network.reservations import ReservationLedger
from repro.routing import (
    RouteConstraints,
    reference_shortest_path,
    set_route_cache_enabled,
    shortest_path,
)
from repro.routing.shortest import hop_distance

TOPOLOGY = torus(8, 8, capacity=200.0)
DEEP_PAIR = (0, 36)  # torus antipode (4+4 wrap distance): the deepest search


@pytest.fixture
def no_cache():
    """Disable memoisation so the benchmark times the kernel itself."""
    previous = set_route_cache_enabled(False)
    yield
    set_route_cache_enabled(previous)


def test_calibration_reference_bfs(benchmark):
    """Calibration anchor — the retained dict-based reference kernel."""
    benchmark(reference_shortest_path, TOPOLOGY, *DEEP_PAIR)


def test_flat_bfs_uncached(benchmark, no_cache):
    benchmark(shortest_path, TOPOLOGY, *DEEP_PAIR)


def test_flat_bfs_cache_hit(benchmark):
    shortest_path(TOPOLOGY, *DEEP_PAIR)  # warm the route cache
    benchmark(shortest_path, TOPOLOGY, *DEEP_PAIR)


def test_flat_hop_distance_uncached(benchmark, no_cache):
    benchmark(hop_distance, TOPOLOGY, *DEEP_PAIR)


def test_flat_capacity_floor_uncached(benchmark, no_cache):
    ledger = ReservationLedger(TOPOLOGY)
    for link in list(TOPOLOGY.links())[::5]:
        ledger.reserve_primary(link, 180.0)
    constraints = RouteConstraints(link_admissible=ledger.capacity_floor(50.0))
    benchmark(shortest_path, TOPOLOGY, *DEEP_PAIR, constraints)


def test_flat_dijkstra_uncached(benchmark, no_cache):
    cost = lambda link: 1.0 + (hash(link) % 7)  # noqa: E731 - benchmark body
    benchmark(shortest_path, TOPOLOGY, *DEEP_PAIR, None, cost)
