"""Figure 9: average spare-bandwidth reservation vs. network load.

Regenerates the three panels: (a) single backup in the torus, (b) double
backups in the torus, (c) single backup in the mesh, each with curves for
mux = 0, 1, 3, 5, 6.

Paper shapes to verify in the printed output:
* spare grows roughly proportionally to load for every degree,
* higher mux degrees sit strictly below lower ones,
* without multiplexing (mux=0) each backup costs more than the primaries
  ("the network capacity is reduced by more than 50% for each backup"),
* the mesh multiplexes less effectively than the torus.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_figure9
from repro.experiments.setup import NetworkConfig


def test_figure9a_torus_single_backup(benchmark, torus_config):
    result = run_once(
        benchmark, run_figure9, torus_config, num_backups=1, checkpoints=8
    )
    print()
    print(result.format())
    final = {degree: result.final_spare(degree) for degree in result.curves}
    # Multiplexing monotonically reduces spare at equal load.
    degrees = sorted(d for d in final if final[d] is not None)
    spares = [final[d] for d in degrees]
    assert spares == sorted(spares, reverse=True)


def test_figure9b_torus_double_backups(benchmark, torus_config):
    result = run_once(
        benchmark, run_figure9, torus_config, num_backups=2,
        mux_degrees=(0, 1, 3, 5, 6), checkpoints=8,
    )
    print()
    print(result.format())
    # The paper: with high degrees the second backup is nearly free —
    # double-backup spare at mux=6 lands well below single-backup mux=0.
    single = run_figure9(torus_config, num_backups=1, mux_degrees=(0,),
                         checkpoints=1)
    assert result.final_spare(6) < single.final_spare(0)


def test_figure9c_mesh_single_backup(benchmark, mesh_config):
    result = run_once(
        benchmark, run_figure9, mesh_config, num_backups=1, checkpoints=8
    )
    print()
    print(result.format())
    # Mesh multiplexing saves less (relatively) than the torus (Sec. 7.1).
    torus_result = run_figure9(
        NetworkConfig(topology="torus", rows=mesh_config.rows,
                      cols=mesh_config.cols),
        num_backups=1, mux_degrees=(0, 6), checkpoints=1,
    )
    mesh_saving = 1 - result.final_spare(6) / result.final_spare(0)
    torus_saving = 1 - torus_result.final_spare(6) / torus_result.final_spare(0)
    assert mesh_saving < torus_saving
