"""Table 3: brute-force multiplexing comparison (Section 7.4).

Checks the paper's two findings:

* on the homogeneous torus, brute-force comes close to the proposed
  scheme (same total spare, evenly spread demand),
* on the mesh — where demand concentrates in the centre — the proposed
  scheme clearly outperforms brute-force at equal overhead.
"""

from __future__ import annotations

from conftest import DOUBLE_NODE_SAMPLES, FULL_SCALE, run_once

from repro.experiments import run_table1, run_table3
from repro.experiments.setup import FAILURE_MODELS
from repro.util.tables import format_percent, format_table


def print_with_reference(result):
    print()
    print(result.format())
    reference = result.paper_reference()
    if reference is None or not FULL_SCALE:
        return
    rows = []
    for label, values in reference.items():
        rows.append(
            [f"paper: {label}"]
            + [format_percent(values.get(d)) for d in result.mux_degrees]
        )
    print(format_table(
        ["row"] + [f"mux={d}" for d in result.mux_degrees], rows,
        title="Paper-reported values (8x8 scale)",
    ))


def test_table3a_torus(benchmark, torus_config):
    brute = run_once(
        benchmark, run_table3, torus_config,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(brute)
    proposed = run_table1(torus_config,
                          double_node_samples=DOUBLE_NODE_SAMPLES)
    print(proposed.format())
    # Homogeneous torus: brute-force is competitive — within ~12 points of
    # the proposed scheme everywhere (the paper calls the gap "marginal").
    for model in FAILURE_MODELS:
        for degree in brute.mux_degrees:
            b = brute.r_fast[model][degree]
            p = proposed.r_fast[model][degree]
            if b is not None and p is not None:
                assert abs(p - b) < 0.15, (model, degree, p, b)


def test_table3b_mesh(benchmark, mesh_config):
    brute = run_once(
        benchmark, run_table3, mesh_config,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(brute)
    proposed = run_table1(mesh_config,
                          double_node_samples=DOUBLE_NODE_SAMPLES)
    print(proposed.format())
    # Inhomogeneous demand: the proposed scheme wins clearly at the low
    # degrees, where its targeted placement matters most (paper: 100% vs
    # 96.18% at mux=1 and 100% vs 89.74% at mux=3 for link failures).
    assert proposed.r_fast["1 link failure"][1] == 1.0
    assert brute.r_fast["1 link failure"][1] < 1.0
    assert (proposed.r_fast["1 link failure"][3]
            > brute.r_fast["1 link failure"][3])
