"""Microbenchmarks of the churn workload path.

Gated by ``scripts/check_bench_regression.py`` against the committed
``benchmarks/BENCH_churn.json`` baseline (pass ``--baseline`` to point
the gate at it).  The reference-kernel benchmark is the same calibration
anchor the routing baseline uses: medians are normalised by it so the
runner's absolute speed cancels out and only a genuine slowdown of the
churn path relative to the reference kernel trips the gate.
"""

from __future__ import annotations

from repro.core import BCPNetwork, BatchRequest
from repro.network import torus
from repro.obs.registry import MetricsRegistry
from repro.routing import reference_shortest_path
from repro.workload import ChurnConfig, ChurnEngine

TOPOLOGY = torus(8, 8, capacity=200.0)
DEEP_PAIR = (0, 36)  # torus antipode: the deepest search

CHURN_CONFIG = ChurnConfig(
    arrival_rate=50.0,
    holding_time=2.0,
    duration=10.0,
    epoch_interval=2.0,
    seed=0,
    pairs=16,
)

BATCH = [BatchRequest(0, 36) for _ in range(16)]


def test_calibration_reference_bfs(benchmark):
    """Calibration anchor — the retained dict-based reference kernel."""
    benchmark(reference_shortest_path, TOPOLOGY, *DEEP_PAIR)


def test_churn_run(benchmark):
    """A complete ~500-arrival churn run, fresh network each round."""

    def run():
        network = BCPNetwork(torus(8, 8, capacity=200.0))
        engine = ChurnEngine(network, CHURN_CONFIG, metrics=MetricsRegistry())
        return engine.run()

    stats = benchmark(run)
    assert stats.clean


def test_establish_batch_same_pair(benchmark):
    """16 same-pair admissions through one shared routing pass."""

    def run():
        network = BCPNetwork(torus(8, 8, capacity=200.0))
        return network.establish_batch(BATCH)

    results = benchmark(run)
    assert len(results) == len(BATCH)


def test_establish_sequential_same_pair(benchmark):
    """The same 16 admissions routed one at a time (the baseline cost)."""

    def run():
        network = BCPNetwork(torus(8, 8, capacity=200.0))
        return [network.establish(r.src, r.dst) for r in BATCH]

    results = benchmark(run)
    assert len(results) == len(BATCH)


def test_churn_cycle_establish_teardown(benchmark):
    """One establish → teardown cycle with backups (the bulk-release path)."""
    from repro.channels.qos import FaultToleranceQoS

    network = BCPNetwork(torus(8, 8, capacity=200.0))
    qos = FaultToleranceQoS(num_backups=2, mux_degree=3)

    def cycle():
        connection = network.establish(0, 36, ft_qos=qos)
        network.teardown(connection)

    benchmark(cycle)
    assert network.network_load() == 0.0
