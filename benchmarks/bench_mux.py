"""Multiplexing-engine throughput: naive vs incremental vs vectorized.

The ISSUE's headline cells: admission/teardown latency on one hot link at
10³/10⁴/10⁵ resident backups, vectorized kernel
(:class:`~repro.core.muxkernel.VectorLinkMux`) against the per-pair
reference (:class:`~repro.core.multiplexing.LinkMuxState`), plus the
from-scratch ("naive") spare recompute both ways.  Gated in CI by
``scripts/check_bench_regression.py`` against ``benchmarks/BENCH_mux.json``
(the 10⁵ cells are excluded there via ``-k "not _100k"``; run them
locally for the headline speedup).

Populating a 10⁵-entry link through either incremental path is O(n²)
total work, so the states are *bulk-loaded*: primaries are drawn from a
fixed pool of distinct paths, requirements come from a pool×degree group
computation (exact, because bandwidths are uniformly 1.0 so every fold
order yields the same integer-valued float), and the reference twin is
transplanted via :func:`~repro.core.muxkernel.reference_link_state`.
``test_bulk_loader_matches_sequential`` proves the loader against real
sequential admission; the naive cells are restricted to populations where
O(n²) terminates (their growth ratio is the point of
``bench_scalability``).
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.muxkernel import (
    ComponentArena,
    VectorLinkMux,
    reference_link_state,
)
from repro.core.overlap import ComponentSpace, OverlapPolicy
from repro.network import torus
from repro.network.components import LinkId
from repro.routing import reference_shortest_path
from repro.routing.paths import Path

LINK = LinkId("hot", "spot")
CALIBRATION_TOPOLOGY = torus(8, 8, capacity=200.0)
DEEP_PAIR = (0, 36)

#: Primaries are drawn from this pool of distinct paths on a 16×16 torus
#: (1280 components — a realistically wide arena).
POOL_TOPOLOGY = torus(16, 16)
POOL_SIZE = 512
DEGREES = (1, 3, 5, 6)


def _random_walk_path(topology, rng: random.Random, max_len: int = 9) -> Path:
    nodes_pool = list(topology.nodes())
    while True:
        node = rng.choice(nodes_pool)
        walk, seen = [node], {node}
        target = rng.randint(3, max_len)
        while len(walk) < target:
            candidates = [
                nxt for nxt in topology.successors(walk[-1]) if nxt not in seen
            ]
            if not candidates:
                break
            node = rng.choice(candidates)
            walk.append(node)
            seen.add(node)
        if len(walk) >= 2:
            return Path(walk)


def _component_pool(seed: int = 0) -> list[frozenset]:
    rng = random.Random(seed)
    policy = OverlapPolicy()
    pool: list[frozenset] = []
    seen: set[frozenset] = set()
    while len(pool) < POOL_SIZE:
        components = policy.component_set(_random_walk_path(POOL_TOPOLOGY, rng))
        if components not in seen:
            seen.add(components)
            pool.append(components)
    return pool


_POOL = _component_pool()


def build_kernel_state(population: int, seed: int = 1) -> VectorLinkMux:
    """A kernel link state with ``population`` resident backups, loaded in
    O(pool² + n) instead of the O(n²) a replayed admission history costs.

    Exact: all bandwidths are 1.0, so every entry's requirement is
    ``1.0 + |Π|`` — an integer-valued float identical under any summation
    order — and the incremental history would produce the same columns.
    """
    arena = ComponentArena()
    state = VectorLinkMux(LINK, OverlapPolicy(), arena)
    pool_rows = np.array([arena.row(c) for c in _POOL], dtype=np.int64)
    rng = random.Random(seed)
    pick = np.array(
        [rng.randrange(POOL_SIZE) for _ in range(population)], dtype=np.int64
    )
    deg_idx = np.array(
        [rng.randrange(len(DEGREES)) for _ in range(population)], dtype=np.int64
    )
    for cid in range(population):
        state._append(
            cid, 1.0, DEGREES[deg_idx[cid]], 1.0, int(pool_rows[pick[cid]])
        )
    # Pairwise shared counts between pool members (pool² popcount rows).
    shared = np.stack(
        [arena.shared_counts(pool_rows, int(row)) for row in pool_rows]
    )
    sizes = np.array([len(c) for c in _POOL], dtype=np.int64)
    # Entries per (pool path, degree) group.
    counts = np.zeros((POOL_SIZE, len(DEGREES)), dtype=np.int64)
    np.add.at(counts, (pick, deg_idx), 1)
    degree_values = np.array(DEGREES, dtype=np.int64)
    # |Π| per group: conflicting = lower-or-equal degree AND sc >= degree
    # (every DEGREES value is > 0), minus the entry itself when its own
    # primary qualifies (sc(self, self) = |components| >= degree).
    requirement_by_group = np.zeros((POOL_SIZE, len(DEGREES)))
    for di, degree in enumerate(DEGREES):
        eligible = counts[:, degree_values <= degree].sum(axis=1)
        conflicts = (shared >= degree) @ eligible
        self_term = (sizes >= degree).astype(np.int64)
        requirement_by_group[:, di] = 1.0 + conflicts - self_term
    state._requirement[:population] = requirement_by_group[pick, deg_idx]
    state._spare_required = (
        float(state._requirement[:population].max()) if population else 0.0
    )
    return state


def build_reference_state(population: int, seed: int = 1):
    """The per-pair twin of :func:`build_kernel_state`, with pre-resolved
    integer masks (its fastest pair test) and no Π sets (see
    :func:`reference_link_state`; the cycle only removes fresh ids).
    Returns ``(state, space)`` — masks are only meaningful under the
    space that interned them."""
    space = ComponentSpace()
    state = reference_link_state(
        build_kernel_state(population, seed), space=space, conflicts=False
    )
    return state, space


_CANDIDATE = _POOL[7]
_CANDIDATE_ID = 10_000_000


def _kernel_cycle(state: VectorLinkMux):
    state.add(_CANDIDATE_ID, 1.0, 3, _CANDIDATE, len(_CANDIDATE))
    state.remove(_CANDIDATE_ID)


def _reference_cycle(state, mask: int):
    state.add(_CANDIDATE_ID, 1.0, 3, _CANDIDATE, len(_CANDIDATE), mask)
    state.remove(_CANDIDATE_ID)


def test_calibration_reference_bfs(benchmark):
    """Calibration anchor — the retained dict-based reference kernel."""
    benchmark(reference_shortest_path, CALIBRATION_TOPOLOGY, *DEEP_PAIR)


def test_bulk_loader_matches_sequential():
    """The bulk loader is exact: same columns as replayed admission."""
    loaded = build_kernel_state(300, seed=5)
    arena = ComponentArena()
    replayed = VectorLinkMux(LINK, OverlapPolicy(), arena)
    for pos in range(len(loaded)):
        entry = loaded.entry(int(loaded._channel_ids[pos]))
        replayed.add(
            entry.channel_id, entry.bandwidth, entry.mux_degree,
            entry.primary_components, entry.primary_count,
        )
    assert replayed.spare_required() == loaded.spare_required()
    for pos in range(len(loaded)):
        cid = int(loaded._channel_ids[pos])
        assert replayed.entry(cid).requirement == loaded.entry(cid).requirement
    assert loaded.spare_required() == loaded.spare_required_recomputed()


# ----------------------------------------------------------------------
# admission/teardown cycle: vectorized kernel
# ----------------------------------------------------------------------
def test_mux_kernel_cycle_1k(benchmark):
    state = build_kernel_state(1_000)
    benchmark(_kernel_cycle, state)
    assert len(state) == 1_000


def test_mux_kernel_cycle_10k(benchmark):
    state = build_kernel_state(10_000)
    benchmark(_kernel_cycle, state)
    assert len(state) == 10_000


def test_mux_kernel_cycle_100k(benchmark):
    state = build_kernel_state(100_000)
    benchmark(_kernel_cycle, state)
    assert len(state) == 100_000


# ----------------------------------------------------------------------
# admission/teardown cycle: per-pair reference (incremental)
# ----------------------------------------------------------------------
def test_mux_reference_cycle_1k(benchmark):
    state, space = build_reference_state(1_000)
    benchmark(_reference_cycle, state, space.mask(_CANDIDATE))
    assert len(state) == 1_000


def test_mux_reference_cycle_10k(benchmark):
    state, space = build_reference_state(10_000)
    benchmark(_reference_cycle, state, space.mask(_CANDIDATE))
    assert len(state) == 10_000


def test_mux_reference_cycle_100k(benchmark):
    state, space = build_reference_state(100_000)
    benchmark(_reference_cycle, state, space.mask(_CANDIDATE))
    assert len(state) == 100_000


# ----------------------------------------------------------------------
# bulk teardown (the churn path): remove_many vs one-by-one.  Each round
# tears down the newest 100 residents (tail-first, the churn common
# case) and re-admits them in original order, so every round sees the
# identical layout.
# ----------------------------------------------------------------------
TEARDOWN_BATCH = 100


def _teardown_refill_kernel(state: VectorLinkMux):
    n = len(state)
    victims = [
        int(state._channel_ids[n - 1 - i]) for i in range(TEARDOWN_BATCH)
    ]
    entries = [state.entry(cid) for cid in victims]
    state.remove_many(victims)
    for entry in reversed(entries):
        state.add(
            entry.channel_id, entry.bandwidth, entry.mux_degree,
            entry.primary_components, entry.primary_count,
        )


def test_mux_kernel_bulk_teardown_10k(benchmark):
    state = build_kernel_state(10_000)
    benchmark(_teardown_refill_kernel, state)
    assert len(state) == 10_000
    assert state.spare_required() == build_kernel_state(10_000).spare_required()


def test_mux_reference_bulk_teardown_10k(benchmark):
    kernel = build_kernel_state(10_000)
    space = ComponentSpace()
    reference = reference_link_state(kernel, space=space, conflicts=False)
    victims = list(range(10_000 - TEARDOWN_BATCH, 10_000))
    # The transplant skipped Π materialization (O(n²) at this size); the
    # teardown path only needs the *reverse* memberships of the victims,
    # one vectorized pass each via the kernel twin.
    n = len(kernel)
    rows = kernel._row[:n]
    degrees = kernel._degree[:n]
    ids = kernel._channel_ids[:n]
    for cid in victims:
        pos = kernel._ids[cid]
        shared = kernel.arena.shared_counts(rows, int(rows[pos]))
        reverse = VectorLinkMux._reverse_pi_mask(
            int(degrees[pos]), degrees, shared
        )
        reverse[pos] = False
        for other_id in ids[reverse]:
            reference._entries[int(other_id)].conflicts.add(cid)

    def cycle():
        order = list(reference._entries)[-TEARDOWN_BATCH:]
        entries = [reference._entries[cid] for cid in reversed(order)]
        for entry in entries:
            reference.remove(entry.channel_id)
        for entry in reversed(entries):
            reference.add(
                entry.channel_id, entry.bandwidth, entry.mux_degree,
                entry.primary_components, entry.primary_count, entry.mask,
            )

    benchmark(cycle)
    assert len(reference) == 10_000
    assert reference.spare_required() == kernel.spare_required()


# ----------------------------------------------------------------------
# naive from-scratch spare recompute (Section 6's O(n²) baseline);
# larger populations are pointless — the growth ratio is the claim and
# bench_scalability measures it directly.
# ----------------------------------------------------------------------
def test_mux_naive_recompute_1k(benchmark):
    state = build_kernel_state(1_000)
    reference = reference_link_state(state, space=ComponentSpace())
    result = benchmark(reference.spare_required_recomputed)
    assert result == state.spare_required()


def test_mux_kernel_naive_recompute_1k(benchmark):
    state = build_kernel_state(1_000)
    result = benchmark(state.spare_required_recomputed)
    assert result == state.spare_required()
