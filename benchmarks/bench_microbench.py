"""Microbenchmarks of the library's hot paths: routing, establishment,
scenario evaluation, and the protocol event loop."""

from __future__ import annotations

import pytest

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.experiments.workloads import all_pairs, establish_workload
from repro.faults import FailureScenario, all_single_node_failures
from repro.protocol import ProtocolConfig, simulate_scenario
from repro.recovery import RecoveryEvaluator
from repro.routing import shortest_path


@pytest.fixture(scope="module")
def loaded():
    network = BCPNetwork(torus(8, 8, capacity=200.0))
    establish_workload(
        network,
        all_pairs(network.topology),
        FaultToleranceQoS(num_backups=1, mux_degree=3),
    )
    return network


def test_shortest_path_speed(benchmark):
    topology = torus(8, 8)
    benchmark(shortest_path, topology, 0, 63)


def test_establish_connection_speed(benchmark):
    network = BCPNetwork(torus(8, 8, capacity=1e9))
    qos = FaultToleranceQoS(num_backups=1, mux_degree=3)
    pairs = iter(all_pairs(network.topology) * 40)

    def establish():
        src, dst = next(pairs)
        network.establish(src, dst, ft_qos=qos)

    benchmark(establish)


def test_scenario_evaluation_speed(benchmark, loaded):
    evaluator = RecoveryEvaluator(loaded)
    scenarios = all_single_node_failures(loaded.topology)
    index = [0]

    def evaluate():
        result = evaluator.evaluate(scenarios[index[0] % len(scenarios)])
        index[0] += 1
        return result

    benchmark(evaluate)


def test_protocol_simulation_speed(benchmark):
    network = BCPNetwork(torus(4, 4, capacity=200.0))
    establish_workload(
        network,
        all_pairs(network.topology),
        FaultToleranceQoS(num_backups=1, mux_degree=3),
    )
    victim = next(iter(network.topology.links()))
    scenario = FailureScenario.of_links([victim])

    def run():
        return simulate_scenario(network, scenario, ProtocolConfig(),
                                 horizon=200.0)

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics.recovered_count() >= 0
