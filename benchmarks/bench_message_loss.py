"""Figure 8: message loss during failure recovery, quantified.

The paper's Fig. 8 shows which data messages a failure costs.  This
benchmark runs a regulated message stream over connections while failing
each primary link in turn and checks:

* every lost message was sent inside the failure-to-resumption window
  (plus the in-flight exposure),
* losses grow with the failure's distance from the source,
* delivery is total outside the loss window.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import FULL_SCALE, run_once

from repro.experiments import run_message_loss
from repro.experiments.setup import NetworkConfig


def test_figure8_message_loss(benchmark):
    config = NetworkConfig(rows=6 if FULL_SCALE else 4,
                           cols=6 if FULL_SCALE else 4)
    result = run_once(
        benchmark, run_message_loss, config,
        sample_connections=6 if FULL_SCALE else 3,
    )
    print()
    print(result.format())
    assert result.measurements
    by_connection = defaultdict(list)
    for m in result.measurements:
        assert m.delivered + m.lost == m.sent
        if m.service_disruption is not None:
            budget = result.message_rate * (
                m.service_disruption + 2 * (m.failed_link_index + 2)
            ) + 2
            assert m.lost <= budget, (m, budget)
        by_connection[m.connection_id].append(m)
    # Distance-from-source effect: last link's failure costs at least as
    # many messages as the first link's.
    monotone_checked = 0
    for measurements in by_connection.values():
        measurements.sort(key=lambda m: m.failed_link_index)
        if len(measurements) >= 2 and all(
            m.service_disruption is not None for m in measurements
        ):
            assert measurements[0].lost <= measurements[-1].lost + 1
            monotone_checked += 1
    assert monotone_checked > 0
