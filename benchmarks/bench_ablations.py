"""Design-choice ablations (see DESIGN.md's modelling decisions)."""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments.ablations import run_ablations
from repro.experiments.setup import NetworkConfig


def test_design_choice_ablations(benchmark):
    size = 8 if FULL_SCALE else 4
    result = run_once(
        benchmark, run_ablations, NetworkConfig(rows=size, cols=size),
        mux_degree=5,
    )
    print()
    print(result.format())
    baseline = result.row("baseline (priority order)")

    # With UNIFORM degrees every connection has the same priority, so the
    # activation orders only differ by tie-breaking noise.  (Priority's
    # real payoff is per-class — Table 2 and bench_priority cover it.)
    for variant in ("establishment order", "random order"):
        assert abs(result.row(variant).r_fast_link
                   - baseline.r_fast_link) < 0.01
        assert abs(result.row(variant).r_fast_node
                   - baseline.r_fast_node) < 0.02

    # Free capacity at 33% load hides most multiplexing failures — which
    # is why the paper's strict spare-only accounting matters.
    fallback = result.row("free-capacity fallback")
    assert fallback.r_fast_link >= baseline.r_fast_link

    # The λ-boundary (exact S) variant barely moves either number at the
    # paper's scale.  (On tiny 4x4 networks most paths sit right on the
    # sc == α boundary, so the gap balloons — skip the tight check there.)
    exact = result.row("exact S comparison")
    if FULL_SCALE:
        assert abs(exact.spare - baseline.spare) < 0.05
        assert abs(exact.r_fast_link - baseline.r_fast_link) < 0.05

    # Endpoint counting is load-bearing: dropping it reclaims a lot of
    # spare but costs real coverage (same-endpoint primaries fail together
    # yet their backups get multiplexed).
    no_endpoints = result.row("endpoints not counted")
    assert no_endpoints.spare < baseline.spare
    assert no_endpoints.r_fast_link < baseline.r_fast_link
