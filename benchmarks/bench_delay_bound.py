"""Section 5.3: measured recovery delay against the Γ bound.

Runs the protocol simulation for every link of a sample of primaries and
verifies every measured service disruption is within

    Γ ≤ (K−1)·D_max + 2(b−1)(K−1)·D_max.

Also reproduces the qualitative claim that failures near the source
recover fastest under Scheme 3.
"""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments import run_delay_bound
from repro.experiments.setup import NetworkConfig


def test_delay_within_bound_single_backup(benchmark):
    config = NetworkConfig(rows=6 if FULL_SCALE else 4,
                           cols=6 if FULL_SCALE else 4)
    result = run_once(
        benchmark, run_delay_bound, config,
        num_backups=1, sample_connections=8 if FULL_SCALE else 4,
    )
    print()
    print(result.format())
    assert result.measurements
    assert result.violations == []


def test_delay_within_bound_double_backups(benchmark):
    config = NetworkConfig(rows=6 if FULL_SCALE else 4,
                           cols=6 if FULL_SCALE else 4)
    result = run_once(
        benchmark, run_delay_bound, config,
        num_backups=2, sample_connections=8 if FULL_SCALE else 4,
    )
    print()
    print(result.format())
    assert result.violations == []
    # The b=2 bound is looser; measurements should sit well inside it.
    slack = [m.bound - m.measured for m in result.measurements
             if m.measured is not None]
    assert min(slack) >= 0


def test_failure_near_source_recovers_faster(benchmark):
    config = NetworkConfig(rows=4, cols=4)
    result = run_once(benchmark, run_delay_bound, config,
                      num_backups=1, sample_connections=6)
    by_connection: dict[int, list] = {}
    for m in result.measurements:
        if m.measured is not None:
            by_connection.setdefault(m.connection_id, []).append(m)
    checked = 0
    for measurements in by_connection.values():
        measurements.sort(key=lambda m: m.failed_link_index)
        if len(measurements) >= 2:
            assert measurements[0].measured <= measurements[-1].measured
            checked += 1
    assert checked > 0
