"""Section 4.3 ablation: the two priority-based activation variants.

Compares three runtime policies under contended spare pools:

* none — first activation to arrive draws the spare,
* activation delay — low-priority activations wait proportionally to
  their mux degree (the paper's always-paid wait),
* preemption — a higher-priority activation evicts an activated
  lower-priority backup.

Checks the paper's trade-off: both variants protect the high-priority
connection, the delay variant taxes low-priority recovery always, and
preemption only taxes it when contention actually occurs.
"""

from __future__ import annotations

from conftest import run_once

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.faults import FailureScenario
from repro.protocol import ProtocolConfig, simulate_scenario
from repro.util.tables import format_table


def build_contended():
    """Two same-route connections: the backup pool holds one unit."""
    network = BCPNetwork(torus(4, 4))
    low = network.establish(
        0, 2, ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=15)
    )
    high = network.establish(
        0, 2, ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=14)
    )
    scenario = FailureScenario.of_links([low.primary.path.links[0]])
    return network, low, high, scenario


def run_variants():
    network, low, high, scenario = build_contended()
    variants = {
        "none": ProtocolConfig(),
        "activation delay": ProtocolConfig(activation_delay_per_degree=0.5),
        "preemption": ProtocolConfig(preemption=True),
    }
    rows = {}
    for name, config in variants.items():
        metrics = simulate_scenario(network, scenario, config)
        high_rec = metrics.recoveries[high.connection_id]
        low_rec = metrics.recoveries[low.connection_id]
        rows[name] = (high_rec, low_rec, metrics.preemptions)
    return rows


def test_priority_activation_variants(benchmark):
    rows = run_once(benchmark, run_variants)
    table = [
        [
            name,
            "yes" if high.recovered else "no",
            "-" if high.service_disruption is None
            else f"{high.service_disruption:.2f}",
            "yes" if low.recovered else "no",
            preemptions,
        ]
        for name, (high, low, preemptions) in rows.items()
    ]
    print()
    print(format_table(
        ["variant", "high-prio recovered", "high-prio Γ",
         "low-prio recovered", "preemptions"],
        table,
        title="Section 4.3: priority-based activation variants",
    ))
    # Both priority variants protect the high-priority connection.
    assert rows["activation delay"][0].recovered
    assert rows["preemption"][0].recovered
    assert rows["preemption"][2] >= 1
    # The delay variant imposes the wait (14 * 0.5) on the high-priority
    # connection's own activation too — visible as a larger disruption
    # than under preemption.
    assert (rows["activation delay"][0].service_disruption
            > rows["preemption"][0].service_disruption)
