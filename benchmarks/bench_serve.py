"""Microbenchmarks of the admission service (repro.serve).

The server runs in-process over a ``socketpair`` in a daemon thread, so
these measure the full wire protocol — encode, frame, dispatch, admit,
respond — without kernel TCP or process-spawn noise.  Gated by
``scripts/check_bench_regression.py`` against the committed
``benchmarks/BENCH_serve.json`` baseline; medians are normalised by the
same reference-BFS calibration anchor the other suites use.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.bcp import BCPNetwork
from repro.network import torus
from repro.obs.registry import MetricsRegistry
from repro.routing import reference_shortest_path
from repro.scenario import (
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.serve import AdmissionServer, MessageStream, ServeClient
from repro.serve.state import restore_network, snapshot_network
from repro.workload import ChurnConfig, ChurnEngine

ANCHOR_TOPOLOGY = torus(8, 8, capacity=200.0)
DEEP_PAIR = (0, 36)  # torus antipode: the deepest search

SPEC = ScenarioSpec(
    name="serve/bench",
    topology=TopologySpec(family="torus", rows=4, cols=4, capacity=160.0),
    workload=WorkloadSpec(
        kind="churn", arrival_rate=6.0, holding_time=4.0, duration=10.0,
        bandwidth=4.0, batch_window=0.5, epoch_interval=5.0,
        eval_scenarios=0, pairs=16,
    ),
    protocol=ProtocolSpec(num_backups=1, mux_degree=2),
    seed=3,
)

ESTABLISH_ITEM = {
    "src": 0,
    "dst": 5,
    "traffic": {"bandwidth": 4.0},
    "ft_qos": {"num_backups": 1, "mux_degree": 2},
}


class PairClient(ServeClient):
    """A ServeClient speaking over one end of a socketpair."""

    def __init__(self, sock) -> None:
        super().__init__("socketpair")
        self._sock = sock

    def connect(self, retry_window: float = 0.0) -> dict:
        if self._stream is None:
            self._stream = MessageStream(self._sock)
        return self.call("hello")


@pytest.fixture
def remote():
    """A handshaken PairClient against an in-thread AdmissionServer."""
    server_sock, client_sock = socket.socketpair()
    server = AdmissionServer(SPEC, workers=1, metrics=MetricsRegistry())
    server._running = True
    thread = threading.Thread(
        target=server.serve_connection, args=(server_sock,), daemon=True
    )
    thread.start()
    client = PairClient(client_sock)
    client.connect()
    yield client
    client.close()
    thread.join(timeout=5.0)
    server_sock.close()


def populated_network() -> BCPNetwork:
    network = BCPNetwork(SPEC.topology.build())
    config = ChurnConfig(
        arrival_rate=6.0, holding_time=4.0, duration=10.0,
        epoch_interval=5.0, eval_scenarios=0, pairs=16,
        num_backups=1, mux_degree=2, seed=3,
    )
    ChurnEngine(network, config, metrics=MetricsRegistry()).run()
    return network


def test_calibration_reference_bfs(benchmark):
    """Calibration anchor — the retained dict-based reference kernel."""
    benchmark(reference_shortest_path, ANCHOR_TOPOLOGY, *DEEP_PAIR)


def test_serve_ping_round_trip(benchmark, remote):
    """Protocol floor: one no-op request through the full wire path."""
    response = benchmark(remote.call, "ping")
    assert response["ok"] is True


def test_serve_establish_teardown_round_trip(benchmark, remote):
    """One admission plus its teardown, both over the wire — the serve
    loop's steady-state unit of work under churn."""

    def cycle():
        response = remote.call("establish", requests=[ESTABLISH_ITEM])
        [result] = response["results"]
        remote.call("teardown", connection_id=result["connection_id"])
        return result

    result = benchmark(cycle)
    assert result["ok"] is True


def test_serve_snapshot_encode(benchmark):
    """Encoding a ~16-connection network into a repro.snapshot/1 dict."""
    network = populated_network()
    snapshot = benchmark(snapshot_network, network)
    assert snapshot["schema"] == "repro.snapshot/1"


def test_serve_snapshot_restore(benchmark):
    """Restoring that snapshot into a freshly built network (the server
    restart path: decode, re-register, replay mux adds, transplant)."""
    snapshot = snapshot_network(populated_network())

    def run():
        fresh = BCPNetwork(SPEC.topology.build())
        restore_network(fresh, snapshot)
        return fresh

    restored = benchmark(run)
    assert restored.num_connections == len(snapshot["connections"])
