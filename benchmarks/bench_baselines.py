"""Section 8 quantified: the restoration-scheme trade-off triangle.

Checks the paper's positioning of BCP between the reactive and
local-detour families:

* local detours: full single-link coverage with the *largest* spare and
  positive path stretch after recovery,
* reactive: zero standing overhead but no guarantee (coverage < 100%) and
  re-establishment-class latency,
* BCP at mux=3: full single-link coverage at a spare budget *below* the
  local-detour plan, with activation-class latency.
"""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments import run_baseline_comparison
from repro.experiments.setup import NetworkConfig


def test_restoration_scheme_triangle(benchmark):
    size = 8 if FULL_SCALE else 4
    config = NetworkConfig(rows=size, cols=size)
    result = run_once(
        benchmark, run_baseline_comparison, config,
        reactive_samples=None if FULL_SCALE else 20,
    )
    print()
    print(result.format())

    bcp = result.scheme("BCP (1 backup, mux=3)")
    reactive = result.scheme("reactive re-establishment")
    detour = result.scheme("pre-planned local detours")

    # Guarantees: BCP at mux=3 and local detours both cover all single
    # link failures; reactive cannot do better.
    assert bcp.coverage_single_link == 1.0
    assert detour.coverage_single_link == 1.0
    assert reactive.coverage_single_link <= 1.0

    # Overhead ordering: reactive (0) < BCP < local detours.
    assert reactive.spare_fraction == 0.0
    assert 0.0 < bcp.spare_fraction < detour.spare_fraction

    # Post-recovery stretch: local detours always stretch (>= +1 hop per
    # patched link); BCP's activated backups stretch less on average.
    assert detour.mean_stretch >= 1.0
    assert bcp.mean_stretch < detour.mean_stretch

    # The paper's headline latency argument: re-establishment is an order
    # of magnitude slower than backup activation.
    assert reactive.mean_disruption > 10 * bcp.mean_disruption


def test_reactive_guarantee_breaks_under_load(benchmark):
    """The paper's core critique of [BAN93]-style recovery: with no
    reserved spare, contention in a loaded network makes recovery
    best-effort.  At ~64% network load (the paper's "fully-loaded"
    estimate doubles its 33%-load overheads) some disrupted connections
    find all QoS-feasible paths out of capacity."""
    from repro import BCPNetwork, FaultToleranceQoS, torus
    from repro.baselines import ReactiveOutcome, evaluate_reactive
    from repro.experiments.workloads import all_pairs, establish_workload
    from repro.faults import all_single_link_failures

    size = 8 if FULL_SCALE else 4
    network = BCPNetwork(torus(size, size, capacity=100.0))
    establish_workload(
        network,
        all_pairs(network.topology),
        FaultToleranceQoS(num_backups=0, mux_degree=0),
    )
    scenarios = all_single_link_failures(network.topology)
    if not FULL_SCALE:
        scenarios = scenarios[:16]

    def sweep():
        rerouted = failed = no_capacity = 0
        for scenario in scenarios:
            outcome = evaluate_reactive(network, scenario)
            for status in outcome.outcomes.values():
                if status is ReactiveOutcome.EXCLUDED:
                    continue
                failed += 1
                if status is ReactiveOutcome.REROUTED:
                    rerouted += 1
                elif status is ReactiveOutcome.NO_CAPACITY:
                    no_capacity += 1
        return rerouted, failed, no_capacity

    rerouted, failed, no_capacity = run_once(benchmark, sweep)
    coverage = rerouted / failed
    print(f"\nreactive at {network.network_load():.0%} load: "
          f"coverage {coverage:.2%}, {no_capacity} blocked by capacity")
    if FULL_SCALE:
        assert coverage < 1.0
        assert no_capacity > 0
