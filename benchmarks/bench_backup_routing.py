"""[HAN97b] direction: spare-aware backup routing vs shortest-path.

The paper notes (Section 7.2) that its shortest-path backup routing is
not optimal: "In [HAN97b], we presented a backup routing algorithm which
can reduce the spare bandwidth up to 40%, compared to the shortest path
routing method."  This ablation reproduces the direction of that claim
with a cost-biased router that prefers links whose spare pools already
cover the new backup.
"""

from __future__ import annotations

from conftest import DOUBLE_NODE_SAMPLES, FULL_SCALE, run_once

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.experiments.workloads import all_pairs, establish_workload
from repro.experiments.setup import standard_failure_models
from repro.recovery import RecoveryEvaluator
from repro.util.tables import format_percent, format_table


def run_comparison(size: int, mux_degree: int):
    results = {}
    for aware in (False, True):
        network = BCPNetwork(
            torus(size, size, 200.0), spare_aware_backup_routing=aware
        )
        report = establish_workload(
            network,
            all_pairs(network.topology),
            FaultToleranceQoS(num_backups=1, mux_degree=mux_degree),
        )
        evaluator = RecoveryEvaluator(network)
        models = standard_failure_models(
            network.topology, DOUBLE_NODE_SAMPLES
        )
        r_fast = {
            model: evaluator.evaluate_many(scenarios).r_fast
            for model, scenarios in models.items()
        }
        results[aware] = (network.spare_fraction(), report.complete, r_fast)
    return results


def test_spare_aware_routing_reduces_overhead(benchmark):
    size = 8 if FULL_SCALE else 4
    results = run_once(benchmark, run_comparison, size, 5)
    rows = []
    for aware, (spare, complete, r_fast) in results.items():
        label = "spare-aware" if aware else "shortest-path"
        rows.append(
            [label, format_percent(spare), "yes" if complete else "NO"]
            + [format_percent(r_fast[m]) for m in sorted(r_fast)]
        )
    print()
    print(format_table(
        ["router", "spare", "complete"] + sorted(results[False][2]),
        rows,
        title="[HAN97b] ablation: backup routing policy (mux=5)",
    ))
    baseline_spare = results[False][0]
    aware_spare = results[True][0]
    # The follow-up paper claims up to 40% spare reduction; require a
    # substantial saving here.
    assert aware_spare < baseline_spare * 0.8
    # Coverage of single link failures must not collapse.
    assert results[True][2]["1 link failure"] >= (
        results[False][2]["1 link failure"] - 0.10
    )
