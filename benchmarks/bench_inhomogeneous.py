"""Section 7.1/7.4 prose claims: inhomogeneous traffic and topology
sensitivity of backup multiplexing vs the brute-force baseline."""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments import run_inhomogeneous


def test_inhomogeneous_workloads_and_topologies(benchmark):
    size = 8 if FULL_SCALE else 4
    result = run_once(benchmark, run_inhomogeneous, rows=size, cols=size)
    print()
    print(result.format())
    cells = result.cells
    # The proposed scheme never loses to brute-force by more than noise,
    # and wins under at least one inhomogeneous condition.
    advantages = [cell.advantage for cell in cells.values()
                  if cell.advantage is not None]
    assert all(adv > -0.05 for adv in advantages)
    assert any(adv > 0.0 for adv in advantages)
    # The hotspot workload widens the gap relative to uniform on the mesh
    # (brute-force cannot follow the demand concentration).
    mesh_uniform = cells[("mesh", "uniform")].advantage
    mesh_hotspot = cells[("mesh", "hotspot")].advantage
    assert mesh_hotspot >= mesh_uniform - 0.02
