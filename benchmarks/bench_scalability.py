"""Section 6: complexity of backup multiplexing.

Measures the claimed O(n) incremental Π-set maintenance against the O(n²)
from-scratch recomputation as the number of backups on a link grows, and
benchmarks the throughput of the establishment and recovery machinery.
These use pytest-benchmark's real timing loops (unlike the table
regenerations, which run once).
"""

from __future__ import annotations

import random

import pytest

from repro.core.multiplexing import LinkMuxState
from repro.core.overlap import OverlapPolicy
from repro.network.components import LinkId
from repro.routing.paths import Path


def _random_components(rng: random.Random):
    length = rng.randint(3, 9)
    nodes = rng.sample(range(400), length)
    path = Path(nodes)
    return path.components, len(path.components)


def _populate(state: LinkMuxState, count: int, seed: int = 0) -> None:
    rng = random.Random(seed)
    for cid in range(count):
        components, size = _random_components(rng)
        state.add(cid, 1.0, rng.choice((1, 3, 5, 6)), components, size)


@pytest.mark.parametrize("population", [50, 200])
def test_incremental_add_is_linear(benchmark, population):
    state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
    _populate(state, population)
    rng = random.Random(99)
    components, size = _random_components(rng)
    counter = [population]

    def add_remove():
        cid = counter[0]
        counter[0] += 1
        state.add(cid, 1.0, 3, components, size)
        state.remove(cid)

    benchmark(add_remove)


@pytest.mark.parametrize("population", [50, 200])
def test_naive_recompute_is_quadratic(benchmark, population):
    state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
    _populate(state, population)
    result = benchmark(state.spare_required_recomputed)
    assert result == pytest.approx(state.spare_required())


def test_incremental_beats_naive_at_scale():
    """The asymptotic claim, measured directly: growing the population 4x
    grows the naive recompute ~16x but the incremental update ~4x."""
    import time

    def measure(population, operation):
        state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
        _populate(state, population)
        rng = random.Random(7)
        components, size = _random_components(rng)
        start = time.perf_counter()
        repetitions = 30
        for i in range(repetitions):
            if operation == "incremental":
                state.add(10_000 + i, 1.0, 3, components, size)
                state.remove(10_000 + i)
            else:
                state.spare_required_recomputed()
        return (time.perf_counter() - start) / repetitions

    naive_ratio = measure(400, "naive") / measure(100, "naive")
    incremental_ratio = measure(400, "incremental") / measure(
        100, "incremental"
    )
    # Allow generous noise; the orders of growth must still separate.
    assert naive_ratio > incremental_ratio * 1.5
