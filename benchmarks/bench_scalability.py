"""Section 6: complexity of backup multiplexing.

Measures the claimed O(n) incremental Π-set maintenance against the O(n²)
from-scratch recomputation as the number of backups on a link grows, plus
the vectorized packed-bitset kernel (:mod:`repro.core.muxkernel`) that
performs the same O(n) update as one numpy conflict test — the three-way
naive / incremental / vectorized gap.  These use pytest-benchmark's real
timing loops (unlike the table regenerations, which run once);
``bench_mux`` extends the two fast paths to 10³–10⁵ resident backups.
"""

from __future__ import annotations

import random

import pytest

from repro.core.multiplexing import LinkMuxState
from repro.core.muxkernel import ComponentArena, VectorLinkMux
from repro.core.overlap import OverlapPolicy
from repro.network.components import LinkId
from repro.routing.paths import Path


def _random_components(rng: random.Random):
    length = rng.randint(3, 9)
    nodes = rng.sample(range(400), length)
    path = Path(nodes)
    return path.components, len(path.components)


def _populate(state, count: int, seed: int = 0) -> None:
    rng = random.Random(seed)
    for cid in range(count):
        components, size = _random_components(rng)
        state.add(cid, 1.0, rng.choice((1, 3, 5, 6)), components, size)


def _vector_state() -> VectorLinkMux:
    return VectorLinkMux(LinkId("x", "y"), OverlapPolicy(), ComponentArena())


@pytest.mark.parametrize("population", [50, 200])
def test_incremental_add_is_linear(benchmark, population):
    state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
    _populate(state, population)
    rng = random.Random(99)
    components, size = _random_components(rng)
    counter = [population]

    def add_remove():
        cid = counter[0]
        counter[0] += 1
        state.add(cid, 1.0, 3, components, size)
        state.remove(cid)

    benchmark(add_remove)


@pytest.mark.parametrize("population", [50, 200])
def test_naive_recompute_is_quadratic(benchmark, population):
    state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
    _populate(state, population)
    result = benchmark(state.spare_required_recomputed)
    assert result == pytest.approx(state.spare_required())


@pytest.mark.parametrize("population", [50, 200])
def test_vectorized_add_is_linear(benchmark, population):
    state = _vector_state()
    _populate(state, population)
    rng = random.Random(99)
    components, size = _random_components(rng)
    counter = [population]

    def add_remove():
        cid = counter[0]
        counter[0] += 1
        state.add(cid, 1.0, 3, components, size)
        state.remove(cid)

    benchmark(add_remove)


def _measure(population: int, operation: str) -> float:
    """Mean latency of one op against a ``population``-entry link, for
    the three-way naive / incremental / vectorized comparison.

    Primaries are drawn from a 64-path pool: backups of recurring
    connections share primary routes (the churn steady state), which is
    the sharing the kernel's per-link distinct-row table factors out.
    """
    import time

    if operation == "vectorized":
        state = _vector_state()
    else:
        state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
    rng = random.Random(7)
    pool = [_random_components(rng) for _ in range(64)]
    for cid in range(population):
        components, size = rng.choice(pool)
        state.add(cid, 1.0, rng.choice((1, 3, 5, 6)), components, size)
    components, size = pool[13]
    start = time.perf_counter()
    repetitions = 30
    for i in range(repetitions):
        if operation == "naive":
            state.spare_required_recomputed()
        else:
            state.add(10_000 + i, 1.0, 3, components, size)
            state.remove(10_000 + i)
    return (time.perf_counter() - start) / repetitions


def test_incremental_beats_naive_at_scale():
    """The asymptotic claim, measured directly: growing the population 4x
    grows the naive recompute ~16x but the incremental update ~4x."""
    naive_ratio = _measure(400, "naive") / _measure(100, "naive")
    incremental_ratio = _measure(400, "incremental") / _measure(
        100, "incremental"
    )
    # Allow generous noise; the orders of growth must still separate.
    assert naive_ratio > incremental_ratio * 1.5


def test_vectorized_beats_incremental_at_scale():
    """The kernel's constant factor: at 400 resident backups one
    vectorized conflict test beats 400 per-pair Python tests outright
    (the gap reaches ~20x by 10⁵ — ``bench_mux``'s headline cells)."""
    incremental = _measure(400, "incremental")
    vectorized = _measure(400, "vectorized")
    assert vectorized < incremental
