"""Benchmark configuration.

By default the benchmarks regenerate the paper's experiments at full 8x8
scale.  Set ``REPRO_BENCH_SCALE=small`` to run everything on 4x4 networks
(useful while iterating); the printed tables say which scale produced
them.  Each experiment benchmark runs exactly once (``pedantic`` with one
round) — the interesting output is the regenerated table, printed to
stdout (run pytest with ``-s`` to see it).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.setup import NetworkConfig

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "full") != "small"

#: Paper scale unless REPRO_BENCH_SCALE=small.
ROWS = 8 if FULL_SCALE else 4
COLS = 8 if FULL_SCALE else 4
DOUBLE_NODE_SAMPLES = 200 if FULL_SCALE else 30


@pytest.fixture
def torus_config() -> NetworkConfig:
    return NetworkConfig(topology="torus", rows=ROWS, cols=COLS)


@pytest.fixture
def mesh_config() -> NetworkConfig:
    return NetworkConfig(topology="mesh", rows=ROWS, cols=COLS)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
