"""Sections 3.1/3.3: reliability models — Markov vs combinatorial, and
the achieved P_r dial across backup configurations."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_reliability
from repro.experiments.setup import NetworkConfig


def test_reliability_models(benchmark):
    result = run_once(
        benchmark, run_reliability, NetworkConfig(rows=4, cols=4)
    )
    print()
    print(result.format())
    # First-order agreement between the Fig. 3 CTMC and the combinatorial
    # client-interface model.
    for markov, combinatorial in result.model_comparison.values():
        assert abs(markov - combinatorial) < 1e-4
    # The dial: at equal backups, smaller degree -> higher worst-case P_r;
    # an extra backup -> higher P_r.
    sweep = result.configuration_sweep
    assert sweep[(1, 1)][0] >= sweep[(1, 6)][0]
    assert sweep[(2, 6)][0] >= sweep[(1, 6)][0]
    # And overhead moves the other way.
    assert sweep[(1, 1)][2] >= sweep[(1, 6)][2]
