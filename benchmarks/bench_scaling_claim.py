"""Section 6: "backup multiplexing will become more effective in
large-scale and highly-connected networks" — measured."""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments.scaling import run_scaling


def test_multiplexing_efficiency_vs_scale(benchmark):
    sizes = (4, 6, 8) if FULL_SCALE else (4, 6)
    result = run_once(
        benchmark, run_scaling, mux_degree=5, torus_sizes=sizes,
        include_connectivity_sweep=FULL_SCALE,
    )
    print()
    print(result.format())
    points = [result.point(f"{s}x{s} torus") for s in sizes]
    # "The efficiency of backup multiplexing does not degrade as the
    # network scales up": the saving stays large at every size and the
    # multiplexable-pair fraction stays high.  (The stronger prose claim
    # — MORE effective in larger networks — does not reproduce under the
    # all-pairs workload: both quantities drift a few points DOWN with
    # size, because paths lengthen while the α threshold stays fixed and
    # the per-link backup population grows; see EXPERIMENTS.md.)
    assert all(p.saving > 0.5 for p in points)
    fractions = [p.multiplexable_fraction for p in points]
    assert min(fractions) > 0.7
    assert max(fractions) - min(fractions) < 0.2
    if FULL_SCALE:
        # Connectivity: the degree-5 hypercube multiplexes better than the
        # under-4-degree mesh at a similar node count and load.
        cube = result.point("5-cube (degree 5)")
        grid = result.point("6x6 mesh (degree<4)")
        assert cube.saving > grid.saving
        assert cube.multiplexable_fraction > grid.multiplexable_fraction
