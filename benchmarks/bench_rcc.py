"""Section 5.2: RCC sizing — bounded control delay iff S_max suffices."""

from __future__ import annotations

from conftest import FULL_SCALE, run_once

from repro.experiments import run_rcc_sizing
from repro.experiments.setup import NetworkConfig


def test_rcc_sizing_rule(benchmark):
    config = NetworkConfig(rows=6 if FULL_SCALE else 4,
                           cols=6 if FULL_SCALE else 4)
    result = run_once(benchmark, run_rcc_sizing, config)
    print()
    print(result.format())
    compliant = result.worst_delay[result.required_messages]
    undersized = result.worst_delay[2]
    assert compliant <= result.budget + 1e-9
    assert undersized > result.budget
