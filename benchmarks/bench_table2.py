"""Table 2: per-connection fault-tolerance control (mixed mux degrees).

A quarter of the connections at each of mux = 1/3/5/6.  Checks:

* the mux=1 class keeps its single-failure guarantee even in the mix,
* per-class R_fast is ordered by degree for single-failure models,
* the network-wide spare sits near the average of the uniform runs
  ("the overhead remains around the average of all the classes").
"""

from __future__ import annotations

from conftest import DOUBLE_NODE_SAMPLES, FULL_SCALE, run_once

from repro.experiments import run_table1, run_table2
from repro.util.tables import format_percent, format_table


def print_with_reference(result):
    print()
    print(result.format())
    reference = result.paper_reference()
    if reference is None or not FULL_SCALE:
        return
    rows = [["paper: Spare bandwidth",
             format_percent(reference["Spare bandwidth"])]
            + [""] * (len(result.classes) - 1)]
    for label in ("1 link failure", "1 node failure", "2 node failures"):
        rows.append(
            [f"paper: {label}"]
            + [format_percent(reference[label].get(d)) for d in result.classes]
        )
    print(format_table(
        ["row"] + [f"mux={d}" for d in result.classes], rows,
        title="Paper-reported values (8x8 scale)",
    ))


def test_table2a_torus_single_backup(benchmark, torus_config):
    result = run_once(
        benchmark, run_table2, torus_config, num_backups=1,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    assert result.r_fast["1 link failure"][1] == 1.0
    assert result.r_fast["1 node failure"][1] == 1.0
    for model in ("1 link failure", "1 node failure"):
        values = [result.r_fast[model][d] for d in result.classes]
        assert values == sorted(values, reverse=True)
    # Mixed-degree overhead lands between the two uniform extremes.
    uniform = run_table1(torus_config, num_backups=1, mux_degrees=(1, 6),
                         double_node_samples=5)
    assert uniform.spare[6] < result.spare < uniform.spare[1]


def test_table2b_torus_double_backups(benchmark, torus_config):
    result = run_once(
        benchmark, run_table2, torus_config, num_backups=2,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    if result.complete and FULL_SCALE:
        # Paper Table 2(b): double backups lift every class to (near-)full
        # single-failure coverage (holds at the paper's 8x8 scale).
        for degree in result.classes:
            assert result.r_fast["1 link failure"][degree] >= 0.95


def test_table2c_mesh_single_backup(benchmark, mesh_config):
    result = run_once(
        benchmark, run_table2, mesh_config, num_backups=1,
        double_node_samples=DOUBLE_NODE_SAMPLES,
    )
    print_with_reference(result)
    assert result.r_fast["1 link failure"][1] == 1.0
