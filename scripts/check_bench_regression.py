#!/usr/bin/env python
"""CI gate: routing benchmarks must not regress more than 20%.

Compares a pytest-benchmark JSON export (``--benchmark-json``) against the
committed baseline ``benchmarks/BENCH_routing.json``.  Absolute timings
are meaningless across machines, so every median is first normalised by
the *calibration anchor* — the reference-kernel benchmark that runs in
the same process on the same machine.  A benchmark fails the gate when

    (median_now / anchor_now) > (median_base / anchor_base) * (1 + threshold)

i.e. when it got slower *relative to the reference implementation*.

Usage:
    python scripts/check_bench_regression.py RESULTS.json [options]

Options:
    --baseline PATH    baseline file (default benchmarks/BENCH_routing.json)
    --threshold F      allowed relative slowdown (default 0.20)
    --update           rewrite the baseline from RESULTS.json and exit
    --trajectory PATH  perf-trajectory store appended to after every run
                       (default benchmarks/TRAJECTORY.jsonl)
    --no-trajectory    skip the trajectory append
    --label TEXT       label for the appended trajectory entry
                       (default: the baseline file's stem)
    --matrix CELL      scenario-matrix cell name recorded on the
                       appended trajectory entry (rows produced by
                       'repro matrix run' carry the same field)

Every run (compare *and* update) also appends one
``repro.bench-trajectory/1`` JSON line — the anchor-normalised medians
under a label — to the trajectory store, so the history of relative
performance survives baseline rewrites.  Inspect it with
``python -m repro obs trajectory``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
DEFAULT_BASELINE = BENCHMARKS / "BENCH_routing.json"
DEFAULT_TRAJECTORY = BENCHMARKS / "TRAJECTORY.jsonl"
CALIBRATION = "test_calibration_reference_bfs"
TRAJECTORY_SCHEMA = "repro.bench-trajectory/1"


def load_medians(results_path: str) -> dict[str, float]:
    with open(results_path) as handle:
        data = json.load(handle)
    medians: dict[str, float] = {}
    for bench in data["benchmarks"]:
        # pytest-benchmark names carry the module path; keep the bare name
        # so baselines survive file moves.
        name = bench["name"].split("[")[0]
        medians[name] = bench["stats"]["median"]
    return medians


def update_baseline(medians: dict[str, float], baseline_path: Path) -> None:
    if CALIBRATION not in medians:
        sys.exit(f"calibration benchmark {CALIBRATION!r} missing from results")
    payload = {
        "schema": "repro.bench-baseline/1",
        "calibration": CALIBRATION,
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {baseline_path} ({len(medians)} benchmarks)")


def normalize(medians: dict[str, float], anchor: str) -> dict[str, float]:
    """Divide every median by the calibration anchor's (machine-free)."""
    anchor_median = medians[anchor]
    return {
        name: median / anchor_median
        for name, median in sorted(medians.items())
        if name != anchor
    }


def check_store(trajectory_path: Path) -> None:
    """Refuse to append after a malformed line: a corrupt store would
    silently poison every later reading of the history."""
    if not trajectory_path.exists():
        return
    with open(trajectory_path) as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                sys.exit(
                    f"{trajectory_path}:{number}: malformed trajectory "
                    f"line ({error}); fix or remove it before appending"
                )
            if not isinstance(entry, dict) or (
                entry.get("schema") != TRAJECTORY_SCHEMA
            ):
                sys.exit(
                    f"{trajectory_path}:{number}: expected schema "
                    f"{TRAJECTORY_SCHEMA!r}, got "
                    f"{entry.get('schema') if isinstance(entry, dict) else entry!r}"
                )


def append_trajectory(
    medians: dict[str, float],
    anchor: str,
    trajectory_path: Path,
    label: str,
    cell: "str | None" = None,
) -> None:
    """Append one ``repro.bench-trajectory/1`` line to the store."""
    if anchor not in medians:
        return
    check_store(trajectory_path)
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "label": label,
        "anchor": anchor,
        "normalized": normalize(medians, anchor),
    }
    if cell is not None:
        entry["cell"] = cell
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    with open(trajectory_path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"trajectory: appended {label!r} ({len(entry['normalized'])} "
          f"benchmarks) to {trajectory_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="pytest-benchmark JSON export")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results")
    parser.add_argument("--trajectory", default=str(DEFAULT_TRAJECTORY),
                        help="perf-trajectory store to append to")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append")
    parser.add_argument("--label", default=None,
                        help="trajectory entry label (default: the "
                             "baseline file's stem)")
    parser.add_argument("--matrix", metavar="CELL", default=None,
                        help="scenario-matrix cell name recorded on the "
                             "appended trajectory entry")
    args = parser.parse_args()

    medians = load_medians(args.results)
    baseline_path = Path(args.baseline)
    label = args.label if args.label is not None else baseline_path.stem
    if args.update:
        update_baseline(medians, baseline_path)
        if not args.no_trajectory:
            append_trajectory(medians, CALIBRATION,
                              Path(args.trajectory), f"update:{label}",
                              cell=args.matrix)
        return

    with open(baseline_path) as handle:
        baseline = json.load(handle)
    anchor = baseline["calibration"]
    base_medians = baseline["medians"]
    if anchor not in medians:
        sys.exit(f"calibration benchmark {anchor!r} missing from results")
    anchor_now = medians[anchor]
    anchor_base = base_medians[anchor]

    failures = []
    for name, base_median in sorted(base_medians.items()):
        if name == anchor:
            continue
        if name not in medians:
            failures.append(f"{name}: missing from results")
            continue
        now = medians[name] / anchor_now
        base = base_median / anchor_base
        ratio = now / base
        status = "FAIL" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {status:4s} {name}: {ratio:.2f}x of baseline "
              f"(normalised {now:.4f} vs {base:.4f})")
        if status == "FAIL":
            failures.append(
                f"{name}: {ratio:.2f}x of baseline "
                f"(threshold {1.0 + args.threshold:.2f}x)"
            )
    for name in sorted(set(medians) - set(base_medians)):
        print(f"  new  {name}: not in baseline (run --update to add)")

    if not args.no_trajectory:
        append_trajectory(medians, anchor, Path(args.trajectory), label,
                          cell=args.matrix)

    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print("OK: no routing benchmark regressed beyond the threshold.")


if __name__ == "__main__":
    main()
