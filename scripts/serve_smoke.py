#!/usr/bin/env python
"""CI gate: the admission service resumes byte-identically from a snapshot.

One driver process, two server lifecycles over Unix sockets:

* baseline — a ``repro serve start`` subprocess runs an entire remote
  churn workload uninterrupted;
* interrupted — an identical server is killed (SIGKILL, no cleanup)
  halfway through the same workload, restarted from the snapshot it
  wrote just before dying, and the *same client engine* reconnects and
  resumes.

The client's RNG streams and departure heap live in this driver and
never restart, so the resumed run must reproduce the baseline bit for
bit: the churn stats dicts and the servers' final ``repro.snapshot/1``
files are compared byte-wise.  Finally the restarted server's
``serve.*`` histograms are gated against admission-latency and
recovery-delay SLOs.

Usage: PYTHONPATH=src python scripts/serve_smoke.py [WORKERS]
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import sys
import tempfile

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.scenario import (
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    churn_config_from_spec,
)
from repro.serve import RemoteNetwork, ServeClient
from repro.workload import ChurnEngine

DURATION = 20.0

SPEC = ScenarioSpec(
    name="serve/smoke",
    topology=TopologySpec(family="torus", rows=4, cols=4, capacity=160.0),
    workload=WorkloadSpec(
        kind="churn",
        arrival_rate=6.0,
        holding_time=4.0,
        duration=DURATION,
        bandwidth=4.0,
        batch_window=0.5,
        epoch_interval=5.0,
        eval_scenarios=2,
        pairs=16,
    ),
    protocol=ProtocolSpec(num_backups=1, mux_degree=2),
    seed=3,
)

# Generous for shared CI runners; a regression that serializes admission
# or recovery behind something slow still trips them.
SLOS = (
    "serve.admission_latency.p99 <= 0.25",
    "serve.recovery_delay.p99 <= 30",
)

CONNECT_RETRY = 30.0


def fail(what: str, *detail: object) -> None:
    print(f"DIVERGENCE in {what}:")
    for item in detail:
        print(f"  {item!r}")
    sys.exit(1)


class Server:
    """One `repro serve start` subprocess and its log file."""

    def __init__(
        self,
        bind: str,
        spec_path: str,
        workers: int,
        log_path: str,
        restore: "str | None" = None,
    ) -> None:
        self.bind = bind
        self.log_path = log_path
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "start",
            "--spec",
            spec_path,
            "--bind",
            bind,
            "--workers",
            str(workers),
        ]
        if restore is not None:
            command += ["--restore", restore]
        self._log = open(log_path, "a")
        self.process = subprocess.Popen(
            command, stdout=self._log, stderr=subprocess.STDOUT
        )

    def kill(self) -> None:
        """Simulated crash: SIGKILL, then clear the stale socket file the
        dead server never unlinked."""
        self.process.kill()
        self.process.wait()
        self._log.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.bind)

    def wait(self) -> None:
        code = self.process.wait(timeout=60)
        self._log.close()
        if code != 0:
            with open(self.log_path) as handle:
                sys.stdout.write(handle.read())
            fail(f"server on {self.bind} exited {code}")


def run_remote(
    workdir: str, spec_path: str, workers: int, interrupt: bool
) -> tuple[dict, bytes]:
    """Drive the churn workload against a fresh server; returns the
    client-side stats dict and the server's final snapshot bytes."""
    tag = "interrupted" if interrupt else "baseline"
    bind = os.path.join(workdir, f"{tag}.sock")
    log_path = os.path.join(workdir, f"{tag}.log")
    final_path = os.path.join(workdir, f"{tag}-final.json")
    server = Server(bind, spec_path, workers, log_path)

    network = RemoteNetwork(ServeClient(bind), retry_window=CONNECT_RETRY)
    # The serve.* SLOs live in the *server's* registry — they gate its
    # metrics snapshot below, not the client engine's per-epoch checks.
    config = churn_config_from_spec(SPEC, workers=workers)
    engine = ChurnEngine(network, config, metrics=MetricsRegistry())

    if interrupt:
        engine.run(until=DURATION / 2)
        mid_path = os.path.join(workdir, "mid.json")
        network.snapshot(mid_path)
        server.kill()
        print(f"  killed server mid-run, restarting from {mid_path}")
        server = Server(bind, spec_path, workers, log_path, restore=mid_path)
        network.reconnect(retry_window=CONNECT_RETRY)

    stats = engine.run()
    network.snapshot(final_path)
    metrics = network.metrics_snapshot()
    network.shutdown()
    network.client.close()
    server.wait()

    breaches = [
        f"{result.target.spec()} observed {result.observed!r}"
        for result in SLOEngine(SLOS).breaches(metrics)
    ]
    if breaches:
        fail(f"{tag} server SLOs", *breaches)
    histograms = metrics["histograms"]
    print(
        f"  {tag}: {stats.established} established, "
        f"{stats.epochs} epochs; server admission p99 "
        f"{histograms['serve.admission_latency']['p99']:.6f}s, "
        f"recovery p99 {histograms['serve.recovery_delay']['p99']:.6f}s "
        f"({len(SLOS)} SLOs met)"
    )
    if not stats.healthy:
        fail(f"{tag} run health", stats.audit_violations, stats.slo_breaches)
    with open(final_path, "rb") as handle:
        return stats.to_dict(), handle.read()


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(
        f"Serve smoke: snapshot/restore byte-identity at workers={workers} "
        f"on {SPEC.topology.label}..."
    )
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as workdir:
        spec_path = os.path.join(workdir, "spec.json")
        with open(spec_path, "w") as handle:
            json.dump(SPEC.to_dict(), handle)
        baseline, baseline_snapshot = run_remote(
            workdir, spec_path, workers, interrupt=False
        )
        resumed, resumed_snapshot = run_remote(
            workdir, spec_path, workers, interrupt=True
        )
    if baseline != resumed:
        fail("churn stats (baseline vs resumed)", baseline, resumed)
    if baseline_snapshot != resumed_snapshot:
        fail(
            "final server snapshots (baseline vs resumed)",
            len(baseline_snapshot),
            len(resumed_snapshot),
        )
    print(
        "OK: restarted server resumed byte-identically "
        f"({len(baseline_snapshot)} snapshot bytes compared)."
    )


if __name__ == "__main__":
    main()
