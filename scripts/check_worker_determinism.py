#!/usr/bin/env python
"""CI gate: parallel evaluation must not change any result.

Runs the same scenario evaluations with ``--workers 1`` and
``--workers N`` (default 2) and fails loudly if anything diverges:

* ``RecoveryStats`` dataclass equality (every field, including the
  float accumulators — the shard structure is worker-count independent,
  so even non-associative float sums must match bit-for-bit),
* ``repro.metrics/1`` counter maps,
* grouped (per-mux-degree) evaluation,
* the fully formatted Table 1 panel produced by the experiment driver,
* the same panel with the route cache disabled (``--no-route-cache``),
* the same panel and a churn run with the vectorized multiplexing
  kernel disabled (``--no-mux-kernel``) — the kernel-vs-reference
  byte-identity contract at the experiment level,
* a complete churn run with per-epoch recovery evaluation (stats dict
  and the full ``repro.metrics/1`` snapshot, series included),
* a chaos campaign under non-default switchover retry/backoff knobs
  with re-establishment fallback enabled (summary, per-run violation
  and materialized-event streams, merged metrics snapshot).

Usage: PYTHONPATH=src python scripts/check_worker_determinism.py [N]
"""

from __future__ import annotations

import sys
from time import perf_counter

from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import NetworkConfig, load_network
from repro.experiments.table1 import run_table1
from repro.faults import all_single_link_failures, all_single_node_failures
from repro.obs.registry import MetricsRegistry
from repro.parallel import evaluate_scenarios, evaluate_scenarios_grouped
from repro.recovery import ActivationOrder
from repro.recovery.grouping import by_mux_degree
from repro.routing import set_route_cache_enabled

CONFIG = NetworkConfig(topology="torus", rows=4, cols=4)
SEED = 0


def _fail(what: str, one, many) -> None:
    print(f"DIVERGENCE in {what}:")
    print(f"  workers=1: {one!r}")
    print(f"  workers=N: {many!r}")
    sys.exit(1)


def check_stats(network, scenarios, workers: int) -> None:
    for order in (ActivationOrder.PRIORITY, ActivationOrder.RANDOM):
        reg1, regn = MetricsRegistry(), MetricsRegistry()
        one = evaluate_scenarios(
            network, scenarios, workers=1, order=order, seed=SEED,
            metrics=reg1,
        )
        many = evaluate_scenarios(
            network, scenarios, workers=workers, order=order, seed=SEED,
            metrics=regn,
        )
        if one != many:
            _fail(f"RecoveryStats ({order.name} order)", one, many)
        counters1 = reg1.snapshot()["counters"]
        countersn = regn.snapshot()["counters"]
        if counters1 != countersn:
            _fail(f"metric counters ({order.name} order)",
                  counters1, countersn)
        print(f"  stats + counters identical ({order.name} order, "
              f"{one.scenarios} scenarios)")


def check_grouped(network, scenarios, workers: int) -> None:
    one = evaluate_scenarios_grouped(
        network, scenarios, key=by_mux_degree, workers=1, seed=SEED,
        metrics=MetricsRegistry(),
    )
    many = evaluate_scenarios_grouped(
        network, scenarios, key=by_mux_degree, workers=workers, seed=SEED,
        metrics=MetricsRegistry(),
    )
    if one != many:
        _fail("grouped RecoveryStats", one, many)
    print(f"  grouped stats identical ({len(one)} groups)")


def check_table1(workers: int) -> None:
    start = perf_counter()
    one = run_table1(CONFIG, double_node_samples=20, seed=SEED,
                     workers=1).format()
    serial = perf_counter() - start
    start = perf_counter()
    many = run_table1(CONFIG, double_node_samples=20, seed=SEED,
                      workers=workers).format()
    parallel = perf_counter() - start
    if one != many:
        _fail("formatted Table 1 panel", one, many)
    print(f"  Table 1 panels identical "
          f"(serial {serial:.2f}s, workers={workers} {parallel:.2f}s)")


def check_churn(workers: int) -> None:
    """A churn run's exports must not depend on the worker count."""
    from repro.core import BCPNetwork
    from repro.network import torus
    from repro.workload import ChurnConfig, ChurnEngine

    def run(count: int) -> tuple[dict, dict]:
        config = ChurnConfig(
            arrival_rate=30.0, holding_time=2.0, duration=6.0,
            epoch_interval=2.0, seed=SEED, pairs=8, eval_scenarios=8,
            workers=count,
        )
        registry = MetricsRegistry()
        network = BCPNetwork(torus(4, 4, capacity=200.0))
        stats = ChurnEngine(network, config, metrics=registry).run()
        return stats.to_dict(), registry.snapshot()

    stats1, snapshot1 = run(1)
    statsn, snapshotn = run(workers)
    if stats1 != statsn:
        _fail("churn stats", stats1, statsn)
    if snapshot1 != snapshotn:
        _fail("churn metrics snapshot", snapshot1, snapshotn)
    print(f"  churn stats + snapshot identical "
          f"({stats1['arrivals']} arrivals, {stats1['epochs']} epochs)")


def check_chaos_switchover(workers: int) -> None:
    """A chaos campaign under non-default switchover retry/backoff knobs
    (plus re-establishment fallback) must not depend on the worker
    count: summaries, per-run violations, materialized event streams,
    and the merged metrics snapshot — switchover.* counters, retry
    span points, episode ids — all bit-identical."""
    from repro.chaos import build_campaign, campaign_summary, run_campaign
    from repro.core import BCPNetwork
    from repro.network import torus
    from repro.protocol import ProtocolConfig

    config = ProtocolConfig(
        switchover_ack_timeout=7.0,
        switchover_retry_limit=3,
        switchover_backoff=1.5,
        reestablish_unrecoverable=True,
    )

    def run(count: int) -> tuple[dict, list, dict]:
        from repro.channels.qos import FaultToleranceQoS as QoS

        registry = MetricsRegistry()
        network = BCPNetwork(torus(4, 4, capacity=200.0))
        nodes = sorted(network.topology.nodes())
        for index in range(6):
            network.establish(
                nodes[index], nodes[(index + 8) % 16],
                ft_qos=QoS(num_backups=2, mux_degree=1),
            )
        schedules = build_campaign(SEED, 6, network, config)
        results = run_campaign(
            schedules, network, config, workers=count, metrics=registry,
        )
        per_run = [
            (
                result.schedule.profile,
                tuple(result.materialized),
                tuple(
                    (v.invariant, v.subject, v.time)
                    for v in result.violations
                ),
                result.final_time,
                result.drained,
            )
            for result in results
        ]
        snapshot = registry.snapshot()
        # Timer histograms are wall-clock, and the route cache is
        # process-global (the hit/miss split depends on which process
        # computed a route, not on what was computed) — neither is part
        # of the determinism contract.
        snapshot.pop("histograms", None)
        snapshot["counters"] = {
            name: value
            for name, value in snapshot["counters"].items()
            if not name.startswith("route_cache.")
        }
        return campaign_summary(results), per_run, snapshot

    summary1, runs1, snapshot1 = run(1)
    summaryn, runsn, snapshotn = run(workers)
    if summary1 != summaryn:
        _fail("chaos campaign summary (switchover knobs)",
              summary1, summaryn)
    if runs1 != runsn:
        _fail("chaos per-run streams (switchover knobs)", runs1, runsn)
    if snapshot1 != snapshotn:
        _fail("chaos metrics snapshot (switchover knobs)",
              snapshot1, snapshotn)
    switchover = {
        name: value
        for name, value in snapshot1["counters"].items()
        if name.startswith("switchover.")
    }
    print(f"  chaos campaign identical under retry/backoff knobs "
          f"({summary1['runs']} runs, switchover counters {switchover})")


def check_route_cache_escape_hatch() -> None:
    """The ``--no-route-cache`` escape hatch must not change any result."""
    cached = run_table1(CONFIG, double_node_samples=20, seed=SEED,
                        workers=1).format()
    previous = set_route_cache_enabled(False)
    try:
        uncached = run_table1(CONFIG, double_node_samples=20, seed=SEED,
                              workers=1).format()
    finally:
        set_route_cache_enabled(previous)
    if cached != uncached:
        _fail("Table 1 panel with route cache disabled", cached, uncached)
    print("  Table 1 panel identical with --no-route-cache")


def check_mux_kernel_escape_hatch(workers: int) -> None:
    """Kernel on vs off (``--no-mux-kernel``) must be byte-identical —
    the vectorized engine's golden contract, checked at the experiment
    level and across worker counts."""
    from repro.core import BCPNetwork
    from repro.core.muxkernel import kernel_available, set_mux_kernel_enabled
    from repro.network import torus
    from repro.workload import ChurnConfig, ChurnEngine

    if not kernel_available():
        print("  mux kernel unavailable (numpy); skipping escape hatch")
        return

    def table_panel() -> str:
        return run_table1(CONFIG, double_node_samples=20, seed=SEED,
                          workers=workers).format()

    def churn_run() -> tuple[dict, dict]:
        config = ChurnConfig(
            arrival_rate=30.0, holding_time=2.0, duration=6.0,
            epoch_interval=2.0, seed=SEED, pairs=8, eval_scenarios=8,
            workers=workers,
        )
        registry = MetricsRegistry()
        network = BCPNetwork(torus(4, 4, capacity=200.0))
        stats = ChurnEngine(network, config, metrics=registry).run()
        snapshot = registry.snapshot()
        # The kernel exports its own counters/gauges (mux.kernel.*,
        # mux.space.bytes); everything the reference also produces must
        # still match bit-for-bit.
        for section in ("counters", "gauges"):
            snapshot[section] = {
                name: value
                for name, value in snapshot[section].items()
                if not name.startswith("mux.")
            }
        return stats.to_dict(), snapshot

    kernel_panel = table_panel()
    kernel_churn, kernel_snapshot = churn_run()
    previous = set_mux_kernel_enabled(False)
    try:
        reference_panel = table_panel()
        reference_churn, reference_snapshot = churn_run()
    finally:
        set_mux_kernel_enabled(previous)
    if kernel_panel != reference_panel:
        _fail("Table 1 panel with mux kernel disabled",
              kernel_panel, reference_panel)
    if kernel_churn != reference_churn:
        _fail("churn stats with mux kernel disabled",
              kernel_churn, reference_churn)
    if kernel_snapshot != reference_snapshot:
        _fail("churn metrics snapshot with mux kernel disabled",
              kernel_snapshot, reference_snapshot)
    print("  Table 1 panel + churn run identical with --no-mux-kernel "
          f"(workers={workers})")


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    if workers < 2:
        raise SystemExit("worker count under test must be >= 2")
    print(f"Checking workers=1 vs workers={workers} on {CONFIG.label}...")
    network, _ = load_network(
        CONFIG, FaultToleranceQoS(num_backups=1, mux_degree=3)
    )
    scenarios = (
        all_single_link_failures(network.topology)
        + all_single_node_failures(network.topology)
    )
    check_stats(network, scenarios, workers)
    check_grouped(network, scenarios, workers)
    check_table1(workers)
    check_route_cache_escape_hatch()
    check_mux_kernel_escape_hatch(workers)
    check_churn(workers)
    check_chaos_switchover(workers)
    print("OK: parallel evaluation is deterministic.")


if __name__ == "__main__":
    main()
