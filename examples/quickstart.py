#!/usr/bin/env python
"""Quickstart: dependable real-time connections in five minutes.

Builds the paper's 8x8 torus, establishes a D-connection with one backup,
injects a link failure, and shows both the steady-state recovery outcome
(the R_fast methodology of Section 7) and the event-level protocol run
with its measured service-disruption time (Section 5).

Run:  python examples/quickstart.py
"""

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.analysis import connection_delay_bound
from repro.faults import FailureScenario
from repro.protocol import ProtocolConfig, simulate_scenario
from repro.recovery import RecoveryEvaluator


def main() -> None:
    # 1. The substrate: an 8x8 torus with 200 Mbps simplex links.
    network = BCPNetwork(torus(8, 8, capacity=200.0))

    # 2. A dependable connection: primary + 1 backup, disjointly routed.
    #    mux_degree=3 shares spare bandwidth with any backup whose primary
    #    does not share a link with ours -> guaranteed recovery from every
    #    single link failure.
    connection = network.establish(
        src=0,
        dst=36,
        ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=3),
    )
    print(f"established {connection}")
    print(f"  primary path : {' -> '.join(map(str, connection.primary.path))}")
    print(f"  backup path  : "
          f"{' -> '.join(map(str, connection.backups[0].path))}")
    print(f"  achieved P_r : {connection.achieved_pr:.9f}")
    print(f"  network load : {network.network_load():.2%}, "
          f"spare: {network.spare_fraction():.2%}")

    # 3. Steady-state view: what happens when a primary link dies?
    victim = connection.primary.path.links[1]
    scenario = FailureScenario.of_links([victim])
    result = RecoveryEvaluator(network).evaluate(scenario)
    outcome = result.outcomes[connection.connection_id]
    print(f"\nfailing link {victim}: outcome = {outcome.value}")

    # 4. Protocol view: the same failure through the event-driven BCP
    #    runtime (failure reports over the RCC network, bi-directional
    #    activation, Scheme 3).
    metrics = simulate_scenario(network, scenario, ProtocolConfig())
    record = metrics.recoveries[connection.connection_id]
    bound = connection_delay_bound(connection, d_max=1.0)
    print(f"protocol recovery: backup serial {record.recovered_serial} "
          f"took over")
    print(f"  service disruption : {record.service_disruption:.2f} "
          f"(bound {bound:.2f})")
    print(f"  end-to-end complete: t={record.completed_at:.2f}")


if __name__ == "__main__":
    main()
