#!/usr/bin/env python
"""Per-connection fault-tolerance control for a video conference.

The paper's motivating scenario (Section 1): "a very important video
conference" must not be disconnected by network failures, while bulk
traffic can tolerate slower recovery.  This example mixes three service
classes on one network and shows each class getting exactly the
fault-tolerance it pays for:

* EXECUTIVE streams — 2 disjoint backups, mux=1: survives any double
  failure that leaves a route, recovers from every single failure.
* STANDARD streams — 1 backup, mux=5: cheap, recovers from most single
  failures.
* BULK transfers — no backups: re-established from scratch on failure.

It also demonstrates the *declarative* interface: asking for a target
reliability P_r and letting BCP negotiate the configuration (Section 3.4).

Run:  python examples/video_conference.py
"""

import random

from repro import (
    BCPNetwork,
    DelayQoS,
    EstablishmentError,
    FaultToleranceQoS,
    TrafficSpec,
    torus,
)
from repro.faults import all_single_link_failures, sample_double_node_failures
from repro.recovery import ConnectionOutcome, RecoveryEvaluator
from repro.util.tables import format_percent, format_table

CLASSES = {
    "executive": FaultToleranceQoS(num_backups=2, mux_degree=1),
    "standard": FaultToleranceQoS(num_backups=1, mux_degree=5),
    "bulk": FaultToleranceQoS(num_backups=0, mux_degree=0),
}


def establish_mixed_workload(network: BCPNetwork, rng: random.Random):
    """120 conference streams and 120 bulk transfers between random pairs."""
    owners: dict[int, str] = {}
    nodes = list(network.topology.nodes())
    mix = ["executive"] * 40 + ["standard"] * 80 + ["bulk"] * 120
    rng.shuffle(mix)
    downgrades = 0
    for klass in mix:
        src, dst = rng.sample(nodes, 2)
        traffic = TrafficSpec(bandwidth=4.0 if klass != "bulk" else 1.0)
        try:
            connection = network.establish(
                src, dst, traffic, ft_qos=CLASSES[klass]
            )
        except EstablishmentError:
            # The two disjoint backups may not fit the tight delay QoS for
            # close node pairs; an executive client accepts a slightly
            # relaxed delay bound rather than less fault-tolerance
            # (the paper: "the rejected client may opt to retry").
            connection = network.establish(
                src, dst, traffic,
                delay_qos=DelayQoS(slack_hops=4),
                ft_qos=CLASSES[klass],
            )
            downgrades += 1
        owners[connection.connection_id] = klass
    if downgrades:
        print(f"({downgrades} connections needed a relaxed delay bound to "
              f"fit their backups)")
    return owners


def coverage_by_class(network, owners, scenarios):
    evaluator = RecoveryEvaluator(network)
    failed: dict[str, int] = {klass: 0 for klass in CLASSES}
    fast: dict[str, int] = {klass: 0 for klass in CLASSES}
    for scenario in scenarios:
        result = evaluator.evaluate(scenario)
        for connection_id, outcome in result.outcomes.items():
            if outcome is ConnectionOutcome.EXCLUDED:
                continue
            klass = owners[connection_id]
            failed[klass] += 1
            if outcome is ConnectionOutcome.FAST_RECOVERED:
                fast[klass] += 1
    return {
        klass: (fast[klass] / failed[klass] if failed[klass] else None)
        for klass in CLASSES
    }


def main() -> None:
    rng = random.Random(2026)
    network = BCPNetwork(torus(8, 8, capacity=200.0))
    owners = establish_mixed_workload(network, rng)
    print(f"{network!r}")

    link_failures = all_single_link_failures(network.topology)
    double_failures = sample_double_node_failures(network.topology, 100,
                                                  seed=7)
    single = coverage_by_class(network, owners, link_failures)
    double = coverage_by_class(network, owners, double_failures)

    rows = [
        [klass,
         CLASSES[klass].num_backups,
         CLASSES[klass].mux_degree,
         format_percent(single[klass]),
         format_percent(double[klass])]
        for klass in CLASSES
    ]
    print()
    print(format_table(
        ["class", "backups", "mux", "fast recovery (1 link)",
         "fast recovery (2 nodes)"],
        rows,
        title="Per-class fault-tolerance on one shared network",
    ))

    # Declarative negotiation: "I need five nines for this stream."
    offer = network.negotiate(0, 63, required_pr=1 - 1e-9,
                              traffic=TrafficSpec(bandwidth=4.0))
    print(f"\nnegotiated P_r={offer.achieved_pr:.12f} "
          f"(required {offer.required_pr}) -> "
          f"{'accepted' if offer.satisfied else 'rejected'}, "
          f"mux degree {offer.connection.backups[0].mux_degree}")
    if not offer.satisfied:
        offer.reject()


if __name__ == "__main__":
    main()
