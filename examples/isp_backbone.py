#!/usr/bin/env python
"""Dependable connections on a real-world backbone topology.

Everything else in the examples runs on the paper's synthetic grids; this
one brings your own network: an Abilene-like 11-PoP US research backbone
loaded from plain edge-list text (see ``repro.network.io``), with
asymmetric link capacities.  It provisions a mix of dependable
connections across the continent, prints the per-PoP spare footprint, and
checks what a fibre cut between two PoPs would actually do.

Run:  python examples/isp_backbone.py
"""

from repro import BCPNetwork, EstablishmentError, FaultToleranceQoS, TrafficSpec
from repro.faults import FailureScenario
from repro.network import from_edge_list
from repro.recovery import RecoveryEvaluator, by_source, evaluate_grouped
from repro.util.tables import format_percent, format_table

# An Abilene-like topology: 11 PoPs, OC-capacity trunks (Gbps figures).
BACKBONE = """
# US research backbone (Abilene-like)
seattle   sunnyvale 10
seattle   denver    10
sunnyvale losangeles 10
sunnyvale denver    10
losangeles houston  10
denver    kansascity 10
kansascity houston   10
kansascity indianapolis 10
houston   atlanta   10
chicago   indianapolis 10
chicago   newyork   10
indianapolis atlanta 10
atlanta   washington 10
washington newyork   10
"""

#: Coast-to-coast conference circuits (the paper's motivating workload).
CIRCUITS = [
    ("seattle", "newyork", 2.4),
    ("sunnyvale", "washington", 2.4),
    ("losangeles", "newyork", 1.0),
    ("seattle", "atlanta", 1.0),
    ("denver", "washington", 0.6),
    ("houston", "chicago", 0.6),
    ("kansascity", "newyork", 0.3),
    ("losangeles", "chicago", 0.3),
]


def main() -> None:
    topology = from_edge_list(BACKBONE, name="abilene-like")
    network = BCPNetwork(topology)
    print(f"loaded {topology.name}: {topology.num_nodes} PoPs, "
          f"{topology.num_links // 2} trunks")

    established = []
    for src, dst, gbps in CIRCUITS:
        try:
            connection = network.establish(
                src, dst,
                traffic=TrafficSpec(bandwidth=gbps),
                ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=3),
            )
        except EstablishmentError:
            # Sparse real topologies do not always offer a disjoint backup
            # (e.g. Denver->Washington must pass Kansas City); carry the
            # traffic unprotected rather than rejecting the customer.
            connection = network.establish(
                src, dst,
                traffic=TrafficSpec(bandwidth=gbps),
                ft_qos=FaultToleranceQoS(num_backups=0, mux_degree=0),
            )
            established.append(connection)
            print(f"  {src:>11} -> {dst:<11} {gbps:>4} Gbps  "
                  f"primary {connection.primary.path.hops} hops, "
                  f"NO disjoint backup available")
            continue
        established.append(connection)
        print(f"  {src:>11} -> {dst:<11} {gbps:>4} Gbps  "
              f"primary {connection.primary.path.hops} hops, "
              f"backup {connection.backups[0].path.hops} hops")

    print(f"\nnetwork load {network.network_load():.1%}, "
          f"spare {network.spare_fraction():.1%}")

    # Coverage: every single trunk cut (both fibre directions).
    evaluator = RecoveryEvaluator(network)
    seen = set()
    duplex_cuts = []
    for link in topology.links():
        pair = frozenset(link.endpoints())
        if pair not in seen:
            seen.add(pair)
            duplex_cuts.append(FailureScenario.of_links(
                [link, link.reversed()],
                name=f"cut {link.src}-{link.dst}",
            ))
    stats = evaluator.evaluate_many(duplex_cuts)
    print(f"single fibre cuts ({len(duplex_cuts)} scenarios): "
          f"fast recovery {format_percent(stats.r_fast)} "
          f"({stats.fast_recovered}/{stats.failed_primaries} disrupted "
          f"circuits)")

    # Per-PoP view of who depends on recovery the most.
    grouped = evaluate_grouped(network, evaluator, duplex_cuts, key=by_source)
    rows = [
        [pop, stats.failed_primaries, format_percent(stats.r_fast)]
        for pop, stats in sorted(grouped.items())
    ]
    print()
    print(format_table(
        ["source PoP", "disruptions", "fast recovery"],
        rows,
        title="Per-PoP resilience under single fibre cuts",
    ))

    # And the cut that matters most: the busiest trunk.
    worst = max(
        duplex_cuts,
        key=lambda cut: evaluator.evaluate(cut).failed_primaries,
    )
    result = evaluator.evaluate(worst)
    print(f"\nworst cut: {worst.name} disrupts "
          f"{result.failed_primaries} circuits; outcome: "
          + ", ".join(
              f"conn {cid}={outcome.value}"
              for cid, outcome in sorted(result.outcomes.items())
          ))


if __name__ == "__main__":
    main()
