#!/usr/bin/env python
"""A failure storm: Poisson component crashes with repair, end to end.

Drives the full BCP protocol runtime (failure reporting over RCC links,
bi-directional activation, rejoin timers, soft-state teardown) through a
timeline of random component crashes and repairs, then reports how the
network's dependable connections fared: fast recoveries, their measured
service disruptions against the Section 5.3 bound, rejoined channels,
multiplexing failures.

Run:  python examples/failure_storm.py
"""

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.analysis import connection_delay_bound
from repro.faults import PoissonFailureProcess
from repro.protocol import ProtocolConfig, ProtocolSimulation
from repro.util.tables import format_table

HORIZON = 3_000.0  # time units (think milliseconds)


def main() -> None:
    network = BCPNetwork(torus(6, 6, capacity=200.0))
    qos = FaultToleranceQoS(num_backups=2, mux_degree=3)
    # Double backups need enough path diversity within the delay bound;
    # give close pairs two hops of extra slack (cf. Section 3.4: clients
    # renegotiate when their request cannot be met).
    from repro import DelayQoS, EstablishmentError

    nodes = list(network.topology.nodes())
    for src in nodes:
        for dst in nodes:
            if src != dst and (src + dst) % 3 == 0:
                try:
                    network.establish(src, dst, ft_qos=qos)
                except EstablishmentError:
                    network.establish(
                        src, dst, delay_qos=DelayQoS(slack_hops=4), ft_qos=qos
                    )
    print(f"{network!r}")

    # A harsh failure regime: component MTBF ~ 10 horizons, repairs ~2%
    # of MTBF — failures overlap, exercising multi-failure handling.
    process = PoissonFailureProcess(
        network.topology,
        failure_rate=1.0 / (10 * HORIZON),
        repair_rate=1.0 / (0.02 * 10 * HORIZON),
        seed=42,
    )
    events = process.generate(HORIZON)
    print(f"injecting {len(events)} component crashes over {HORIZON:g} "
          f"time units")

    simulation = ProtocolSimulation(
        network, ProtocolConfig(rejoin_timeout=100.0), seed=42
    )
    for event in events:
        simulation.fail(event.component, at=event.time)
        if event.repair_time is not None and event.repair_time < HORIZON:
            simulation.repair(event.component, at=event.repair_time)
    simulation.run(until=HORIZON + 500.0)

    metrics = simulation.metrics
    disrupted = [r for r in metrics.recoveries.values()
                 if r.failed_at is not None and not r.endpoint_failed]
    recovered = [r for r in disrupted if r.recovered]
    rows = []
    for record in sorted(recovered,
                         key=lambda r: -(r.service_disruption or 0))[:10]:
        connection = network.connection(record.connection_id)
        bound = connection_delay_bound(connection, d_max=1.0)
        rows.append([
            record.connection_id,
            record.recovered_serial,
            f"{record.service_disruption:.2f}",
            f"{bound:.2f}",
            "yes" if record.service_disruption <= bound else "NO",
        ])
    print()
    print(format_table(
        ["conn", "backup used", "disruption", "Γ bound", "within"],
        rows,
        title="Slowest 10 fast recoveries vs the Section 5.3 bound",
    ))
    unrecoverable = sum(1 for r in disrupted if r.unrecoverable)
    print(f"\ndisrupted connections : {len(disrupted)} "
          f"(endpoints survived)")
    print(f"fast-recovered        : {len(recovered)}")
    print(f"ran out of backups    : {unrecoverable}")
    print(f"endpoint crashes      : "
          f"{sum(1 for r in metrics.recoveries.values() if r.endpoint_failed)}")
    print(f"multiplexing failures : {metrics.mux_failures}")
    print(f"channels rejoined     : {metrics.rejoins}")
    print(f"events processed      : {simulation.engine.events_processed}")
    totals = simulation.rcc_totals()
    print(f"control plane         : {totals['messages_delivered']} messages "
          f"in {totals['frames_delivered']} frames, "
          f"{totals['retransmissions']} retransmissions, worst hop delay "
          f"{simulation.worst_control_delay():.2f}")


if __name__ == "__main__":
    main()
