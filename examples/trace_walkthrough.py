#!/usr/bin/env python
"""A narrated recovery: watch every protocol step of one failure.

Enables event tracing on the protocol runtime, kills one link, and prints
the complete causal chain — crash, neighbour detection, failure reports
hopping node by node toward both end-nodes, bidirectional activation,
spare draws, end-to-end completion — exactly the sequence of the paper's
Section 4 walkthrough and Fig. 5(c).

Also runs the same failure with heartbeat-based detection enabled (no
oracle: neighbours notice missed beats) to show the detection latency the
paper's companion work [HAN97a] studies.

Run:  python examples/trace_walkthrough.py
"""

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.faults import FailureScenario
from repro.protocol import ProtocolConfig, ProtocolSimulation


def build():
    network = BCPNetwork(torus(4, 4, capacity=200.0))
    connection = network.establish(
        0, 10, ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=1)
    )
    print(f"primary: {' -> '.join(map(str, connection.primary.path))}")
    print(f"backup : {' -> '.join(map(str, connection.backups[0].path))}")
    return network, connection


def run(network, connection, config, label):
    simulation = ProtocolSimulation(network, config, trace=True)
    victim = connection.primary.path.links[2]
    simulation.inject_scenario(FailureScenario.of_links([victim]), at=10.0)
    simulation.run(until=400.0)
    print(f"\n=== {label}: failing {victim} at t=10 ===")
    interesting = [
        event for event in simulation.trace.events
        if event.category != "report" or event.time < 20
    ]
    for event in interesting[:30]:
        print(f"  t={event.time:7.2f}  {event.category:<12} "
              f"@node {event.node}: {event.description}")
    record = simulation.metrics.recoveries[connection.connection_id]
    print(f"  -> service disruption: {record.service_disruption:.2f}, "
          f"fully recovered at t={record.completed_at:.2f}")


def main() -> None:
    network, connection = build()
    run(network, connection, ProtocolConfig(),
        "oracle detection (paper's assumption)")
    run(
        network,
        connection,
        ProtocolConfig(
            heartbeat_detection=True,
            heartbeat_period=2.0,
            heartbeat_miss_threshold=2,
            rejoin_timeout=120.0,
        ),
        "heartbeat detection (emergent)",
    )


if __name__ == "__main__":
    main()
