#!/usr/bin/env python
"""Priority-based backup activation under contention (Section 4.3).

Creates deliberate spare-pool contention — several connections whose
backups share one under-provisioned pool — and runs the protocol three
times: with no prioritisation, with the activation-delay variant, and
with the preemption variant.  Watch who wins the spare, who pays, and
when.

Run:  python examples/priority_recovery.py
"""

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.faults import FailureScenario
from repro.protocol import ProtocolConfig, simulate_scenario
from repro.util.tables import format_table


def build_contended_network():
    """Four connections over the same route; their backups multiplex into
    a pool holding a single bandwidth unit, so exactly one can activate.

    The low-priority connections are established (and therefore notified)
    first, so *without* prioritisation the lowest-priority backup wins the
    race for the pool — exactly the inversion Section 4.3 addresses.
    """
    network = BCPNetwork(torus(6, 6, capacity=200.0))
    degrees = [14, 10, 6, 2]  # low priority first
    connections = []
    for degree in degrees:
        connections.append(network.establish(
            0, 2, ft_qos=FaultToleranceQoS(num_backups=1, mux_degree=degree)
        ))
    pool = network.ledger.spare_reserved(connections[0].backups[0].path.links[0])
    print(f"shared spare pool on backup links: {pool:g} Mbps for "
          f"{len(connections)} x 1 Mbps backups")
    return network, connections


def main() -> None:
    variants = {
        "no prioritisation": ProtocolConfig(),
        "activation delay (0.5/degree)": ProtocolConfig(
            activation_delay_per_degree=0.5
        ),
        "preemption": ProtocolConfig(preemption=True),
    }
    rows = []
    for name, config in variants.items():
        network, connections = build_contended_network()
        scenario = FailureScenario.of_links(
            [connections[0].primary.path.links[0]]
        )
        metrics = simulate_scenario(network, scenario, config)
        for connection in connections:
            record = metrics.recoveries[connection.connection_id]
            rows.append([
                name,
                f"mux={connection.mux_degree}",
                "recovered" if record.recovered else "mux failure",
                "-" if record.service_disruption is None
                else f"{record.service_disruption:.2f}",
            ])
        rows.append(["", "", "", ""])
    print()
    print(format_table(
        ["variant", "priority", "outcome", "service disruption"],
        rows[:-1],
        title="Who gets the spare? (lower mux degree = higher priority)",
    ))
    print("\nReading the table: without prioritisation the pool goes to "
          "whoever activates first;\nthe delay variant always taxes "
          "low-priority recovery; preemption taxes it only when\n"
          "contention actually bites.")


if __name__ == "__main__":
    main()
