#!/usr/bin/env python
"""Capacity planning: how much does fault-tolerance cost on *your* network?

A network operator's view of the paper's Figure 9 and Table 1: given a
topology and an expected traffic matrix, sweep the backup configurations
and print the spare-bandwidth overhead next to the failure coverage each
buys, including the brute-force and local-detour alternatives.

Swap in your own topology with Topology.from_networkx() — everything else
is topology-agnostic.

Run:  python examples/capacity_planning.py
"""

from repro import BCPNetwork, FaultToleranceQoS
from repro.baselines import (
    brute_force_evaluator,
    plan_local_detours,
)
from repro.experiments.workloads import all_pairs, establish_workload
from repro.faults import all_single_link_failures, all_single_node_failures
from repro.network.generators import hypercube
from repro.recovery import RecoveryEvaluator
from repro.util.tables import format_percent, format_table


def sweep(topology_factory, configurations):
    rows = []
    for label, backups, degree in configurations:
        network = BCPNetwork(topology_factory())
        report = establish_workload(
            network,
            all_pairs(network.topology),
            FaultToleranceQoS(num_backups=backups, mux_degree=degree),
        )
        if not report.complete:
            rows.append([label, "N/A", "N/A", "N/A", "N/A"])
            continue
        evaluator = RecoveryEvaluator(network)
        links = evaluator.evaluate_many(
            all_single_link_failures(network.topology))
        nodes = evaluator.evaluate_many(
            all_single_node_failures(network.topology))
        brute = brute_force_evaluator(network).evaluate_many(
            all_single_link_failures(network.topology))
        rows.append([
            label,
            format_percent(network.spare_fraction()),
            format_percent(links.r_fast),
            format_percent(nodes.r_fast),
            format_percent(brute.r_fast),
        ])
    return rows


def main() -> None:
    # Plan for a 32-node hypercube backbone (degree 5, well-connected).
    topology_factory = lambda: hypercube(5, capacity=150.0)

    configurations = [
        ("no backups", 0, 0),
        ("1 backup, no sharing (mux=0)", 1, 0),
        ("1 backup, mux=1 (all single failures)", 1, 1),
        ("1 backup, mux=3 (all link failures)", 1, 3),
        ("1 backup, mux=6 (cheapest)", 1, 6),
        ("2 backups, mux=6", 2, 6),
    ]
    rows = sweep(topology_factory, configurations)
    print(format_table(
        ["configuration", "spare", "R_fast 1-link", "R_fast 1-node",
         "brute-force 1-link"],
        rows,
        title="Fault-tolerance cost sheet — 32-node hypercube, all-pairs "
              "traffic",
    ))

    # And the pre-planned local-detour alternative at a glance.
    network = BCPNetwork(topology_factory())
    establish_workload(network, all_pairs(network.topology),
                       FaultToleranceQoS(num_backups=0, mux_degree=0))
    plan = plan_local_detours(network)
    print(f"\nlocal-detour baseline: spare "
          f"{format_percent(plan.spare_fraction)} for single-link coverage "
          f"{format_percent(plan.recovery_ratio_single_link(network))} "
          f"(avg stretch "
          f"{sum(plan.stretch(l) for l in plan.detours) / len(plan.detours):.1f}"
          f" extra hops per detour)")


if __name__ == "__main__":
    main()
