"""Data-plane simulation: real-time message streams over channels.

The paper's RMTP layer (Section 2) regulates and schedules the client's
actual data messages; Fig. 8 illustrates what happens to them during
failure recovery — messages in flight on the failed segment, plus those
sent before the source learns of the failure, are lost; transfer resumes
over the backup as soon as the source dispatches the activation message.

This package reproduces that behaviour quantitatively: a
:class:`~repro.datapath.regulator.TrafficRegulator` shapes the client's
(possibly bursty) arrivals, and a :class:`~repro.datapath.stream.DataStream`
injects the regulated messages into a running
:class:`~repro.protocol.runtime.ProtocolSimulation`, forwarding each one
hop by hop along whichever channel currently carries the connection and
recording delivery and loss.
"""

from repro.datapath.regulator import TrafficRegulator
from repro.datapath.stream import DataStream, StreamReport

__all__ = ["TrafficRegulator", "DataStream", "StreamReport"]
