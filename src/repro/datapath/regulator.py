"""Leaky-bucket traffic regulation (the RMTP "traffic regulator" of
Section 2: "a traffic regulator is used to smooth (oftentimes bursty)
packet arrivals").

The regulator admits a message immediately when a token is available and
otherwise computes the time at which the message becomes *eligible* —
the same eligibility notion the RCC transmitter uses.  Tokens accrue at
``rate`` per time unit up to ``depth``.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive


class TrafficRegulator:
    """A leaky-bucket (token-bucket) regulator.

    Parameters
    ----------
    rate:
        Sustained message rate (messages per time unit).
    depth:
        Bucket depth — the largest admissible burst.
    """

    def __init__(self, rate: float, depth: float = 1.0) -> None:
        check_positive(rate, "rate")
        check_positive(depth, "depth")
        self.rate = rate
        self.depth = depth
        self._tokens = depth
        self._last_update = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError(
                f"time went backwards: {now} < {self._last_update}"
            )
        self._tokens = min(
            self.depth, self._tokens + (now - self._last_update) * self.rate
        )
        self._last_update = now

    def tokens_at(self, now: float) -> float:
        """Tokens available at time ``now`` (read-only preview)."""
        elapsed = max(0.0, now - self._last_update)
        return min(self.depth, self._tokens + elapsed * self.rate)

    def eligible_at(self, now: float) -> float:
        """Earliest time a message arriving at ``now`` may be sent.

        Does not consume the token; call :meth:`consume` at the eligible
        time.
        """
        check_non_negative(now, "now")
        available = self.tokens_at(now)
        if available >= 1.0:
            return now
        return now + (1.0 - available) / self.rate

    def consume(self, now: float) -> None:
        """Spend one token at time ``now``; the message must be eligible."""
        self._refill(now)
        if self._tokens < 1.0 - 1e-9:
            raise ValueError(
                f"message not eligible at {now}: {self._tokens:.3f} tokens"
            )
        self._tokens -= 1.0
