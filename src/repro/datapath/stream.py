"""Data streams over a running protocol simulation.

A :class:`DataStream` emits regulated messages from a connection's source.
Each message rides whichever channel the *source* currently believes
carries the connection (its endpoint view), and is forwarded hop by hop
with a fixed per-hop delay.  A message is lost when

* the next link (or node) on its channel's path is down, or
* the channel is not in the PRIMARY state at the forwarding node — data
  arriving at a node of a not-yet-activated backup "will be discarded
  with no harm" (Section 4.2, footnote 6).

This reproduces the Fig. 8 message-loss behaviour: the messages in flight
at failure time plus those the source emits before it learns of the
failure are lost; delivery resumes with the first message sent after the
activation message (which travels the same path ahead of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datapath.regulator import TrafficRegulator
from repro.network.components import LinkId, NodeId
from repro.protocol.runtime import ProtocolSimulation
from repro.protocol.states import LocalChannelState
from repro.util.validation import check_positive


@dataclass
class StreamReport:
    """Delivery accounting of one data stream."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    #: Send times of lost messages (for loss-window analysis).
    loss_times: list[float] = field(default_factory=list)
    #: Worst end-to-end latency among delivered messages.
    max_latency: float = 0.0

    @property
    def loss_window(self) -> "tuple[float, float] | None":
        """(first, last) send time of lost messages — the service gap."""
        if not self.loss_times:
            return None
        return (min(self.loss_times), max(self.loss_times))

    @property
    def delivery_ratio(self) -> "float | None":
        if self.sent == 0:
            return None
        return self.delivered / self.sent


class DataStream:
    """A periodic, regulated message source for one connection."""

    #: Per-hop delay of data messages.  The paper assumes "the activation
    #: message is delivered faster than the data message" (Section 5.3);
    #: the default equals the RCC's D_max, and the kernel's FIFO tie-break
    #: lets an activation scheduled first win a same-instant race, so the
    #: first message sent after the activation survives.
    DEFAULT_HOP_DELAY = 1.0

    def __init__(
        self,
        simulation: ProtocolSimulation,
        connection_id: int,
        message_rate: float = 1.0,
        hop_delay: float = DEFAULT_HOP_DELAY,
        burst_depth: float = 1.0,
    ) -> None:
        check_positive(message_rate, "message_rate")
        check_positive(hop_delay, "hop_delay")
        self.simulation = simulation
        self.connection = simulation.network.connection(connection_id)
        self.hop_delay = hop_delay
        self.regulator = TrafficRegulator(message_rate, burst_depth)
        self.report = StreamReport()
        self._period = 1.0 / message_rate
        self._running = False

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, until: "float | None" = None) -> None:
        """Begin emitting at time ``at``; stop after ``until`` if given."""
        self._running = True
        self._until = until
        self.simulation.engine.schedule_at(at, self._emit)

    def stop(self) -> None:
        """Stop emitting; messages already in flight still complete."""
        self._running = False

    # ------------------------------------------------------------------
    def _emit(self) -> None:
        if not self._running:
            return
        engine = self.simulation.engine
        now = engine.now
        if self._until is not None and now > self._until:
            self._running = False
            return
        eligible = self.regulator.eligible_at(now)
        if eligible > now:
            engine.schedule_at(eligible, self._emit)
            return
        self.regulator.consume(now)
        self._send_message(now)
        engine.schedule(self._period, self._emit)

    def _send_message(self, sent_at: float) -> None:
        source = self.connection.source
        if not self.simulation.node_up(source):
            return  # a dead source emits nothing
        self.report.sent += 1
        view = self.simulation.daemons[source].views[
            self.connection.connection_id
        ]
        channel_id = view.current_channel
        record = self.simulation.daemons[source].records.get(channel_id)
        if record is None or record.state is not LocalChannelState.PRIMARY:
            self._lose(sent_at)
            return
        self._forward(channel_id, record.path.nodes, 0, sent_at)

    def _forward(
        self, channel_id: int, path_nodes: tuple, index: int, sent_at: float
    ) -> None:
        node: NodeId = path_nodes[index]
        simulation = self.simulation
        if not simulation.node_up(node):
            self._lose(sent_at)
            return
        if index == len(path_nodes) - 1:
            self._deliver(sent_at)
            return
        # Intermediate (or source) node: the channel must be active here
        # and the outgoing link alive for the message to proceed.
        record = simulation.daemons[node].records.get(channel_id)
        if record is None or record.state is not LocalChannelState.PRIMARY:
            self._lose(sent_at)
            return
        next_node = path_nodes[index + 1]
        link = LinkId(node, next_node)
        if not simulation.link_up(link):
            self._lose(sent_at)
            return
        simulation.engine.schedule(
            self.hop_delay, self._forward, channel_id, path_nodes,
            index + 1, sent_at,
        )

    def _deliver(self, sent_at: float) -> None:
        self.report.delivered += 1
        latency = self.simulation.engine.now - sent_at
        self.report.max_latency = max(self.report.max_latency, latency)

    def _lose(self, sent_at: float) -> None:
        self.report.lost += 1
        self.report.loss_times.append(sent_at)
