"""QoS specifications: timeliness and fault-tolerance.

Timeliness follows the paper's evaluation model: "the end-to-end delay
requirement of each channel is assumed to be met if the channel path is not
longer than the shortest-possible path by more than 2 hops" (Section 7).

Fault-tolerance QoS is either prescriptive (a number of backups plus a
multiplexing degree, as in the evaluation) or declarative (a required
reliability ``P_r``, satisfied by the literal negotiation scheme of
Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True, slots=True)
class DelayQoS:
    """End-to-end delay requirement expressed as hop slack.

    A path of ``h`` hops satisfies the QoS iff
    ``h <= shortest_possible + slack_hops``.

    ``per_channel_baseline`` decides what "shortest possible" means for a
    *backup* channel: with ``True`` (default) it is the shortest path that
    the backup could take given its disjointness constraints — i.e. each
    channel is judged against its own feasible optimum; with ``False`` it
    is the connection's unconstrained shortest path.  The paper's
    evaluation is only consistent with the per-channel reading: a third
    disjoint path within ``global_shortest + 2`` simply does not exist for
    many torus node pairs, yet the paper establishes double backups for
    all 4032 connections (Table 1(b)).
    """

    slack_hops: int = 2
    per_channel_baseline: bool = True

    def __post_init__(self) -> None:
        if self.slack_hops < 0:
            raise ValueError(f"slack_hops must be >= 0, got {self.slack_hops}")

    def max_hops(self, shortest_possible: int) -> int:
        """Longest admissible path for a connection whose unconstrained
        shortest path has ``shortest_possible`` hops."""
        check_non_negative(shortest_possible, "shortest_possible")
        return shortest_possible + self.slack_hops

    def satisfied_by(self, hops: int, shortest_possible: int) -> bool:
        """Whether a path of ``hops`` hops meets the requirement."""
        return hops <= self.max_hops(shortest_possible)


@dataclass(frozen=True, slots=True)
class FaultToleranceQoS:
    """Fault-tolerance requirement of a D-connection.

    Exactly one of the two styles is used:

    * *prescriptive* — ``num_backups`` and ``mux_degree`` given directly
      (``required_pr`` is ``None``).  ``mux_degree`` is the integer ``α``
      of the paper's ``mux=α`` notation: two backups may share spare
      resources iff their primaries share fewer than ``α`` components
      (equivalently ν = α·λ).  ``mux_degree = 0`` disables multiplexing.
    * *declarative* — ``required_pr`` given; the literal negotiation scheme
      (Section 3.4) picks the largest mux degree (and, if needed, extra
      backups) that achieves it.

    ``max_backups`` bounds the declarative search.
    """

    num_backups: int = 1
    mux_degree: int = 1
    required_pr: float | None = None
    max_backups: int = 2

    def __post_init__(self) -> None:
        if self.num_backups < 0:
            raise ValueError(f"num_backups must be >= 0, got {self.num_backups}")
        if self.mux_degree < 0:
            raise ValueError(f"mux_degree must be >= 0, got {self.mux_degree}")
        if self.max_backups < 0:
            raise ValueError(f"max_backups must be >= 0, got {self.max_backups}")
        if self.required_pr is not None:
            check_probability(self.required_pr, "required_pr")
            if self.max_backups < 1:
                raise ValueError(
                    "declarative fault-tolerance needs max_backups >= 1"
                )

    @property
    def is_declarative(self) -> bool:
        """Whether the requirement is a target ``P_r`` rather than an
        explicit backup configuration."""
        return self.required_pr is not None


#: A connection with no fault-tolerance at all (plain real-time channel).
NO_FAULT_TOLERANCE = FaultToleranceQoS(num_backups=0, mux_degree=0)
