"""Client traffic specification.

The paper's evaluation reduces traffic to a single per-link bandwidth
figure ("each channel requires 1 Mbps of bandwidth on each link of its
path"), which is what admission control consumes.  The message-level
parameters feed the RCC sizing rule of Section 5.2 and the discrete-event
runtime, where message transmission times matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True, slots=True)
class TrafficSpec:
    """Traffic parameters declared by the client at establishment time.

    Attributes
    ----------
    bandwidth:
        Reserved per-link bandwidth (Mbps).  This is the only parameter the
        admission test of the reproduction's steady-state evaluation uses.
    max_message_size:
        Largest message the client will inject (bits).
    max_message_rate:
        Maximum message arrival rate (messages/second) after traffic
        regulation.
    """

    bandwidth: float = 1.0
    max_message_size: float = 8_000.0
    max_message_rate: float = 125.0

    def __post_init__(self) -> None:
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.max_message_size, "max_message_size")
        check_positive(self.max_message_rate, "max_message_rate")

    @property
    def peak_rate(self) -> float:
        """Peak bit-rate implied by the message parameters (bits/second)."""
        return self.max_message_size * self.max_message_rate

    def scaled(self, factor: float) -> "TrafficSpec":
        """A copy with bandwidth scaled by ``factor`` (mixed-bandwidth
        workloads use this)."""
        check_positive(factor, "factor")
        return TrafficSpec(
            bandwidth=self.bandwidth * factor,
            max_message_size=self.max_message_size,
            max_message_rate=self.max_message_rate * factor,
        )
