"""Channel objects.

A :class:`Channel` is one virtual circuit of a D-connection: the primary or
one of its serially-numbered backups.  Channels are identified by a
network-unique integer id; backup serial numbers implement the paper's rule
that "one way to accomplish this [consistent bi-directional activation] is
to allocate serial numbers to the backups of each D-connection" (Section
4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.channels.traffic import TrafficSpec
from repro.routing.paths import Path


class ChannelRole(enum.Enum):
    """Role of a channel within its D-connection."""

    PRIMARY = "primary"
    BACKUP = "backup"


@dataclass
class Channel:
    """One virtual circuit (primary or backup) of a D-connection.

    Attributes
    ----------
    channel_id:
        Network-unique identifier, carried by failure reports.
    connection_id:
        The owning D-connection.
    role:
        Primary or backup.  A backup promoted by activation keeps its
        serial but its role becomes ``PRIMARY``.
    serial:
        0 for the primary, 1.. for backups in establishment order.
    path:
        The route; fixed for the channel's lifetime (real-time channels
        cannot be detoured on the fly — that is the paper's premise).
    traffic:
        Client traffic spec; ``traffic.bandwidth`` is reserved on each link.
    mux_degree:
        The integer ``α`` of ``mux=α`` (backups only; primaries carry the
        connection's value for bookkeeping but never multiplex).
    """

    channel_id: int
    connection_id: int
    role: ChannelRole
    serial: int
    path: Path
    traffic: TrafficSpec
    mux_degree: int = 0
    _components: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.serial < 0:
            raise ValueError(f"serial must be >= 0, got {self.serial}")
        self._components = self.path.components

    @property
    def bandwidth(self) -> float:
        """Reserved per-link bandwidth (Mbps)."""
        return self.traffic.bandwidth

    @property
    def is_primary(self) -> bool:
        return self.role is ChannelRole.PRIMARY

    @property
    def is_backup(self) -> bool:
        return self.role is ChannelRole.BACKUP

    @property
    def components(self) -> frozenset:
        """All components (nodes + links) of the channel path."""
        return self._components

    def fails_under(self, failed_components: frozenset | set) -> bool:
        """Whether this channel is disabled by the given component failures."""
        return self.path.intersects(failed_components)

    def promote(self) -> None:
        """Turn a backup into the connection's new primary (activation)."""
        if self.role is not ChannelRole.BACKUP:
            raise ValueError(f"channel {self.channel_id} is not a backup")
        self.role = ChannelRole.PRIMARY

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel(id={self.channel_id}, conn={self.connection_id}, "
            f"{self.role.value}#{self.serial}, "
            f"{self.path.source}->{self.path.destination}, "
            f"{self.path.hops} hops)"
        )
