"""Real-time channel service model (the RNMP/RMTP substrate of Section 2).

A *real-time channel* is a uni-directional virtual circuit with reserved
bandwidth and a delay QoS.  This package provides the client-facing
specifications (:class:`TrafficSpec`, :class:`DelayQoS`,
:class:`FaultToleranceQoS`), the channel objects, the network-wide channel
registry, and admission control.  The Backup Channel Protocol in
:mod:`repro.core` is layered on top, mirroring the paper's claim that BCP
"can be placed on top of any real-time channel protocol".
"""

from repro.channels.admission import AdmissionController, AdmissionError
from repro.channels.channel import Channel, ChannelRole
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.registry import ChannelRegistry
from repro.channels.traffic import TrafficSpec

__all__ = [
    "TrafficSpec",
    "DelayQoS",
    "FaultToleranceQoS",
    "Channel",
    "ChannelRole",
    "ChannelRegistry",
    "AdmissionController",
    "AdmissionError",
]
