"""Admission control (the RNMP admission test of Section 2).

The admission test of the reproduction checks bandwidth only, matching the
paper's simplification ("we consider only link bandwidth for simplicity").
Two kinds of admission happen:

* a *primary* channel needs ``traffic.bandwidth`` of free capacity on every
  link of its path, and
* a *backup* channel needs each link of its path to accommodate whatever
  spare-pool growth the multiplexing engine computes for it (possibly
  zero) — that check lives in :mod:`repro.core.multiplexing`, which calls
  back into the ledger.

This module also builds the link predicates the routers use, so routing
never proposes a path that admission would reject.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.traffic import TrafficSpec
from repro.network.components import LinkId
from repro.network.reservations import CapacityFloor, ReservationLedger
from repro.routing.paths import Path


class AdmissionError(Exception):
    """Raised when a channel fails the admission test."""

    def __init__(self, reason: str, link: LinkId | None = None) -> None:
        super().__init__(reason if link is None else f"{reason} (link {link})")
        self.reason = reason
        self.link = link


@dataclass
class AdmissionController:
    """Bandwidth admission tests over a reservation ledger."""

    ledger: ReservationLedger

    def primary_link_predicate(self, traffic: TrafficSpec) -> CapacityFloor:
        """Routing predicate: links able to carry a new primary reservation.

        Returns a recognised :class:`CapacityFloor` (not an opaque
        closure), so the flat routing core resolves admissibility to an
        array compare and can cache the search result.
        """
        return self.ledger.capacity_floor(traffic.bandwidth)

    def check_primary(self, path: Path, traffic: TrafficSpec) -> None:
        """Admission test for a primary over ``path``; raises on failure."""
        for link in path.links:
            if not self.ledger.can_reserve_primary(link, traffic.bandwidth):
                raise AdmissionError("insufficient free bandwidth", link)

    def reserve_primary(self, path: Path, traffic: TrafficSpec) -> None:
        """Reserve primary bandwidth along ``path`` (all-or-nothing).

        One bulk ledger operation: validate-then-apply with a single
        version bump, so downstream route caches invalidate once per
        admitted path instead of once per link.
        """
        self.ledger.reserve_primary_path(path.links, traffic.bandwidth)

    def release_primary(self, path: Path, traffic: TrafficSpec) -> None:
        """Release primary bandwidth along ``path`` (teardown)."""
        self.ledger.release_primary_path(path.links, traffic.bandwidth)
