"""Network-wide channel registry.

The registry indexes channels three ways — by id, by link, and by
component — so that the multiplexing engine can enumerate the backups on a
link, and the fault models can answer "which channels does this failure
disable?" in time proportional to the answer.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.channels.channel import Channel, ChannelRole
from repro.network.components import LinkId


class ChannelRegistry:
    """Mutable index of all live channels in a network."""

    def __init__(self) -> None:
        self._by_id: dict[int, Channel] = {}
        self._by_link: dict[LinkId, dict[int, Channel]] = defaultdict(dict)
        self._by_component: dict[object, set[int]] = defaultdict(set)
        self._next_id = 0

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------
    def allocate_id(self) -> int:
        """Next unused channel id."""
        channel_id = self._next_id
        self._next_id += 1
        return channel_id

    @property
    def next_id(self) -> int:
        """The id :meth:`allocate_id` would hand out next.

        Settable so snapshot restore (:mod:`repro.serve.state`) resumes
        the allocation sequence exactly where the snapshotted registry
        stopped — re-used ids would collide with departed channels'
        history in overlap caches and artifacts.
        """
        return self._next_id

    @next_id.setter
    def next_id(self, value: int) -> None:
        if value < self._next_id:
            raise ValueError(
                f"next_id may only move forward "
                f"({self._next_id} -> {value})"
            )
        self._next_id = value

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, channel: Channel) -> Channel:
        """Register ``channel``; its id must be unused."""
        if channel.channel_id in self._by_id:
            raise ValueError(f"duplicate channel id {channel.channel_id}")
        self._by_id[channel.channel_id] = channel
        for link in channel.path.links:
            self._by_link[link][channel.channel_id] = channel
        for component in channel.components:
            self._by_component[component].add(channel.channel_id)
        return channel

    def remove(self, channel_id: int) -> Channel:
        """Deregister and return the channel (teardown / closure)."""
        channel = self._by_id.pop(channel_id, None)
        if channel is None:
            raise KeyError(f"unknown channel id {channel_id}")
        for link in channel.path.links:
            siblings = self._by_link[link]
            siblings.pop(channel_id, None)
            if not siblings:
                del self._by_link[link]
        for component in channel.components:
            owners = self._by_component[component]
            owners.discard(channel_id)
            if not owners:
                del self._by_component[component]
        return channel

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, channel_id: object) -> bool:
        return channel_id in self._by_id

    def get(self, channel_id: int) -> Channel:
        """The channel with the given id; raises ``KeyError`` if unknown."""
        try:
            return self._by_id[channel_id]
        except KeyError:
            raise KeyError(f"unknown channel id {channel_id}") from None

    def channels(self) -> Iterator[Channel]:
        """All channels, in registration order."""
        return iter(self._by_id.values())

    def on_link(self, link: LinkId) -> list[Channel]:
        """Channels whose path traverses ``link``."""
        return list(self._by_link.get(link, {}).values())

    def backups_on_link(self, link: LinkId) -> list[Channel]:
        """Backup channels traversing ``link`` — the multiplexing domain."""
        return [
            channel
            for channel in self._by_link.get(link, {}).values()
            if channel.role is ChannelRole.BACKUP
        ]

    def primaries_on_link(self, link: LinkId) -> list[Channel]:
        """Primary channels traversing ``link``."""
        return [
            channel
            for channel in self._by_link.get(link, {}).values()
            if channel.role is ChannelRole.PRIMARY
        ]

    def on_component(self, component: object) -> list[Channel]:
        """Channels whose path includes the given node or link."""
        return [self._by_id[cid] for cid in self._by_component.get(component, ())]

    def affected_by(self, failed_components: Iterable[object]) -> set[int]:
        """Ids of channels disabled by failing all of ``failed_components``."""
        affected: set[int] = set()
        for component in failed_components:
            affected.update(self._by_component.get(component, ()))
        return affected

    def channel_count_on_link(self, link: LinkId) -> int:
        """Number of channels (primary + backup) on ``link`` — the ``y``
        term of the RCC sizing rule (Section 5.2)."""
        return len(self._by_link.get(link, {}))
