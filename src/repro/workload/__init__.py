"""Churn workloads: long-lived networks under arrival/departure dynamics.

The paper's evaluation loads a network once and studies it statically;
this package drives a :class:`~repro.core.bcp.BCPNetwork` through a
*churn* process — Poisson arrivals of D-connection requests with
exponential holding times — exercising establishment, teardown, and
spare-pool reconfiguration continuously.  See the "Churn workload"
section of docs/architecture.md.
"""

from repro.workload.churn import (
    ChurnConfig,
    ChurnEngine,
    ChurnStats,
    run_churn,
)

__all__ = [
    "ChurnConfig",
    "ChurnEngine",
    "ChurnStats",
    "run_churn",
]
