"""Seeded churn engine: Poisson arrivals, exponential holding times.

The engine drives a long-lived :class:`~repro.core.bcp.BCPNetwork`
through establish → hold → teardown cycles on a simulated clock:

* **arrivals** form a Poisson process (rate ``arrival_rate``); each
  arrival requests a D-connection between a seeded node pair;
* arrivals landing within ``batch_window`` of each other — without a
  departure or epoch boundary in between — are admitted as one **batch**
  through :meth:`~repro.core.bcp.BCPNetwork.establish_batch`, so
  same-pair requests share a single routing pass;
* each admitted connection **holds** for an exponential time (mean
  ``holding_time``) and is then torn down through the incremental bulk
  path (only the links its channels crossed are touched);
* at every **epoch boundary** (``epoch_interval``) the engine audits the
  reservation ledger, cross-checks the multiplexing engine's required
  pools against the ledger's mirrored spare pools, samples the blocking /
  load / spare time series, and — optionally — evaluates a deterministic
  sample of single-link failure scenarios against the live network
  (the evaluate-under-churn snapshot).

Determinism: four independent RNG streams (arrival gaps, node pairs,
holding times, per-epoch evaluation) are derived from one seed via
:func:`~repro.util.rng.spawn_rngs`, every simulated quantity (including
the recorded establishment latency, ``per_hop_latency`` x channel hops)
is computed from seeded state, and per-epoch scenario evaluation folds
only its *counters* into the session registry (its wall-clock timers
stay in a private registry).  Metrics and stats exports are therefore
byte-identical for any ``workers`` count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.core.bcp import BCPNetwork, BatchRequest, EstablishmentError
from repro.faults.models import FailureScenario
from repro.obs.registry import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    get_registry,
)
from repro.obs.slo import SLOEngine
from repro.parallel import evaluate_scenarios
from repro.recovery.metrics import RecoveryStats
from repro.util.rng import spawn_rngs
from repro.util.validation import check_non_negative, check_positive



@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one churn run.

    ``pairs`` bounds the node-pair pool: arrivals draw from a pre-sampled
    pool of that many ordered pairs (with repetition), which makes
    same-pair batching effective; ``0`` draws a fresh pair per arrival.
    ``eval_scenarios`` enables the per-epoch recovery evaluation with a
    deterministic sample of that many single-link failures.
    """

    arrival_rate: float = 50.0
    holding_time: float = 10.0
    duration: float = 100.0
    seed: int = 0
    bandwidth: float = 1.0
    num_backups: int = 1
    mux_degree: int = 1
    slack_hops: int = 2
    batch_window: float = 0.05
    epoch_interval: float = 10.0
    eval_scenarios: int = 0
    pairs: int = 0
    per_hop_latency: float = 0.001
    workers: "int | None" = 1
    #: Declarative SLO target specs (see :mod:`repro.obs.slo`), evaluated
    #: against the engine's registry snapshot at every epoch boundary,
    #: e.g. ``("churn.establish_latency.p99 <= 0.02",)``.  Breaches are
    #: recorded in :attr:`ChurnStats.slo_breaches`; empty disables.
    slos: tuple = ()

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.holding_time, "holding_time")
        check_positive(self.duration, "duration")
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.epoch_interval, "epoch_interval")
        check_non_negative(self.batch_window, "batch_window")
        check_non_negative(self.per_hop_latency, "per_hop_latency")
        if self.num_backups < 0:
            raise ValueError(f"num_backups must be >= 0, got {self.num_backups}")
        if self.mux_degree < 0:
            raise ValueError(f"mux_degree must be >= 0, got {self.mux_degree}")
        if self.eval_scenarios < 0:
            raise ValueError(
                f"eval_scenarios must be >= 0, got {self.eval_scenarios}"
            )
        if self.pairs < 0:
            raise ValueError(f"pairs must be >= 0, got {self.pairs}")


@dataclass
class ChurnStats:
    """Aggregated outcome of one churn run (deterministic for a seed)."""

    arrivals: int = 0
    established: int = 0
    blocked: int = 0
    departures: int = 0
    batches: int = 0
    epochs: int = 0
    peak_connections: int = 0
    final_connections: int = 0
    #: Human-readable invariant violations found at epoch boundaries
    #: (ledger audit findings and mux-vs-ledger spare mismatches).
    audit_violations: list[str] = field(default_factory=list)
    #: SLO breaches found at epoch boundaries (one entry per breached
    #: target per epoch, stamped with the epoch time).
    slo_breaches: list[str] = field(default_factory=list)
    #: Merged per-epoch recovery evaluation (empty when disabled).
    recovery: RecoveryStats = field(default_factory=RecoveryStats)

    @property
    def blocking_probability(self) -> float:
        """Fraction of arrivals the network could not admit."""
        if self.arrivals == 0:
            return 0.0
        return self.blocked / self.arrivals

    @property
    def clean(self) -> bool:
        """Whether every epoch-boundary invariant check passed.

        Invariants only — breached SLOs do not make a run unclean.  Gate
        on :attr:`healthy` when SLO compliance matters too; gating on
        ``clean`` alone silently waves breached SLOs through (the bug
        this split fixed).
        """
        return not self.audit_violations

    @property
    def healthy(self) -> bool:
        """Whether the run was :attr:`clean` *and* met every SLO target."""
        return self.clean and not self.slo_breaches

    def to_dict(self) -> dict:
        """Deterministic JSON-ready summary (sorted, seeded values only)."""
        return {
            "arrivals": self.arrivals,
            "established": self.established,
            "blocked": self.blocked,
            "blocking_probability": self.blocking_probability,
            "departures": self.departures,
            "batches": self.batches,
            "epochs": self.epochs,
            "peak_connections": self.peak_connections,
            "final_connections": self.final_connections,
            "audit_violations": list(self.audit_violations),
            "slo_breaches": list(self.slo_breaches),
            "recovery": {
                "scenarios": self.recovery.scenarios,
                "failed_primaries": self.recovery.failed_primaries,
                "fast_recovered": self.recovery.fast_recovered,
                "mux_failures": self.recovery.mux_failures,
                "channels_lost": self.recovery.channels_lost,
                "r_fast": self.recovery.r_fast,
            },
        }


class ChurnEngine:
    """Drives one network through one seeded churn run."""

    def __init__(
        self,
        network: BCPNetwork,
        config: ChurnConfig,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.network = network
        self.config = config
        self.registry = metrics if metrics is not None else get_registry()
        (
            self._arrival_rng,
            self._pair_rng,
            self._holding_rng,
            self._eval_rng,
        ) = spawn_rngs(config.seed, 4)
        self._c_arrivals = self.registry.counter("churn.arrivals")
        self._c_established = self.registry.counter("churn.established")
        self._c_blocked = self.registry.counter("churn.blocked")
        self._c_departures = self.registry.counter("churn.departures")
        self._c_batches = self.registry.counter("churn.batches")
        self._c_violations = self.registry.counter("churn.audit_violations")
        self._h_latency = self.registry.histogram("churn.establish_latency")
        self._h_batch = self.registry.histogram("churn.batch_size")
        self._s_blocking = self.registry.series("churn.blocking")
        self._s_load = self.registry.series("churn.network_load")
        self._s_spare = self.registry.series("churn.spare_fraction")
        self._s_live = self.registry.series("churn.connections")
        # Parsing here fails fast on malformed specs, before any churn
        # state exists.
        self._slo_engine = SLOEngine(config.slos) if config.slos else None
        self._c_slo_breaches = self.registry.counter("churn.slo_breaches")
        nodes = sorted(network.topology.nodes())
        if len(nodes) < 2:
            raise ValueError("churn needs a topology with at least two nodes")
        self._nodes = nodes
        self._pool = [self._draw_pair() for _ in range(config.pairs)]
        self._delay_qos = DelayQoS(slack_hops=config.slack_hops)
        self._ft_qos = FaultToleranceQoS(
            num_backups=config.num_backups, mux_degree=config.mux_degree
        )
        self._traffic = TrafficSpec(bandwidth=config.bandwidth)
        # topology.links() is insertion-ordered and identical for any
        # builder seed, so the scenario sample below is deterministic.
        self._eval_links = list(network.topology.links())
        self.stats = ChurnStats()
        #: Departure heap entries: (time, sequence, connection_id).
        self._departures: list[tuple[float, int, int]] = []
        self._departure_seq = 0
        # Resumable-run loop state (see :meth:`run`): the pending arrival
        # and epoch-boundary times live on the instance so a paused run
        # continues exactly where it stopped.
        self._started = False
        self._next_arrival: "float | None" = None
        self._next_epoch: "float | None" = None

    # ------------------------------------------------------------------
    # seeded draws
    # ------------------------------------------------------------------
    def _draw_pair(self) -> tuple:
        src = self._pair_rng.choice(self._nodes)
        dst = self._pair_rng.choice(self._nodes)
        while dst == src:
            dst = self._pair_rng.choice(self._nodes)
        return (src, dst)

    def _next_pair(self) -> tuple:
        if self._pool:
            return self._pool[self._pair_rng.randrange(len(self._pool))]
        return self._draw_pair()

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self, until: "float | None" = None) -> ChurnStats:
        """Run the churn process, optionally pausing at ``until``.

        Events are processed in simulated-time order with a fixed
        tie-break — epoch boundary, then departure, then arrival — so the
        trajectory is a pure function of the configuration.

        With ``until`` the loop stops *before* the first event later
        than it and returns the interim stats; a later ``run()`` call
        continues from exactly that point.  Pausing draws no RNG values
        and reorders no events, so a paused-and-resumed run is
        byte-identical to an uninterrupted one — this is how the serve
        snapshot/restore smoke drives a mid-run server restart.
        """
        config = self.config
        duration = config.duration
        if not self._started:
            self._started = True
            first_arrival = self._arrival_rng.expovariate(config.arrival_rate)
            self._next_arrival = (
                first_arrival if first_arrival <= duration else None
            )
            self._next_epoch = min(config.epoch_interval, duration)
        horizon = duration if until is None else min(until, duration)
        while True:
            arrival_at = self._next_arrival
            depart_at = self._departures[0][0] if self._departures else None
            next_epoch = self._next_epoch
            candidates = [
                value
                for value in (arrival_at, depart_at, next_epoch)
                if value is not None and value <= duration
            ]
            if not candidates:
                break
            now = min(candidates)
            if now > horizon:
                # Paused between events; resume with another run() call.
                return self.stats
            if next_epoch is not None and next_epoch <= now:
                self._run_epoch(next_epoch)
                boundary = next_epoch + config.epoch_interval
                if next_epoch >= duration:
                    self._next_epoch = None
                else:
                    self._next_epoch = min(boundary, duration)
                continue
            if depart_at is not None and depart_at <= now:
                self._process_departure()
                continue
            self._next_arrival = self._process_arrivals(
                arrival_at, depart_at, next_epoch
            )
        if self._next_epoch is not None:  # pragma: no cover - loop closes epochs
            self._run_epoch(self._next_epoch)
            self._next_epoch = None
        self.stats.final_connections = self.network.num_connections
        return self.stats

    # ------------------------------------------------------------------
    def _process_arrivals(
        self,
        first_at: float,
        depart_at: "float | None",
        next_epoch: "float | None",
    ) -> "float | None":
        """Admit one arrival batch; returns the next arrival time.

        The batch collects consecutive arrivals within ``batch_window``
        of the first, stopping early if the next arrival would cross a
        departure or an epoch boundary (those events must see the network
        state their timestamps imply).
        """
        config = self.config
        deadline = first_at + config.batch_window
        batch: list[tuple[float, tuple, float]] = []
        at = first_at
        while True:
            pair = self._next_pair()
            holding = self._holding_rng.expovariate(1.0 / config.holding_time)
            batch.append((at, pair, holding))
            upcoming = at + self._arrival_rng.expovariate(config.arrival_rate)
            if upcoming > config.duration:
                upcoming = None
                break
            if upcoming > deadline:
                break
            if depart_at is not None and upcoming >= depart_at:
                break
            if next_epoch is not None and upcoming >= next_epoch:
                break
            at = upcoming

        requests = [
            BatchRequest(
                src=pair[0],
                dst=pair[1],
                traffic=self._traffic,
                delay_qos=self._delay_qos,
                ft_qos=self._ft_qos,
            )
            for _, pair, _ in batch
        ]
        results = self.network.establish_batch(requests)
        self.stats.arrivals += len(batch)
        self.stats.batches += 1
        self._c_arrivals.inc(len(batch))
        self._c_batches.inc()
        self._h_batch.record(float(len(batch)))
        for (arrived_at, _, holding), result in zip(batch, results):
            if not isinstance(result, EstablishmentError):
                self.stats.established += 1
                self._c_established.inc()
                self._h_latency.record(
                    config.per_hop_latency * result.total_hops
                )
                self._departure_seq += 1
                heapq.heappush(
                    self._departures,
                    (
                        arrived_at + holding,
                        self._departure_seq,
                        result.connection_id,
                    ),
                )
            else:
                self.stats.blocked += 1
                self._c_blocked.inc()
        live = self.network.num_connections
        if live > self.stats.peak_connections:
            self.stats.peak_connections = live
        return upcoming

    def _process_departure(self) -> None:
        _, _, connection_id = heapq.heappop(self._departures)
        self.network.teardown(connection_id)
        self.stats.departures += 1
        self._c_departures.inc()

    # ------------------------------------------------------------------
    # epoch boundaries
    # ------------------------------------------------------------------
    def _run_epoch(self, at: float) -> None:
        self.stats.epochs += 1
        violations = self._check_invariants()
        if violations:
            self.stats.audit_violations.extend(violations)
            self._c_violations.inc(len(violations))
        self._s_blocking.append(at, self.stats.blocking_probability)
        self._s_load.append(at, self.network.network_load())
        self._s_spare.append(at, self.network.spare_fraction())
        self._s_live.append(at, float(self.network.num_connections))
        if self._slo_engine is not None:
            for breach in self._slo_engine.breaches(self.registry.snapshot()):
                note = f" ({breach.detail})" if breach.detail else ""
                self.stats.slo_breaches.append(
                    f"epoch {at:g}: {breach.target.spec()} "
                    f"observed {breach.observed!r}{note}"
                )
                self._c_slo_breaches.inc()
        if self.config.eval_scenarios > 0:
            self._evaluate_epoch()

    def _check_invariants(self) -> list[str]:
        """Ledger audit plus the mux-vs-ledger spare consistency check.

        Delegated to :meth:`~repro.core.bcp.BCPNetwork.audit_invariants`
        so a remote network adapter (:mod:`repro.serve`) runs the same
        audit server-side in one round trip per epoch.
        """
        return self.network.audit_invariants()

    def _evaluate_epoch(self) -> None:
        """Evaluate a seeded single-link failure sample against the live
        network (the evaluate-under-churn snapshot).

        The evaluation runs under a private registry; only its *counters*
        — which are deterministic — are folded into the engine's registry.
        Its wall-clock scenario timer never reaches the session snapshot,
        keeping ``--metrics-out`` byte-identical across worker counts.

        A network exposing ``evaluate_failures`` (the remote adapter)
        runs the sweep on its side — the link sample and epoch seed are
        still drawn here, from the same RNG stream, so a remote run's
        recovery stats match a local run's bit for bit.
        """
        count = min(self.config.eval_scenarios, len(self._eval_links))
        links = self._eval_rng.sample(self._eval_links, count)
        epoch_seed = self._eval_rng.getrandbits(64)
        remote = getattr(self.network, "evaluate_failures", None)
        if remote is not None:
            stats, counters = remote(links, epoch_seed, self.config.workers)
        else:
            scenarios = [FailureScenario.of_links([link]) for link in links]
            private = MetricsRegistry()
            stats = evaluate_scenarios(
                self.network,
                scenarios,
                workers=self.config.workers,
                seed=epoch_seed,
                metrics=private,
            )
            counters = private.snapshot()["counters"]
        self.stats.recovery = self.stats.recovery.merge(stats)
        self.registry.absorb(
            {
                "schema": SNAPSHOT_SCHEMA,
                "counters": counters,
                "gauges": {},
                "histograms": {},
                "series": {},
            }
        )


def run_churn(
    network: BCPNetwork,
    config: "ChurnConfig | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> ChurnStats:
    """Convenience wrapper: run one churn process over ``network``."""
    engine = ChurnEngine(network, config or ChurnConfig(), metrics=metrics)
    return engine.run()
