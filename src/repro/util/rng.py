"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either a seed or a
ready-made :class:`random.Random` instance, so whole experiments are
reproducible from a single integer seed.
"""

from __future__ import annotations

import random

RngLike = "random.Random | int | None"


def make_rng(seed: "random.Random | int | None") -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or ``None``.

    ``None`` yields an RNG seeded from system entropy; an ``int`` yields a
    deterministic RNG; an existing ``random.Random`` is returned unchanged
    (so callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rngs(seed: "random.Random | int | None", count: int) -> list[random.Random]:
    """Derive ``count`` independent child RNGs from one parent seed.

    Children are seeded with distinct draws from the parent, so adding a new
    consumer at the end never perturbs the streams of earlier consumers.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
