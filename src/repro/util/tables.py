"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the same rows as the paper's tables; this
module keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_percent(value: float | None, digits: int = 2) -> str:
    """Format a fraction as a percentage string, or ``N/A`` for ``None``."""
    if value is None:
        return "N/A"
    return f"{100.0 * value:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are stringified with ``str``; ``None`` renders as ``N/A``.
    """
    str_rows = [["N/A" if cell is None else str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(render_row(list(headers)))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
