"""Small argument-validation helpers used across the library.

Each helper raises ``ValueError`` with a message naming the offending
parameter, and returns the validated value so calls can be inlined.
"""

from __future__ import annotations


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 < value <= 1`` (a non-zero fraction of a whole)."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be a fraction in (0, 1], got {value!r}")
    return value
