"""Shared utilities: seeded RNG helpers, table rendering, validation."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table, format_percent
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "format_table",
    "format_percent",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
