"""Declarative scenario matrix: specs, expansion, and the cached runner.

The single entry point the ROADMAP names: one ``repro.scenario/1`` spec
describes a cell (topology x workload x protocol ``(K, b, D)`` x seed),
a :class:`ScenarioMatrix` expands axis lists into a lattice, and
:func:`run_cells` executes the lattice through the existing engines with
compiled-topology caching and deterministic sharding over
:mod:`repro.parallel`.
"""

from repro.scenario.matrix import (
    MATRIX_SCHEMA,
    ScenarioMatrix,
    diff_cells,
    load_cells,
    select_shard,
)
from repro.scenario.runner import (
    RESULT_SCHEMA,
    CellResult,
    TopologyCache,
    append_trajectory,
    build_loaded_network,
    chaos_environment_from_spec,
    churn_config_from_spec,
    run_cell,
    run_cells,
)
from repro.scenario.spec import (
    FAILURE_MODELS,
    SCENARIO_SCHEMA,
    SPARE_MODES,
    TOPOLOGY_FAMILIES,
    WORKLOAD_KINDS,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    write_lattice,
)

__all__ = [
    "FAILURE_MODELS",
    "MATRIX_SCHEMA",
    "RESULT_SCHEMA",
    "SCENARIO_SCHEMA",
    "SPARE_MODES",
    "TOPOLOGY_FAMILIES",
    "WORKLOAD_KINDS",
    "CellResult",
    "ProtocolSpec",
    "ScenarioMatrix",
    "ScenarioSpec",
    "TopologyCache",
    "TopologySpec",
    "WorkloadSpec",
    "append_trajectory",
    "build_loaded_network",
    "chaos_environment_from_spec",
    "churn_config_from_spec",
    "diff_cells",
    "load_cells",
    "run_cell",
    "run_cells",
    "select_shard",
    "write_lattice",
]
