"""Scenario matrices: axis lists expanded into full cell lattices.

A :class:`ScenarioMatrix` holds one list per axis — topologies,
workloads, protocol configurations — and :meth:`~ScenarioMatrix.expand`
takes their cartesian product in a fixed order (topology outermost,
protocol innermost), deriving one deterministic per-cell seed from
``base_seed`` via the :mod:`repro.parallel` seeding discipline (one
parent RNG, one draw per cell, in expansion order).  Expanding the same
matrix therefore always yields the same lattice, cell names and seeds
included, no matter where or how many times it runs.

The ``repro.matrix/1`` JSON codec stores the axes, not the product, so a
hundreds-of-cells sweep is a dozen lines of JSON; :func:`load_cells`
accepts either format — a matrix file to expand, or a pre-expanded
``repro.scenario/1`` JSONL lattice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.scenario.spec import (
    MATRIX_DOC_KEYS,
    SCENARIO_SCHEMA,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.util.rng import make_rng

#: Codec schema identifier (bumped on incompatible format changes).
MATRIX_SCHEMA = "repro.matrix/1"


@dataclass(frozen=True)
class ScenarioMatrix:
    """Axis lists whose product is a scenario lattice."""

    name: str
    topologies: tuple = (TopologySpec(),)
    workloads: tuple = (WorkloadSpec(),)
    protocols: tuple = (ProtocolSpec(),)
    base_seed: int = 0
    #: SLO targets stamped onto every expanded cell.
    slos: tuple = ()
    #: Fully-pinned extra cells appended after the product — typically
    #: regression cells promoted from failing seeds, carrying their own
    #: explicit seed so they reproduce regardless of ``base_seed``.
    cells: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("matrix name must be non-empty")
        for axis, values in (
            ("topologies", self.topologies),
            ("workloads", self.workloads),
            ("protocols", self.protocols),
        ):
            if not values:
                raise ValueError(f"matrix axis {axis!r} must be non-empty")

    @property
    def num_cells(self) -> int:
        return (
            len(self.topologies) * len(self.workloads) * len(self.protocols)
            + len(self.cells)
        )

    def expand(self) -> list[ScenarioSpec]:
        """The full cell lattice, in deterministic product order.

        Cell seeds are drawn from one parent RNG seeded with
        ``base_seed``, in expansion order — a pure function of the
        matrix, independent of worker counts or prior expansions.
        Duplicate cell names (duplicate axis values) are an error.
        """
        parent = make_rng(self.base_seed)
        cells: list[ScenarioSpec] = []
        seen: set[str] = set()
        for topology in self.topologies:
            for workload in self.workloads:
                for protocol in self.protocols:
                    name = (
                        f"{self.name}/{topology.label}/"
                        f"{workload.label}/{protocol.label}"
                    )
                    if name in seen:
                        raise ValueError(
                            f"duplicate cell name {name!r}; matrix axes "
                            f"must not repeat values"
                        )
                    seen.add(name)
                    cells.append(
                        ScenarioSpec(
                            name=name,
                            topology=topology,
                            workload=workload,
                            protocol=protocol,
                            seed=parent.getrandbits(48),
                            slos=self.slos,
                        )
                    )
        for pinned in self.cells:
            if pinned.name in seen:
                raise ValueError(
                    f"pinned cell {pinned.name!r} collides with another "
                    f"cell; pinned cells must carry unique names"
                )
            seen.add(pinned.name)
            cells.append(pinned)
        return cells

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": MATRIX_SCHEMA,
            "name": self.name,
            "base_seed": self.base_seed,
            "axes": {
                "topologies": [t.to_dict() for t in self.topologies],
                "workloads": [w.to_dict() for w in self.workloads],
                "protocols": [p.to_dict() for p in self.protocols],
            },
            **({"slos": list(self.slos)} if self.slos else {}),
            **(
                {"cells": [cell.to_dict() for cell in self.cells]}
                if self.cells else {}
            ),
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioMatrix":
        schema = data.get("schema", MATRIX_SCHEMA)
        if schema != MATRIX_SCHEMA:
            raise ValueError(
                f"expected schema {MATRIX_SCHEMA!r}, got {schema!r}"
            )
        unknown = sorted(
            set(data)
            - {"schema", "name", "base_seed", "axes", "slos", "cells"}
            - MATRIX_DOC_KEYS
        )
        if unknown:
            raise ValueError(
                f"matrix: unknown field(s) {', '.join(unknown)}"
            )
        axes = data.get("axes", {})
        unknown_axes = sorted(
            set(axes) - {"topologies", "workloads", "protocols"}
        )
        if unknown_axes:
            raise ValueError(
                f"matrix: unknown axis/axes {', '.join(unknown_axes)}"
            )
        return ScenarioMatrix(
            name=data["name"],
            base_seed=data.get("base_seed", 0),
            topologies=tuple(
                TopologySpec.from_dict(item)
                for item in axes.get("topologies", [{}])
            ),
            workloads=tuple(
                WorkloadSpec.from_dict(item)
                for item in axes.get("workloads", [{}])
            ),
            protocols=tuple(
                ProtocolSpec.from_dict(item)
                for item in axes.get("protocols", [{}])
            ),
            slos=tuple(data.get("slos", ())),
            cells=tuple(
                ScenarioSpec.from_dict(item)
                for item in data.get("cells", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_cells(path: str) -> list[ScenarioSpec]:
    """Load a cell lattice from any spec file format.

    * ``repro.scenario/1`` JSONL — one spec per line (a pre-expanded
      lattice, e.g. ``scenarios/ci_smoke.jsonl``);
    * ``repro.matrix/1`` JSON — a matrix, expanded here;
    * ``repro.scenario/1`` JSON — a single spec (a one-cell lattice).

    Malformed lines/documents raise ``ValueError`` naming the location.
    """
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty spec file")
    if path.endswith(".jsonl"):
        cells = []
        for number, row in enumerate(text.splitlines(), start=1):
            if not row.strip():
                continue
            try:
                cells.append(ScenarioSpec.from_json(row))
            except (ValueError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{number}: malformed scenario spec: {error}"
                ) from None
        if not cells:
            raise ValueError(f"{path}: no scenario specs found")
        return cells
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON: {error}") from None
    try:
        schema = data.get("schema") if isinstance(data, dict) else None
        if schema == MATRIX_SCHEMA:
            return ScenarioMatrix.from_dict(data).expand()
        if schema == SCENARIO_SCHEMA:
            return [ScenarioSpec.from_dict(data)]
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"{path}: {error}") from None
    raise ValueError(
        f"{path}: expected a {MATRIX_SCHEMA!r} or {SCENARIO_SCHEMA!r} "
        f"document"
    )


def select_shard(cells, index: int, count: int) -> list[ScenarioSpec]:
    """Deterministic round-robin shard ``index`` of ``count``.

    Cell ``i`` belongs to shard ``i % count``; the union of all shards,
    re-interleaved, is exactly the input lattice, independent of how many
    runners split it.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return [cell for i, cell in enumerate(cells) if i % count == index]


def diff_cells(old, new) -> tuple[list, list, list]:
    """Compare two lattices by cell name.

    Returns ``(added, removed, changed)``: names only in ``new``, names
    only in ``old``, and names present in both whose pinned payloads
    differ.
    """
    old_by_name = {cell.name: cell for cell in old}
    new_by_name = {cell.name: cell for cell in new}
    added = sorted(set(new_by_name) - set(old_by_name))
    removed = sorted(set(old_by_name) - set(new_by_name))
    changed = sorted(
        name
        for name in set(old_by_name) & set(new_by_name)
        if old_by_name[name] != new_by_name[name]
    )
    return added, removed, changed
