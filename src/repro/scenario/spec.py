"""Declarative scenario specs: the single description every surface runs.

A :class:`ScenarioSpec` names one *cell* of the evaluation space — a
topology (family + size), a workload profile (steady-state recovery
evaluation, churn, or a chaos campaign), a protocol configuration
``(K, b, D)`` (backups per connection, multiplexing degree, RCC per-hop
delay bound), and a seed.  Chaos campaigns, churn runs, the paper's
experiment tables, and CI sweeps all consume the same spec instead of
hand-wiring their own combination, so a new scenario family is one JSON
value, not a new driver.

Specs are pure frozen data with a full-fidelity JSON codec
(``repro.scenario/1``); a JSONL file of specs is a *lattice* the matrix
runner executes cell by cell.  :mod:`repro.scenario.matrix` expands axis
lists into lattices; :mod:`repro.scenario.runner` executes them.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields

from repro.channels.qos import FaultToleranceQoS
from repro.chaos.profiles import PROFILES
from repro.network.generators import (
    complete_graph,
    hypercube,
    line,
    mesh,
    random_regular,
    ring,
    star,
    torus,
    tree,
)
from repro.network.topology import Topology
from repro.protocol.config import ProtocolConfig, RCCParams, SwitchingScheme
from repro.util.validation import check_non_negative, check_positive

#: Codec schema identifier (bumped on incompatible format changes).
SCENARIO_SCHEMA = "repro.scenario/1"

#: Keys a matrix document may carry purely for human readers; the codec
#: ignores them instead of rejecting the file.
MATRIX_DOC_KEYS = frozenset({"description", "notes"})

#: Topology families a spec may name, with their paper-default capacities.
TOPOLOGY_FAMILIES = (
    "torus",
    "mesh",
    "ring",
    "line",
    "star",
    "hypercube",
    "complete",
    "tree",
    "random_regular",
)

#: Grid families sized by ``rows x cols``; the rest use ``size`` (and
#: ``degree``/``depth`` where noted).
_GRID_FAMILIES = ("torus", "mesh")

#: Workload kinds a spec may name.
WORKLOAD_KINDS = ("eval", "churn", "chaos")

#: Failure models of the ``eval`` workload (the paper's Section 7.2).
FAILURE_MODELS = ("single-link", "single-node", "double-node")

#: Spare-placement modes of the ``eval`` workload: the proposed
#: multiplexed placement, or the Table 3 brute-force uniform placement.
SPARE_MODES = ("multiplexed", "bruteforce")


def _trimmed(instance) -> dict:
    """``asdict`` minus fields still at their default value.

    Keeps checked-in spec files short and diff-friendly: a cell names only
    what it pins, and the codec fills the rest back in on load.
    """
    data = {}
    for spec_field in fields(instance):
        value = getattr(instance, spec_field.name)
        if spec_field.default is not dataclasses.MISSING:
            if value == spec_field.default:
                continue
        elif spec_field.default_factory is not dataclasses.MISSING:
            if value == spec_field.default_factory():
                continue
        if isinstance(value, tuple):
            value = list(value)
        data[spec_field.name] = value
    return data


def _from_dict(cls, data: dict, context: str):
    """Strict inverse of :func:`_trimmed`: unknown keys are an error."""
    known = {spec_field.name for spec_field in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{context}: unknown field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    return cls(**kwargs)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """One topology family + size; :meth:`build` instantiates it.

    ``rows``/``cols`` size the grid families (torus, mesh); ``size``
    sizes everything else (node count, or the hypercube dimension);
    ``degree`` is the random-regular degree or tree branching; ``depth``
    is the tree depth; ``seed`` only affects ``random_regular``.
    ``capacity`` ``None`` means the family's paper default.
    """

    family: str = "torus"
    rows: int = 8
    cols: int = 8
    size: int = 0
    degree: int = 0
    depth: int = 0
    capacity: "float | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise ValueError(
                f"unknown topology family {self.family!r}; "
                f"known: {', '.join(TOPOLOGY_FAMILIES)}"
            )
        if self.family in _GRID_FAMILIES:
            if self.rows < 1 or self.cols < 1:
                raise ValueError(
                    f"{self.family} needs rows >= 1 and cols >= 1, "
                    f"got {self.rows}x{self.cols}"
                )
        elif self.size < 1:
            raise ValueError(
                f"{self.family} needs size >= 1, got {self.size}"
            )
        if self.capacity is not None:
            check_positive(self.capacity, "capacity")

    def build(self) -> Topology:
        """Instantiate the configured topology (paper-default capacities)."""
        family = self.family
        if family == "torus":
            return torus(self.rows, self.cols, self.capacity or 200.0)
        if family == "mesh":
            return mesh(self.rows, self.cols, self.capacity or 300.0)
        capacity = self.capacity or 200.0
        if family == "ring":
            return ring(self.size, capacity)
        if family == "line":
            return line(self.size, capacity)
        if family == "star":
            return star(self.size, capacity)
        if family == "hypercube":
            return hypercube(self.size, capacity)
        if family == "complete":
            return complete_graph(self.size, capacity)
        if family == "tree":
            return tree(self.degree, self.depth, capacity)
        if family == "random_regular":
            return random_regular(self.size, self.degree, capacity,
                                  seed=self.seed)
        raise AssertionError(f"unhandled family {family!r}")

    @property
    def cache_key(self) -> tuple:
        """Hashable identity for compiled-topology reuse across cells."""
        return dataclasses.astuple(self)

    @property
    def label(self) -> str:
        if self.family in _GRID_FAMILIES:
            return f"{self.rows}x{self.cols}-{self.family}"
        if self.family == "tree":
            return f"tree-b{self.degree}-d{self.depth}"
        if self.family == "random_regular":
            return f"rr{self.size}-d{self.degree}"
        return f"{self.family}{self.size}"

    def to_dict(self) -> dict:
        return _trimmed(self)

    @staticmethod
    def from_dict(data: dict) -> "TopologySpec":
        return _from_dict(TopologySpec, data, "topology spec")


# ----------------------------------------------------------------------
# protocol (K, b, D)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolSpec:
    """The protocol configuration axis: ``(K, b, D)`` plus the scheme.

    ``num_backups`` is K (backup channels per D-connection),
    ``mux_degree`` is b (the multiplexing degree every link accepts), and
    ``d_max`` is D (the RCC per-hop delivery bound the Γ analysis uses).
    """

    num_backups: int = 1
    mux_degree: int = 3
    d_max: float = 1.0
    scheme: int = 3
    detection_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.num_backups < 0:
            raise ValueError(
                f"num_backups must be >= 0, got {self.num_backups}"
            )
        if self.mux_degree < 0:
            raise ValueError(
                f"mux_degree must be >= 0, got {self.mux_degree}"
            )
        check_positive(self.d_max, "d_max")
        check_non_negative(self.detection_delay, "detection_delay")
        SwitchingScheme(self.scheme)  # raises on unknown scheme numbers

    def config(self, **overrides) -> ProtocolConfig:
        """The :class:`ProtocolConfig` this spec pins (rest at defaults)."""
        return ProtocolConfig(
            scheme=SwitchingScheme(self.scheme),
            rcc=RCCParams(max_delay=self.d_max),
            detection_delay=self.detection_delay,
            **overrides,
        )

    def qos(self) -> FaultToleranceQoS:
        return FaultToleranceQoS(
            num_backups=self.num_backups, mux_degree=self.mux_degree
        )

    @property
    def label(self) -> str:
        text = f"K{self.num_backups}b{self.mux_degree}"
        if self.d_max != 1.0:
            text += f"D{self.d_max:g}"
        return text

    def to_dict(self) -> dict:
        return _trimmed(self)

    @staticmethod
    def from_dict(data: dict) -> "ProtocolSpec":
        return _from_dict(ProtocolSpec, data, "protocol spec")


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """What the cell drives through the network.

    * ``eval`` — establish the all-pairs workload, then replay one of the
      paper's failure models (``failure_model``) through the recovery
      evaluator; ``spare_mode="bruteforce"`` evaluates under Table 3's
      uniform spare placement instead of the proposed multiplexed pools.
    * ``churn`` — a seeded arrival/departure process with epoch-boundary
      invariant audits (see :mod:`repro.workload.churn`).
    * ``chaos`` — a campaign of seeded fault schedules with the protocol
      invariant auditor attached (see :mod:`repro.chaos`); ``profiles``
      empty means all profiles, rotated.
    """

    kind: str = "eval"
    # eval
    failure_model: str = "single-link"
    samples: int = 50
    spare_mode: str = "multiplexed"
    # churn
    arrival_rate: float = 50.0
    holding_time: float = 10.0
    duration: float = 20.0
    epoch_interval: float = 5.0
    eval_scenarios: int = 0
    pairs: int = 64
    bandwidth: float = 1.0
    batch_window: float = 0.05
    # chaos
    campaign_size: int = 8
    connections: int = 6
    profiles: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"known: {', '.join(WORKLOAD_KINDS)}"
            )
        if self.failure_model not in FAILURE_MODELS:
            raise ValueError(
                f"unknown failure model {self.failure_model!r}; "
                f"known: {', '.join(FAILURE_MODELS)}"
            )
        if self.spare_mode not in SPARE_MODES:
            raise ValueError(
                f"unknown spare mode {self.spare_mode!r}; "
                f"known: {', '.join(SPARE_MODES)}"
            )
        if self.samples < 0:
            raise ValueError(f"samples must be >= 0, got {self.samples}")
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.holding_time, "holding_time")
        check_positive(self.duration, "duration")
        check_positive(self.epoch_interval, "epoch_interval")
        check_positive(self.bandwidth, "bandwidth")
        check_non_negative(self.batch_window, "batch_window")
        if self.eval_scenarios < 0:
            raise ValueError(
                f"eval_scenarios must be >= 0, got {self.eval_scenarios}"
            )
        if self.pairs < 0:
            raise ValueError(f"pairs must be >= 0, got {self.pairs}")
        if self.campaign_size < 1:
            raise ValueError(
                f"campaign_size must be >= 1, got {self.campaign_size}"
            )
        if self.connections < 1:
            raise ValueError(
                f"connections must be >= 1, got {self.connections}"
            )
        unknown = [name for name in self.profiles if name not in PROFILES]
        if unknown:
            raise ValueError(
                f"unknown chaos profile(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(PROFILES))}"
            )

    @property
    def label(self) -> str:
        if self.kind == "eval":
            text = f"eval-{self.failure_model}"
            if self.spare_mode == "bruteforce":
                text += "-bf"
            return text
        if self.kind == "chaos" and len(self.profiles) == 1:
            return f"chaos-{self.profiles[0]}"
        return self.kind

    def to_dict(self) -> dict:
        return _trimmed(self)

    @staticmethod
    def from_dict(data: dict) -> "WorkloadSpec":
        return _from_dict(WorkloadSpec, data, "workload spec")


# ----------------------------------------------------------------------
# the cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-pinned scenario cell (the matrix runner's work unit)."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    seed: int = 0
    #: Declarative SLO targets (see :mod:`repro.obs.slo`) evaluated
    #: against the cell's own registry snapshot after the run; the
    #: symbolic ``gamma`` threshold resolves to the cell network's
    #: worst-case analytic recovery bound.
    slos: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "protocol": self.protocol.to_dict(),
            "seed": self.seed,
            **({"slos": list(self.slos)} if self.slos else {}),
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(
                f"expected schema {SCENARIO_SCHEMA!r}, got {schema!r}"
            )
        unknown = sorted(
            set(data)
            - {"schema", "name", "topology", "workload", "protocol",
               "seed", "slos"}
        )
        if unknown:
            raise ValueError(
                f"scenario spec: unknown field(s) {', '.join(unknown)}"
            )
        return ScenarioSpec(
            name=data["name"],
            topology=TopologySpec.from_dict(data.get("topology", {})),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            protocol=ProtocolSpec.from_dict(data.get("protocol", {})),
            seed=data.get("seed", 0),
            slos=tuple(data.get("slos", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))


def write_lattice(path: str, specs) -> None:
    """Write a spec lattice as ``repro.scenario/1`` JSONL (one per line)."""
    with open(path, "w") as handle:
        for spec in specs:
            handle.write(spec.to_json() + "\n")
