"""Execute scenario cells through the existing engines, with shared
compiled-topology caching and deterministic sharding.

One :func:`run_cell` call executes one :class:`~repro.scenario.spec.
ScenarioSpec` through the engine its workload kind names — the recovery
evaluator (``eval``), the churn engine (``churn``), or the chaos
campaign machinery (``chaos``) — and folds the outcome into a
:class:`CellResult` whose ``to_dict()`` is a pure function of the spec.

**Compiled-cell caching.**  Cells of the same topology family + size
share one :class:`~repro.network.topology.Topology` instance through a
:class:`TopologyCache`; the first cell pays the build *and* the CSR
compilation (:func:`repro.routing.flatgraph.flat_view` caches the
compiled view on the topology, keyed by its version), and every later
cell reuses both.  Sharing is safe because cells never mutate the
topology — each builds its own :class:`~repro.core.bcp.BCPNetwork`
(ledger, channel registry, mux state) on top, and the flat view's
ledger-dependent tables are keyed by ledger identity + version.

**Deterministic sharding.**  :func:`run_cells` fans the lattice over
:func:`repro.parallel.parallel_map`: each cell runs under a fresh
registry, snapshots fold back in cell order, and therefore results,
metrics, and trace exports are byte-identical for any worker count.
:func:`~repro.scenario.matrix.select_shard` splits a lattice across CI
runners the same way — cell membership depends only on position.

Cell results also feed the perf-trajectory store: :func:`append_
trajectory` appends one ``repro.bench-trajectory/1`` line per cell, so
the matrix is the accumulation point the ROADMAP asks for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.delay import connection_delay_bound
from repro.baselines.bruteforce import uniform_spare_amount
from repro.chaos.engine import (
    ChaosEnvironment,
    build_campaign,
    campaign_summary,
    run_campaign,
)
from repro.chaos.profiles import DEFAULT_PROFILES
from repro.core.bcp import BCPNetwork
from repro.experiments.workloads import (
    all_pairs,
    establish_workload,
    uniform_traffic,
)
from repro.faults.enumerate import (
    all_single_link_failures,
    all_single_node_failures,
    sample_double_node_failures,
)
from repro.network.topology import Topology
from repro.obs.registry import get_registry
from repro.obs.slo import SLOEngine
from repro.parallel import evaluate_scenarios, parallel_map
from repro.routing.flatgraph import flat_view
from repro.scenario.spec import ScenarioSpec, TopologySpec
from repro.workload.churn import ChurnConfig, ChurnEngine

#: Result-row schema identifier (bumped on incompatible format changes).
RESULT_SCHEMA = "repro.scenario-result/1"

#: Trajectory rows appended by matrix runs reuse the bench-trajectory
#: schema; the anchor marks them as scenario measures, not timings.
TRAJECTORY_SCHEMA = "repro.bench-trajectory/1"
TRAJECTORY_ANCHOR = "scenario-matrix"


class TopologyCache:
    """Compiled topologies shared across cells of the same family/size.

    ``builds`` counts actual topology constructions — the cross-cell
    cache-reuse tests assert it stays at one per distinct
    :attr:`~repro.scenario.spec.TopologySpec.cache_key`.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple, Topology] = {}
        self.builds = 0

    def get(self, spec: TopologySpec) -> Topology:
        key = spec.cache_key
        topology = self._cache.get(key)
        if topology is None:
            topology = spec.build()
            # Compile the CSR view eagerly; it is cached on the topology
            # (keyed by version), so every cell sharing this instance
            # reuses the compiled form.
            flat_view(topology)
            self.builds += 1
            self._cache[key] = topology
        return topology

    def clear(self) -> None:
        self._cache.clear()
        self.builds = 0


#: Process-wide cache used by :func:`run_cells`; forked workers inherit
#: whatever the parent compiled before the pool started.  Purely a
#: performance artifact — results never depend on cache hits.
_SHARED_CACHE = TopologyCache()


@dataclass
class CellResult:
    """Deterministic outcome of one scenario cell."""

    spec: ScenarioSpec
    #: Per-kind summary (ChurnStats dict, campaign summary, eval stats).
    outcome: dict = field(default_factory=dict)
    #: Invariant violations, human-readable, in detection order.
    violations: tuple = ()
    #: SLO breaches against the cell's own registry snapshot.
    slo_breaches: tuple = ()
    #: Deterministic scalar measures for the perf-trajectory store.
    measures: dict = field(default_factory=dict)
    #: Flight-recorder snapshots from failing chaos runs (``repro.
    #: flight/1`` dicts); excluded from :meth:`to_dict`, dumped as
    #: diagnosis artifacts by the CLI.
    flights: tuple = field(default=(), compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.slo_breaches

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA,
            "cell": self.spec.name,
            "seed": self.spec.seed,
            "kind": self.spec.workload.kind,
            "ok": self.ok,
            "outcome": self.outcome,
            "violations": list(self.violations),
            "slo_breaches": list(self.slo_breaches),
            "measures": self.measures,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# spec -> engine-configuration bridges (the CLI consumes these too)
# ----------------------------------------------------------------------
def churn_config_from_spec(
    spec: ScenarioSpec, workers: "int | None" = 1
) -> ChurnConfig:
    """The :class:`ChurnConfig` a churn cell pins.

    SLOs are *not* threaded into the per-epoch engine here — matrix cells
    evaluate them once, against the finished cell's snapshot, so every
    workload kind shares one SLO mechanism.  ``repro churn`` passes its
    ``--slo`` flags separately.
    """
    workload = spec.workload
    return ChurnConfig(
        arrival_rate=workload.arrival_rate,
        holding_time=workload.holding_time,
        duration=workload.duration,
        seed=spec.seed,
        bandwidth=workload.bandwidth,
        num_backups=spec.protocol.num_backups,
        mux_degree=spec.protocol.mux_degree,
        batch_window=workload.batch_window,
        epoch_interval=workload.epoch_interval,
        eval_scenarios=workload.eval_scenarios,
        pairs=workload.pairs,
        workers=workers,
    )


def chaos_environment_from_spec(spec: ScenarioSpec) -> ChaosEnvironment:
    """The artifact-serialisable :class:`ChaosEnvironment` of a chaos
    cell (grid families only — artifacts replay through it)."""
    topology = spec.topology
    if topology.family not in ("torus", "mesh"):
        raise ValueError(
            f"chaos artifacts replay through ChaosEnvironment, which "
            f"covers grid families only; got {topology.family!r} "
            f"(matrix chaos cells support every family)"
        )
    return ChaosEnvironment(
        topology=topology.family,
        rows=topology.rows,
        cols=topology.cols,
        capacity=topology.capacity if topology.capacity is not None
        else 200.0,
        num_backups=spec.protocol.num_backups,
        mux_degree=spec.protocol.mux_degree,
        connections=spec.workload.connections,
    )


def build_loaded_network(
    spec: ScenarioSpec, cache: "TopologyCache | None" = None
) -> BCPNetwork:
    """A network carrying the deterministic chaos connection set.

    Mirrors :meth:`ChaosEnvironment.build` (node ``i`` to the node half
    the network away) but works over any topology family and reuses the
    compiled topology from ``cache``.
    """
    cache = cache if cache is not None else _SHARED_CACHE
    topology = cache.get(spec.topology)
    network = BCPNetwork(topology)
    nodes = sorted(topology.nodes())
    half = len(nodes) // 2
    qos = spec.protocol.qos()
    established = 0
    for index in range(len(nodes)):
        if established >= spec.workload.connections:
            break
        src = nodes[index]
        dst = nodes[(index + half) % len(nodes)]
        if src == dst:
            continue
        network.establish(src, dst, ft_qos=qos)
        established += 1
    return network


def _gamma(network: BCPNetwork, d_max: float) -> float:
    """The worst-case analytic recovery bound over live connections —
    the value the symbolic ``gamma`` SLO threshold resolves to."""
    return max(
        (connection_delay_bound(connection, d_max)
         for connection in network.connections()),
        default=0.0,
    )


# ----------------------------------------------------------------------
# per-kind cell executors (each runs under the *current* registry)
# ----------------------------------------------------------------------
def _run_eval_cell(spec: ScenarioSpec, cache: TopologyCache):
    workload = spec.workload
    topology = cache.get(spec.topology)
    network = BCPNetwork(topology)
    report = establish_workload(
        network, all_pairs(topology), spec.protocol.qos(),
        traffic=uniform_traffic(1.0),
    )
    if workload.failure_model == "single-link":
        scenarios = all_single_link_failures(topology)
    elif workload.failure_model == "single-node":
        scenarios = all_single_node_failures(topology)
    else:
        scenarios = sample_double_node_failures(
            topology, workload.samples, spec.seed
        )
    spare_override = None
    free_capacity_fallback = False
    if workload.spare_mode == "bruteforce":
        spare_override = uniform_spare_amount(network)
        free_capacity_fallback = True
    stats = evaluate_scenarios(
        network, scenarios, workers=1, seed=spec.seed,
        spare_override=spare_override,
        free_capacity_fallback=free_capacity_fallback,
    )
    outcome = {
        "requested": report.requested,
        "established": report.established,
        "rejected": report.rejected,
        "complete": report.essentially_complete,
        "spare_fraction": network.spare_fraction(),
        "network_load": network.network_load(),
        "scenarios": stats.scenarios,
        "failed_primaries": stats.failed_primaries,
        "fast_recovered": stats.fast_recovered,
        "mux_failures": stats.mux_failures,
        "channels_lost": stats.channels_lost,
        "r_fast": stats.r_fast,
    }
    measures = {
        "spare_fraction": network.spare_fraction(),
        "network_load": network.network_load(),
    }
    if stats.r_fast is not None:
        measures["r_fast"] = stats.r_fast
    if report.requested:
        measures["rejected_fraction"] = report.rejected / report.requested
    return network, outcome, (), measures, ()


def _run_churn_cell(spec: ScenarioSpec, cache: TopologyCache):
    topology = cache.get(spec.topology)
    network = BCPNetwork(topology)
    engine = ChurnEngine(network, churn_config_from_spec(spec, workers=1))
    stats = engine.run()
    return (
        network,
        stats.to_dict(),
        tuple(stats.audit_violations),
        {
            "blocking_probability": stats.blocking_probability,
            **({"r_fast": stats.recovery.r_fast}
               if stats.recovery.scenarios and stats.recovery.r_fast
               is not None else {}),
        },
        (),
    )


def _run_chaos_cell(spec: ScenarioSpec, cache: TopologyCache):
    workload = spec.workload
    network = build_loaded_network(spec, cache)
    config = spec.protocol.config()
    profiles = workload.profiles or DEFAULT_PROFILES
    schedules = build_campaign(
        spec.seed, workload.campaign_size, network, config,
        profiles=profiles,
    )
    # Cells are already the parallel unit — campaigns run inline.
    results = run_campaign(schedules, network, config, workers=1)
    summary = campaign_summary(results)
    violations = tuple(
        f"run {index} ({result.schedule.profile}) "
        f"[{violation.time:.3f}] {violation.invariant} @ "
        f"{violation.subject}: {violation.detail}"
        for index, result in enumerate(results)
        for violation in result.violations
    )
    flights = tuple(
        result.flight for result in results if result.flight is not None
    )
    runs = summary["runs"]
    recovered = summary["recovered"]
    attempted = recovered + summary["unrecoverable"]
    measures = {
        "failing_runs_fraction": summary["failing_runs"] / runs,
        "undrained_fraction": summary["undrained"] / runs,
    }
    if attempted:
        measures["recovered_fraction"] = recovered / attempted
    return network, summary, violations, measures, flights


_EXECUTORS = {
    "eval": _run_eval_cell,
    "churn": _run_churn_cell,
    "chaos": _run_chaos_cell,
}


def run_cell(
    spec: ScenarioSpec, cache: "TopologyCache | None" = None
) -> CellResult:
    """Execute one cell under the current registry/trace session.

    The cell's SLO targets are evaluated against the registry snapshot
    *after* the run; ``gamma`` resolves to the cell network's worst-case
    analytic recovery bound.
    """
    cache = cache if cache is not None else _SHARED_CACHE
    registry = get_registry()
    registry.counter("matrix.cells").inc()
    network, outcome, violations, measures, flights = _EXECUTORS[
        spec.workload.kind
    ](spec, cache)
    if violations:
        registry.counter("matrix.cell_violations").inc(len(violations))
    slo_breaches: tuple = ()
    if spec.slos:
        constants = {"gamma": _gamma(network, spec.protocol.d_max)}
        slo_breaches = tuple(
            f"{breach.target.spec()} observed {breach.observed!r}"
            + (f" ({breach.detail})" if breach.detail else "")
            for breach in SLOEngine(spec.slos).breaches(
                registry.snapshot(), constants=constants
            )
        )
        if slo_breaches:
            registry.counter("matrix.slo_breaches").inc(len(slo_breaches))
    return CellResult(
        spec=spec,
        outcome=outcome,
        violations=violations,
        slo_breaches=slo_breaches,
        measures=measures,
        flights=flights,
    )


def _run_cell_item(spec: ScenarioSpec) -> CellResult:
    return run_cell(spec, cache=_SHARED_CACHE)


def run_cells(
    specs, workers: "int | None" = 1, metrics=None
) -> list[CellResult]:
    """Run a lattice, optionally across worker processes.

    Results come back in cell order and are byte-identical for any
    worker count: each cell runs under a fresh registry and the per-cell
    snapshots fold into ``metrics`` (default: session registry) in cell
    order — see :func:`repro.parallel.parallel_map`.
    """
    return parallel_map(
        _run_cell_item, list(specs), workers=workers, metrics=metrics
    )


# ----------------------------------------------------------------------
# the perf-trajectory accumulation point
# ----------------------------------------------------------------------
def append_trajectory(results, path: str, label: str) -> int:
    """Append one deterministic trajectory line per cell to ``path``.

    Rows reuse the ``repro.bench-trajectory/1`` shape the bench gate
    writes (``python -m repro obs trajectory`` renders both), with the
    ``scenario-matrix`` anchor and a ``cell`` field naming the producing
    cell.  Cells without scalar measures are skipped.  Returns the
    number of rows appended.
    """
    rows = 0
    with open(path, "a") as handle:
        for result in results:
            if not result.measures:
                continue
            entry = {
                "schema": TRAJECTORY_SCHEMA,
                "label": f"{label}:{result.spec.name}",
                "anchor": TRAJECTORY_ANCHOR,
                "cell": result.spec.name,
                "normalized": dict(sorted(result.measures.items())),
            }
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            rows += 1
    return rows
