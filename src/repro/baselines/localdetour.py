"""Pre-planned local detours ([ZHE92]-style baseline).

For every simplex link, a detour path between its endpoints (avoiding the
link itself and its reverse) is planned in advance, and spare bandwidth is
reserved on the detour's links sized for a *deterministic single-link
failure* guarantee: on each link ℓ, the spare must cover, for the worst
single failed link f, the total bandwidth of the channels crossing f whose
detour runs over ℓ.

The paper's critique (Section 8): recovery is fast and local ("failures
are handled without intervention of source nodes"), but "this method
requires reservation of substantial amounts of extra resources, and
resource usage becomes inefficient after failure recovery, because channel
path-lengths are usually extended by local detouring."  The plan object
exposes both effects: the spare-fraction overhead and the per-recovery
path stretch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bcp import BCPNetwork
from repro.network.components import LinkId
from repro.routing.paths import Path
from repro.routing.shortest import NoPathError, RouteConstraints, shortest_path


@dataclass
class LocalDetourPlan:
    """The pre-planned detours and their spare reservations."""

    #: protected link -> detour path between its endpoints.
    detours: dict[LinkId, Path] = field(default_factory=dict)
    #: links whose endpoints have no alternative path (unprotectable).
    unprotected: list[LinkId] = field(default_factory=list)
    #: per-link spare reservation implied by the plan.
    spare: dict[LinkId, float] = field(default_factory=dict)
    #: total network capacity (for the overhead fraction).
    total_capacity: float = 0.0

    @property
    def spare_fraction(self) -> float:
        """Spare reservation over total capacity — comparable to the
        paper's spare-bandwidth percentages."""
        if self.total_capacity == 0:
            return 0.0
        return sum(self.spare.values()) / self.total_capacity

    def stretch(self, link: LinkId) -> "int | None":
        """Extra hops a channel gains when this link is detoured (the
        detour replaces 1 hop)."""
        detour = self.detours.get(link)
        if detour is None:
            return None
        return detour.hops - 1

    def covers(self, link: LinkId) -> bool:
        """Whether the plan protects ``link``."""
        return link in self.detours

    def recovery_ratio_single_link(self, network: BCPNetwork) -> float:
        """Fraction of (channel, failed-link) incidents the plan repairs:
        1.0 whenever every loaded link is protectable (the deterministic
        guarantee of this scheme)."""
        covered = 0
        total = 0
        for link in network.topology.links():
            channels = network.registry.primaries_on_link(link)
            total += len(channels)
            if self.covers(link):
                covered += len(channels)
        return covered / total if total else 1.0


def plan_local_detours(network: BCPNetwork) -> LocalDetourPlan:
    """Build the detour plan for the network's current primary channels.

    Backup channels are irrelevant to this baseline; only primaries are
    protected.  Detours are shortest paths between the protected link's
    endpoints that avoid the link in both directions (a failed duplex pair
    is the usual physical event).
    """
    topology = network.topology
    plan = LocalDetourPlan(total_capacity=topology.total_capacity())

    # Plan one detour per link that carries at least one primary.
    demand: dict[LinkId, float] = {}
    for link in topology.links():
        channels = network.registry.primaries_on_link(link)
        if not channels:
            continue
        demand[link] = sum(channel.bandwidth for channel in channels)
        constraints = RouteConstraints(
            excluded_links=frozenset({link, link.reversed()})
        )
        try:
            plan.detours[link] = shortest_path(
                topology, link.src, link.dst, constraints
            )
        except NoPathError:
            plan.unprotected.append(link)

    # Spare sizing: worst single failed link per carrying link.
    for carrying in topology.links():
        worst = 0.0
        for protected, detour in plan.detours.items():
            if carrying in detour.links:
                worst = max(worst, demand[protected])
        if worst > 0:
            plan.spare[carrying] = worst
    return plan
