"""Reactive re-establishment ([BAN93]-style baseline).

No resources are reserved for fault-tolerance.  When a failure disables a
primary channel, the source attempts to establish a *new* channel from
scratch in the residual network, competing with every other disrupted
connection for what capacity is left.  The paper's critique (Section 8):
"it does not give any guarantee on failure recovery", and contention can
force repeated attempts.

The evaluation here replays that process combinatorially: disrupted
connections re-route one at a time (in a configurable order) over the
residual topology with live capacity accounting, under the same delay QoS
as the original channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.bcp import BCPNetwork
from repro.faults.models import FailureScenario
from repro.network.reservations import ReservationLedger
from repro.routing.shortest import (
    NoPathError,
    RouteConstraints,
    hop_distance,
    shortest_path,
)
from repro.util.rng import make_rng


class ReactiveOutcome(enum.Enum):
    """Per-connection result of a reactive recovery attempt."""

    REROUTED = "rerouted"
    NO_ROUTE = "no_route"           # no QoS-feasible path in the residual net
    NO_CAPACITY = "no_capacity"     # paths exist but bandwidth is taken
    EXCLUDED = "excluded"           # an end-node failed


@dataclass
class ReactiveResult:
    """Outcome of one scenario under reactive re-establishment."""

    scenario: FailureScenario
    outcomes: dict[int, ReactiveOutcome] = field(default_factory=dict)
    #: Hop count of each successful replacement path.
    new_hops: dict[int, int] = field(default_factory=dict)

    @property
    def failed_primaries(self) -> int:
        return sum(
            1
            for outcome in self.outcomes.values()
            if outcome is not ReactiveOutcome.EXCLUDED
        )

    @property
    def recovery_ratio(self) -> float | None:
        """Fraction of disrupted connections that found a new channel —
        the reactive analogue of R_fast (but with re-establishment-scale
        latency, not backup-activation latency)."""
        failed = self.failed_primaries
        if failed == 0:
            return None
        recovered = sum(
            1
            for outcome in self.outcomes.values()
            if outcome is ReactiveOutcome.REROUTED
        )
        return recovered / failed


def evaluate_reactive(
    network: BCPNetwork,
    scenario: FailureScenario,
    order: str = "connection_id",
    seed: "int | None" = 0,
) -> ReactiveResult:
    """Replay reactive recovery for one failure scenario.

    ``network`` should normally be loaded with zero-backup connections (no
    spare anywhere); backups, if present, are ignored — this baseline never
    uses them.  The network is not mutated.
    """
    topology = network.topology
    failed_components = scenario.components(topology)
    residual = topology.subgraph_without(
        failed_nodes=scenario.failed_nodes,
        failed_links=[
            component
            for component in failed_components
            if component not in scenario.failed_nodes
        ],
    )
    # Fresh ledger holding the surviving primaries' reservations.
    ledger = ReservationLedger(residual)
    disrupted = []
    result = ReactiveResult(scenario=scenario)
    for connection in network.connections():
        if scenario.hits_endpoint(connection.source, connection.destination):
            if connection.primary.fails_under(failed_components):
                result.outcomes[connection.connection_id] = (
                    ReactiveOutcome.EXCLUDED
                )
            continue
        if connection.primary.fails_under(failed_components):
            disrupted.append(connection)
            continue
        for link in connection.primary.path.links:
            if link in residual:
                ledger.reserve_primary(link, connection.traffic.bandwidth)

    if order == "random":
        make_rng(seed).shuffle(disrupted)
    else:
        disrupted.sort(key=lambda conn: conn.connection_id)

    for connection in disrupted:
        bandwidth = connection.traffic.bandwidth
        try:
            shortest_possible = hop_distance(
                topology, connection.source, connection.destination
            )
        except NoPathError:  # pragma: no cover - original net is connected
            shortest_possible = 0
        constraints = RouteConstraints(
            link_admissible=ledger.capacity_floor(bandwidth),
            max_hops=connection.delay_qos.max_hops(shortest_possible),
        )
        try:
            path = shortest_path(
                residual, connection.source, connection.destination, constraints
            )
        except NoPathError:
            # Distinguish "no path at all within QoS" from "paths exist but
            # capacity is gone" — the latter is the contention the paper
            # warns about.
            try:
                shortest_path(
                    residual,
                    connection.source,
                    connection.destination,
                    RouteConstraints(
                        max_hops=connection.delay_qos.max_hops(shortest_possible)
                    ),
                )
            except NoPathError:
                result.outcomes[connection.connection_id] = (
                    ReactiveOutcome.NO_ROUTE
                )
            else:
                result.outcomes[connection.connection_id] = (
                    ReactiveOutcome.NO_CAPACITY
                )
            continue
        for link in path.links:
            ledger.reserve_primary(link, bandwidth)
        result.outcomes[connection.connection_id] = ReactiveOutcome.REROUTED
        result.new_hops[connection.connection_id] = path.hops
    return result
