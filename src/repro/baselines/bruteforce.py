"""Brute-force multiplexing (Section 7.4).

"In the brute-force multiplexing method, the same amount of spare resource
is reserved for all links without considering the network status."  The
paper sizes that uniform amount as the *average* spare the proposed scheme
reserves under the same workload, making the two schemes' total overhead
identical — the comparison then isolates *where* the spare sits.
"""

from __future__ import annotations

from repro.core.bcp import BCPNetwork
from repro.recovery.evaluator import ActivationOrder, RecoveryEvaluator


def uniform_spare_amount(network: BCPNetwork) -> float:
    """The per-link uniform spare matching the proposed scheme's average.

    Total spare bandwidth divided by the number of links; the evaluator
    caps each link's pool at its remaining capacity, mirroring what a real
    reservation could actually hold.
    """
    num_links = network.topology.num_links
    if num_links == 0:
        return 0.0
    return network.ledger.total_spare() / num_links


def brute_force_evaluator(
    network: BCPNetwork,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    spare_per_link: float | None = None,
    seed: "int | None" = 0,
) -> RecoveryEvaluator:
    """A recovery evaluator using brute-force uniform spare pools.

    ``spare_per_link`` defaults to :func:`uniform_spare_amount` of the
    already-established network, i.e. the paper's same-total-overhead
    comparison.  Everything else (workload, routing, backup paths) is
    shared with the proposed scheme, so differences in R_fast come purely
    from spare placement.
    """
    amount = uniform_spare_amount(network) if spare_per_link is None else (
        spare_per_link
    )
    return RecoveryEvaluator(
        network, order=order, spare_override=amount, seed=seed
    )
