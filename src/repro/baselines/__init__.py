"""Baseline restoration schemes the paper compares against.

* :mod:`repro.baselines.bruteforce` — brute-force multiplexing
  (Section 7.4): the same amount of spare bandwidth on every link,
  ignoring network state.
* :mod:`repro.baselines.reactive` — reactive re-establishment with no
  standby resources ([BAN93]-style): on failure, try to build a new
  channel from scratch in the residual network.
* :mod:`repro.baselines.localdetour` — pre-planned local detours around
  each link ([ZHE92]-style): failures are patched near the fault without
  end-node involvement, at the cost of substantial dedicated spare.
"""

from repro.baselines.bruteforce import brute_force_evaluator, uniform_spare_amount
from repro.baselines.localdetour import LocalDetourPlan, plan_local_detours
from repro.baselines.reactive import ReactiveOutcome, evaluate_reactive

__all__ = [
    "uniform_spare_amount",
    "brute_force_evaluator",
    "evaluate_reactive",
    "ReactiveOutcome",
    "plan_local_detours",
    "LocalDetourPlan",
]
