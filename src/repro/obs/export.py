"""Export and rendering of metrics snapshots and trace logs.

Two machine-readable formats (documented in docs/architecture.md):

* **metrics JSON** — one ``repro.metrics/1`` snapshot document, written
  by :func:`write_metrics`.  Keys are sorted, so two identical seeded
  runs produce byte-identical ``counters`` sections (timer values are
  wall-clock and will differ).
* **trace JSONL** — one JSON object per recorded
  :class:`~repro.sim.trace.TraceEvent`, in recording order, with keys
  ``time``/``category``/``node``/``description``, written by
  :func:`write_trace`.

:func:`format_metrics` renders a snapshot as the aligned ASCII tables
used by ``python -m repro stats``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.util.tables import format_table


def write_metrics(
    registry: MetricsRegistry,
    path: "Path | str",
    command: "str | None" = None,
) -> Path:
    """Write the registry's snapshot as pretty-printed JSON; returns the
    target path.  ``command`` tags the document with what produced it."""
    snapshot = registry.snapshot()
    if command is not None:
        snapshot["command"] = command
    target = Path(path)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return target


def write_trace(trace, path: "Path | str") -> Path:
    """Write a :class:`~repro.sim.trace.TraceLog` as JSONL; returns the
    target path."""
    target = Path(path)
    target.write_text(trace.to_jsonl())
    return target


def _series_quantile(summary: dict, q: float) -> "float | None":
    """Nearest-rank quantile over a series summary's retained point
    values (mirrors :meth:`repro.obs.registry.Series.quantile`)."""
    values = sorted(point[1] for point in summary.get("points") or [])
    if not values:
        return None
    rank = max(0, math.ceil(q * len(values)) - 1)
    return values[min(rank, len(values) - 1)]


def _fmt(value) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_metrics(snapshot: dict, title: "str | None" = None) -> str:
    """Render one snapshot as counter/gauge/histogram tables."""
    parts: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        parts.append(format_table(
            ["counter", "value"],
            [[name, value] for name, value in sorted(counters.items())],
            title=title or "Metrics summary",
        ))
    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append(format_table(
            ["gauge", "value", "min", "max"],
            [[name, _fmt(g["value"]), _fmt(g["min"]), _fmt(g["max"])]
             for name, g in sorted(gauges.items())],
        ))
    histograms = snapshot.get("histograms", {})
    if histograms:
        parts.append(format_table(
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
            [[name, h["count"], _fmt(h["mean"]), _fmt(h["p50"]),
              _fmt(h["p95"]), _fmt(h["p99"]), _fmt(h["max"])]
             for name, h in sorted(histograms.items())],
        ))
    series = snapshot.get("series", {})
    if series:
        parts.append(format_table(
            ["series", "count", "points", "p50", "p95", "p99",
             "last time", "last value"],
            [[name, s["count"], len(s["points"]),
              _fmt(_series_quantile(s, 0.50)),
              _fmt(_series_quantile(s, 0.95)),
              _fmt(_series_quantile(s, 0.99)),
              _fmt(s["points"][-1][0] if s["points"] else None),
              _fmt(s["points"][-1][1] if s["points"] else None)]
             for name, s in sorted(series.items())],
        ))
    if not parts:
        return (title or "Metrics summary") + "\n(no metrics recorded)"
    return "\n\n".join(parts)
