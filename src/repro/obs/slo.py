"""Declarative service-level objectives over metrics snapshots.

An :class:`SLOTarget` is parsed from a compact spec string::

    recovery_delay.p99 <= gamma
    churn.establish_latency.p99 <= 12
    protocol.unrecoverable.value <= 0

The left side names an instrument in a ``repro.metrics/1`` snapshot and
a statistic on it; the right side is a numeric threshold or a *symbolic*
constant (e.g. ``gamma``) resolved at evaluation time via the
``constants`` mapping — this is how ``recovery_delay.p99 <= gamma``
binds to the analytic Γ bound of whatever network the run used.

Statistic resolution order for a metric name: histogram → series →
gauge → counter.  Supported statistics:

* histograms — ``count``, ``mean``, ``min``, ``max``, ``p50``, ``p95``,
  ``p99`` (any ``pNN`` re-computed exactly from the decimated samples),
* series — ``count``, ``mean``, ``min``, ``max``, ``last``, any ``pNN``
  (nearest-rank over the retained points),
* gauges — ``value``, ``min``, ``max``,
* counters — ``value`` (alias ``count``).

A target naming a missing metric **breaches** (an SLO over something
that never got recorded is a misconfiguration worth failing loudly);
a present metric whose statistic is undefined (e.g. an empty histogram)
is *skipped* (``ok is None``).

:class:`SLOEngine` evaluates a set of targets against one snapshot and
returns :class:`SLOResult` rows; the churn engine runs one evaluation
per epoch, the chaos CLI one per campaign.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_PCT = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


def _nearest_rank(values: list, q: float):
    """Exact nearest-rank quantile (q in [0, 1]) over a sorted list."""
    if not values:
        return None
    if q <= 0:
        return values[0]
    if q >= 1:
        return values[-1]
    import math

    rank = math.ceil(q * len(values))
    return values[max(0, rank - 1)]


@dataclass(frozen=True)
class SLOTarget:
    """One declarative objective: ``metric.stat <op> threshold``."""

    metric: str
    stat: str
    op: str  # "<=" | ">="
    threshold: "float | str"  # number, or symbolic constant name

    @staticmethod
    def parse(spec: str) -> "SLOTarget":
        """Parse ``"name.stat <= value"`` (or ``>=``)."""
        for op in ("<=", ">="):
            if op in spec:
                left, _, right = spec.partition(op)
                break
        else:
            raise ValueError(
                f"SLO spec {spec!r} needs a '<=' or '>=' comparison"
            )
        left = left.strip()
        if "." not in left:
            raise ValueError(
                f"SLO spec {spec!r} needs a 'metric.stat' left side"
            )
        metric, _, stat = left.rpartition(".")
        right = right.strip()
        if not metric or not stat or not right:
            raise ValueError(f"malformed SLO spec {spec!r}")
        threshold: "float | str"
        try:
            threshold = float(right)
        except ValueError:
            threshold = right  # symbolic; resolved at evaluation time
        return SLOTarget(metric=metric, stat=stat, op=op,
                         threshold=threshold)

    def spec(self) -> str:
        """The canonical spec string."""
        threshold = self.threshold
        if isinstance(threshold, float):
            threshold = f"{threshold:g}"
        return f"{self.metric}.{self.stat} {self.op} {threshold}"


@dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one target against one snapshot."""

    target: SLOTarget
    observed: "float | None"
    threshold: "float | None"
    #: True = met, False = breached, None = skipped (no data to judge).
    ok: "bool | None"
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "spec": self.target.spec(),
            "observed": self.observed,
            "threshold": self.threshold,
            "ok": self.ok,
            "detail": self.detail,
        }


def _stat_from_histogram(h: dict, stat: str):
    if stat in ("count", "mean", "min", "max", "p50", "p95", "p99"):
        return h.get(stat)
    match = _PCT.match(stat)
    if match:
        samples = sorted(h.get("samples") or [])
        return _nearest_rank(samples, float(match.group(1)) / 100.0)
    raise ValueError(f"unknown histogram statistic {stat!r}")


def _stat_from_series(s: dict, stat: str):
    values = [point[1] for point in s.get("points") or []]
    if stat == "count":
        return s.get("count")
    if stat == "last":
        return values[-1] if values else None
    if stat == "mean":
        return sum(values) / len(values) if values else None
    if stat == "min":
        return min(values) if values else None
    if stat == "max":
        return max(values) if values else None
    match = _PCT.match(stat)
    if match:
        return _nearest_rank(sorted(values), float(match.group(1)) / 100.0)
    raise ValueError(f"unknown series statistic {stat!r}")


class SLOEngine:
    """Evaluate declarative targets against metrics snapshots."""

    def __init__(self, targets) -> None:
        self.targets: list[SLOTarget] = [
            t if isinstance(t, SLOTarget) else SLOTarget.parse(t)
            for t in targets
        ]

    def evaluate(self, snapshot: dict,
                 constants: "dict[str, float] | None" = None,
                 ) -> list[SLOResult]:
        """Judge every target against ``snapshot``; symbolic thresholds
        are resolved via ``constants`` (unresolvable ones breach)."""
        constants = constants or {}
        results: list[SLOResult] = []
        for target in self.targets:
            results.append(self._evaluate_one(target, snapshot, constants))
        return results

    def breaches(self, snapshot: dict,
                 constants: "dict[str, float] | None" = None,
                 ) -> list[SLOResult]:
        """Only the breached results (``ok is False``)."""
        return [r for r in self.evaluate(snapshot, constants)
                if r.ok is False]

    # ------------------------------------------------------------------
    def _evaluate_one(self, target: SLOTarget, snapshot: dict,
                      constants: dict) -> SLOResult:
        threshold = target.threshold
        if isinstance(threshold, str):
            if threshold not in constants:
                return SLOResult(
                    target, None, None, False,
                    f"unresolved constant {threshold!r}",
                )
            threshold = float(constants[threshold])
        try:
            found, observed = self._observe(target, snapshot)
        except ValueError as exc:
            return SLOResult(target, None, threshold, False, str(exc))
        if not found:
            return SLOResult(
                target, None, threshold, False,
                f"metric {target.metric!r} not in snapshot",
            )
        if observed is None:
            return SLOResult(target, None, threshold, None, "no data")
        ok = (observed <= threshold if target.op == "<="
              else observed >= threshold)
        return SLOResult(target, float(observed), threshold, ok)

    @staticmethod
    def _observe(target: SLOTarget, snapshot: dict):
        """Returns ``(found, observed)``."""
        name, stat = target.metric, target.stat
        histograms = snapshot.get("histograms", {})
        if name in histograms:
            return True, _stat_from_histogram(histograms[name], stat)
        series = snapshot.get("series", {})
        if name in series:
            return True, _stat_from_series(series[name], stat)
        gauges = snapshot.get("gauges", {})
        if name in gauges:
            if stat not in ("value", "min", "max"):
                raise ValueError(f"unknown gauge statistic {stat!r}")
            return True, gauges[name].get(stat)
        counters = snapshot.get("counters", {})
        if name in counters:
            if stat not in ("value", "count"):
                raise ValueError(f"unknown counter statistic {stat!r}")
            return True, counters[name]
        return False, None


def format_results(results, title: str = "SLO evaluation") -> str:
    """Render evaluation results as an aligned table."""
    from repro.util.tables import format_table

    def fmt(value) -> str:
        if value is None:
            return "-"
        return f"{value:.6g}"

    rows = []
    for r in results:
        status = "ok" if r.ok else ("BREACH" if r.ok is False else "skip")
        rows.append([r.target.spec(), fmt(r.observed), fmt(r.threshold),
                     status, r.detail])
    return format_table(
        ["target", "observed", "threshold", "status", "detail"],
        rows, title=title,
    )
