"""Causal spans: lightweight, deterministic units of traced work.

A :class:`Span` is an interval (or instant) with a kind, a parent, and
free-form attributes.  Spans are the causal layer on top of the flat
:class:`~repro.sim.trace.TraceLog` event stream: the protocol runtime
opens an ``episode`` span when a primary channel loses a component and
every downstream action (detection, report hops, activation, resumption)
attaches to it as a child, so an offline reader can reconstruct *why*
each recovery took as long as it did.

Design constraints, mirrored from the metrics registry:

* **Deterministic ids.**  Span ids are a monotone counter starting at 1,
  assigned in emission order.  No wall clock, no randomness — two runs
  of the same seed produce byte-identical span streams, and
  :meth:`SpanLog.absorb` remaps ids so sharded parallel runs merge into
  the same stream the sequential run would have produced.
* **Inert when disabled.**  A disabled log's ``begin``/``end``/``point``
  are cheap no-ops returning id 0, so instrumented code needs only a
  single ``if spans.enabled`` guard around attribute construction.

Export rows carry the ``repro.spans/1`` schema: one JSON object per
span with keys ``span`` / ``parent`` / ``kind`` / ``t_start`` /
``t_end`` / ``attrs`` — distinguishable from ``repro.trace/1`` event
rows (which have no ``span`` key) so both can share one JSONL stream.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

#: Schema tag for exported span rows.
SPAN_SCHEMA = "repro.spans/1"


@dataclass(slots=True)
class Span:
    """One causal span (interval when ``t_end`` is set, instant otherwise)."""

    span_id: int
    parent_id: "int | None"
    kind: str
    t_start: float
    t_end: "float | None" = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The span as a JSON-ready dict (``repro.spans/1`` row)."""
        attrs = {key: self.attrs[key] for key in sorted(self.attrs)}
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": attrs,
        }


@dataclass
class SpanLog:
    """An append-only log of causal spans with deterministic ids."""

    enabled: bool = True
    spans: list[Span] = field(default_factory=list)
    _by_id: dict[int, Span] = field(default_factory=dict, repr=False)
    _next_id: int = field(default=1, repr=False)

    # ------------------------------------------------------------------
    def begin(self, kind: str, t_start: float,
              parent: "int | None" = None, **attrs: object) -> int:
        """Open a span; returns its id (0 when the log is disabled)."""
        if not self.enabled:
            return 0
        span = Span(self._next_id, parent or None, kind, t_start,
                    attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, t_end: float, **attrs: object) -> None:
        """Close a previously opened span (no-op for id 0 / unknown ids)."""
        span = self._by_id.get(span_id)
        if span is None:
            return
        span.t_end = t_end
        if attrs:
            span.attrs.update(attrs)

    def point(self, kind: str, t: float,
              parent: "int | None" = None, **attrs: object) -> int:
        """Record an instantaneous span (``t_end == t_start``)."""
        if not self.enabled:
            return 0
        span_id = self.begin(kind, t, parent, **attrs)
        self._by_id[span_id].t_end = t
        return span_id

    def get(self, span_id: int) -> "Span | None":
        """The span with the given id, if any."""
        return self._by_id.get(span_id)

    # ------------------------------------------------------------------
    def filter(self, kind: "str | Iterable[str] | None" = None) -> list[Span]:
        """Spans matching the given kind(s), in emission order."""
        if kind is None:
            return list(self.spans)
        if isinstance(kind, str):
            return [s for s in self.spans if s.kind == kind]
        wanted = frozenset(kind)
        return [s for s in self.spans if s.kind in wanted]

    def tail(self, n: int) -> list[Span]:
        """The last ``n`` spans, in emission order."""
        return self.spans[-n:] if n else []

    def absorb(self, spans: Iterable[Span]) -> None:
        """Merge spans emitted by another (worker) log into this one.

        Ids are remapped by a constant offset so the merged stream keeps
        unique, monotone ids; parent links are shifted by the same
        offset, preserving the causal structure.  Replaying worker logs
        in shard order therefore reproduces the exact stream a
        sequential run would have written.
        """
        offset = self._next_id - 1
        for span in spans:
            parent = span.parent_id + offset if span.parent_id else None
            merged = Span(span.span_id + offset, parent, span.kind,
                          span.t_start, span.t_end, dict(span.attrs))
            self.spans.append(merged)
            self._by_id[merged.span_id] = merged
            self._next_id = max(self._next_id, merged.span_id + 1)

    # ------------------------------------------------------------------
    def to_dicts(self) -> Iterator[dict]:
        """Every span as a JSON-ready dict, in emission order."""
        return (span.to_dict() for span in self.spans)

    def __len__(self) -> int:
        return len(self.spans)


class _NullSpanLog(SpanLog):
    """The shared inert span log (``enabled`` is permanently False)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def end(self, span_id: int, t_end: float, **attrs: object) -> None:
        return None

    def absorb(self, spans: Iterable[Span]) -> None:
        return None


#: Shared inert instance for de-instrumented code paths.
NULL_SPAN_LOG = _NullSpanLog()
