"""Metrics primitives: counters, gauges, and bounded histograms/timers.

A :class:`MetricsRegistry` is a namespace of named instruments.  The
design goals, in order:

1. **Cheap enough to stay on by default.**  Every instrument is a plain
   attribute-update object; instrumented code caches instrument
   references at construction time, so the hot path never does a name
   lookup.
2. **Bounded memory.**  Histograms keep an exact ``count``/``sum``/
   ``min``/``max`` plus a *deterministically decimated* sample buffer for
   percentiles: once the buffer reaches its cap, every other retained
   sample is dropped and the keep-stride doubles, so memory stays
   ``O(cap)`` no matter how many values are recorded — without any RNG,
   which keeps snapshots reproducible across identical runs.
3. **A no-op twin.**  :class:`NullRegistry` hands out shared do-nothing
   instruments so hot loops can be de-instrumented without ``if`` guards
   at every call site; its ``enabled`` flag lets code skip even the
   ``perf_counter`` calls around timed sections.

Counter and gauge values are exactly reproducible across identical
seeded runs; timer *values* are wall-clock and therefore are not (their
``count`` still is).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from time import perf_counter

#: Version tag written into every exported snapshot (see docs/architecture.md).
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Default cap on retained histogram samples (per histogram).
DEFAULT_MAX_SAMPLES = 2048


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A spot value with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: "float | None" = None
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> None:
        """Record the current value, updating the watermarks."""
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def absorb(self, summary: dict) -> None:
        """Fold another gauge's exported summary in (parallel merges).

        The merged ``value`` is the absorbed one (last writer in merge
        order wins); watermarks take the union.
        """
        if summary.get("value") is None:
            return
        self.value = summary["value"]
        if summary["max"] > self.max:
            self.max = summary["max"]
        if summary["min"] < self.min:
            self.min = summary["min"]

    def summary(self) -> dict:
        """``{"value", "min", "max"}`` (all ``None`` before any set)."""
        if self.value is None:
            return {"value": None, "min": None, "max": None}
        return {"value": self.value, "min": self.min, "max": self.max}


class Histogram:
    """A bounded-memory distribution of recorded values.

    Exact ``count``/``sum``/``min``/``max``; percentiles come from a
    decimated sample (see the module docstring), which is exact until
    ``max_samples`` values have been recorded and an evenly spaced
    subsample afterwards.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "max_samples", "_samples", "_stride", "_skip")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1   # keep 1 of every _stride recorded values
        self._skip = 0     # values left to drop before the next keep

    def record(self, value: float) -> None:
        """Fold one value in."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        samples = self._samples
        samples.append(value)
        if len(samples) >= self.max_samples:
            del samples[::2]
            self._stride *= 2
        self._skip = self._stride - 1

    @property
    def mean(self) -> "float | None":
        return self.total / self.count if self.count else None

    def absorb(self, summary: dict) -> None:
        """Fold another histogram's exported summary in (parallel merges).

        ``count``/``sum``/``min``/``max`` (and hence ``mean``) merge
        exactly.  The absorbed side's percentile *samples* are gone — only
        its summary crossed the process boundary — so the absorbed mean is
        fed into the sample buffer once as a coarse percentile proxy.
        """
        if not summary.get("count"):
            return
        self.count += summary["count"] - 1
        if summary["min"] < self.min:
            self.min = summary["min"]
        if summary["max"] > self.max:
            self.max = summary["max"]
        # Route one representative value through record() so the decimated
        # sample buffer stays consistent; correct the total afterwards.
        self.record(summary["mean"])
        self.total += summary["sum"] - summary["mean"]

    def percentile(self, p: float) -> "float | None":
        """Nearest-rank percentile over the retained sample, or ``None``
        when nothing has been recorded."""
        samples = sorted(self._samples)
        if not samples:
            return None
        rank = max(0, math.ceil(p / 100.0 * len(samples)) - 1)
        return samples[min(rank, len(samples) - 1)]

    def quantile(self, q: float) -> "float | None":
        """Nearest-rank quantile for ``q`` in [0, 1] — exact while the
        sample buffer is undecimated, deterministic always."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return self.percentile(q * 100.0)

    def summary(self) -> dict:
        """The exported shape: count/sum/min/max/mean/p50/p95/p99."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Timer(Histogram):
    """A histogram of elapsed seconds with a context-manager helper."""

    __slots__ = ()

    @contextmanager
    def time(self):
        """``with timer.time(): ...`` records the block's wall time."""
        start = perf_counter()
        try:
            yield self
        finally:
            self.record(perf_counter() - start)


class Series:
    """A bounded time series of ``(time, value)`` points.

    For workload-level signals sampled against a *simulated* clock —
    blocking probability, spare fraction, network load over a churn run.
    Memory is bounded the same way as :class:`Histogram`: once
    ``max_points`` points are retained, every other point is dropped and
    the keep-stride doubles, so the retained series stays an evenly
    spaced deterministic subsample (no RNG) of everything appended.
    ``count`` tracks every append exactly; the first and latest points
    are always retained (the latest outside the decimation buffer), so
    run-boundary values survive decimation.
    """

    __slots__ = ("name", "count", "max_points", "last_time", "last_value",
                 "_points", "_stride", "_skip")

    def __init__(self, name: str, max_points: int = DEFAULT_MAX_SAMPLES) -> None:
        self.name = name
        self.count = 0
        self.max_points = max_points
        self.last_time: "float | None" = None
        self.last_value: "float | None" = None
        self._points: list[tuple[float, float]] = []
        self._stride = 1
        self._skip = 0

    def append(self, time: float, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.last_time = time
        self.last_value = value
        if self._skip:
            self._skip -= 1
            return
        points = self._points
        points.append((time, value))
        if len(points) >= self.max_points:
            # Keep index 0 (the run's first sample) and every other
            # survivor after it.
            del points[1::2]
            self._stride *= 2
        self._skip = self._stride - 1

    def points(self) -> list[tuple[float, float]]:
        """The retained ``(time, value)`` points, in append order,
        including the latest sample even when decimation skipped it."""
        points = list(self._points)
        if (self.last_time is not None
                and (not points or points[-1][0] != self.last_time)):
            points.append((self.last_time, self.last_value))
        return points

    def quantile(self, q: float) -> "float | None":
        """Nearest-rank quantile (``q`` in [0, 1]) over the *values* of
        the retained points — deterministic, exact until decimation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        values = sorted(value for _, value in self.points())
        if not values:
            return None
        rank = max(0, math.ceil(q * len(values)) - 1)
        return values[min(rank, len(values) - 1)]

    def absorb(self, summary: dict) -> None:
        """Fold another series' exported summary in (parallel merges).

        The absorbed side's retained points are appended through
        :meth:`append` in order, so the decimation state stays
        consistent; its dropped points are gone (only the summary
        crossed the process boundary), mirroring histogram absorption.
        """
        absorbed = summary.get("points") or []
        for time, value in absorbed:
            self.append(time, value)
        self.count += summary.get("count", len(absorbed)) - len(absorbed)

    def summary(self) -> dict:
        """The exported shape: exact ``count`` plus the retained points."""
        return {
            "count": self.count,
            "points": [[time, value] for time, value in self.points()],
        }


class MetricsRegistry:
    """A namespace of get-or-create instruments.

    Instrument kinds share one namespace: asking for an existing name
    with a different kind raises ``TypeError`` (it is always a bug).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            # A Timer is a histogram of seconds; exported snapshots do not
            # distinguish the two, so a name absorbed from a worker
            # snapshot may be re-requested under either kind.
            if kind is Histogram and type(instrument) is Timer:
                return instrument
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        """Get or create the named timer (a histogram of seconds)."""
        return self._get(name, Timer)

    def series(self, name: str) -> Series:
        """Get or create the named time series."""
        return self._get(name, Series)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready dict of everything recorded so far.

        Shape (the ``repro.metrics/1`` schema)::

            {"schema": "repro.metrics/1",
             "counters":   {name: int},
             "gauges":     {name: {"value", "min", "max"}},
             "histograms": {name: {"count", "sum", "min", "max",
                                   "mean", "p50", "p95", "p99"}},
             "series":     {name: {"count", "points": [[t, v], ...]}}}

        Keys are sorted so identical runs produce identical documents.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        series: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.summary()
            elif isinstance(instrument, Series):
                series[name] = instrument.summary()
            else:
                histograms[name] = instrument.summary()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": series,
        }

    def absorb(self, snapshot: dict) -> None:
        """Fold an exported ``repro.metrics/1`` snapshot into this registry.

        This is how the parallel execution layer surfaces worker-process
        metrics in the parent session: counters add exactly, gauges merge
        watermarks (absorbed value wins), histograms merge their exact
        ``count``/``sum``/``min``/``max`` (percentile *samples* do not
        cross the process boundary — see :meth:`Histogram.absorb`).
        Unknown histogram names are created as :class:`Timer` so later
        ``timer()`` *and* ``histogram()`` lookups both resolve to them.
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, summary in snapshot.get("gauges", {}).items():
            self.gauge(name).absorb(summary)
        for name, summary in snapshot.get("histograms", {}).items():
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._get(name, Timer)
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not Histogram"
                )
            instrument.absorb(summary)
        for name, summary in snapshot.get("series", {}).items():
            self.series(name).absorb(summary)

    def reset(self) -> None:
        """Drop every instrument (callers' cached references go stale)."""
        self._instruments.clear()


# ----------------------------------------------------------------------
# The no-op twin
# ----------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = None
    min = math.inf
    max = -math.inf

    def set(self, value: float) -> None:
        pass

    def summary(self) -> dict:
        return {"value": None, "min": None, "max": None}


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    min = math.inf
    max = -math.inf
    mean = None

    def record(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> None:
        return None

    def quantile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p95": None, "p99": None}

    @contextmanager
    def time(self):
        yield self


class _NullSeries:
    __slots__ = ()
    name = "null"
    count = 0
    last_time = None
    last_value = None

    def append(self, time: float, value: float) -> None:
        pass

    def points(self) -> list:
        return []

    def quantile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {"count": 0, "points": []}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SERIES = _NullSeries()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing — for hot loops.

    ``enabled`` is ``False`` so instrumented code can also skip the
    clock reads bracketing timed sections.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def series(self, name: str) -> Series:
        return _NULL_SERIES  # type: ignore[return-value]

    def snapshot(self) -> dict:
        return {"schema": SNAPSHOT_SCHEMA, "counters": {}, "gauges": {},
                "histograms": {}, "series": {}}

    def absorb(self, snapshot: dict) -> None:
        pass


#: Shared no-op registry, safe to hand to anything.
NULL_REGISTRY = NullRegistry()


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Merge exported ``repro.metrics/1`` snapshots into one document.

    Counters and histogram ``count``/``sum``/``min``/``max``/``mean``
    merge exactly; gauge values are last-in-merge-order with union
    watermarks; histogram percentiles are count-weighted averages of the
    inputs' percentiles (an approximation — the underlying samples never
    left their processes).  Used by the parallel layer to fold per-shard
    worker snapshots into one result, and handy for combining the
    ``--metrics-out`` files of separate runs.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    series: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, summary in snapshot.get("gauges", {}).items():
            if summary.get("value") is None:
                gauges.setdefault(
                    name, {"value": None, "min": None, "max": None}
                )
                continue
            merged = gauges.get(name)
            if merged is None or merged["value"] is None:
                gauges[name] = dict(summary)
            else:
                merged["value"] = summary["value"]
                merged["min"] = min(merged["min"], summary["min"])
                merged["max"] = max(merged["max"], summary["max"])
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(summary)
                continue
            if not summary.get("count"):
                continue
            if not merged["count"]:
                histograms[name] = dict(summary)
                continue
            total_count = merged["count"] + summary["count"]
            for key in ("p50", "p95", "p99"):
                a, b = merged.get(key), summary.get(key)
                if a is None or b is None:
                    merged[key] = a if b is None else b
                else:
                    merged[key] = (
                        a * merged["count"] + b * summary["count"]
                    ) / total_count
            merged["sum"] += summary["sum"]
            merged["min"] = min(merged["min"], summary["min"])
            merged["max"] = max(merged["max"], summary["max"])
            merged["count"] = total_count
            merged["mean"] = merged["sum"] / total_count
        for name, summary in snapshot.get("series", {}).items():
            merged = series.get(name)
            if merged is None:
                series[name] = {
                    "count": summary["count"],
                    "points": [list(point) for point in summary["points"]],
                }
            else:
                merged["count"] += summary["count"]
                merged["points"].extend(list(point) for point in summary["points"])
    for summary in series.values():
        if len(summary["points"]) > DEFAULT_MAX_SAMPLES:
            holder = Series("merge", max_points=DEFAULT_MAX_SAMPLES)
            holder.absorb(summary)
            summary["points"] = [list(point) for point in holder.points()]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "series": dict(sorted(series.items())),
    }


# ----------------------------------------------------------------------
# The process-wide observability session
# ----------------------------------------------------------------------
# Components default to this registry / trace sink when none is passed
# explicitly, which is what lets `python -m repro <cmd> --metrics-out`
# observe a whole run without threading a registry through every
# constructor in the stack.
_registry: MetricsRegistry = MetricsRegistry()
_trace_sink = None  # an enabled repro.sim.trace.TraceLog, or None


def get_registry() -> MetricsRegistry:
    """The session's default registry (a real one unless replaced)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the session registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_trace_sink():
    """The session's shared trace sink (a TraceLog), or ``None``."""
    return _trace_sink


def set_trace_sink(sink):
    """Replace the session trace sink (``None`` clears it); returns the
    previous sink."""
    global _trace_sink
    previous = _trace_sink
    _trace_sink = sink
    return previous


@contextmanager
def obs_session(registry: "MetricsRegistry | None" = None, trace_sink=None):
    """Scope a registry (and optional trace sink) as the session default.

    ``registry=None`` installs a fresh :class:`MetricsRegistry`; the
    previous session state is restored on exit.  Yields the registry.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous_registry = set_registry(active)
    previous_sink = set_trace_sink(trace_sink)
    try:
        yield active
    finally:
        set_registry(previous_registry)
        set_trace_sink(previous_sink)
