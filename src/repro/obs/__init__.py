"""Observability: the metrics registry, trace export, and run profiling.

The rest of the stack (event kernel, protocol runtime, RCC links,
recovery evaluator, experiment harness) records into whatever registry
it is given — or, by default, into the process-wide *session* registry
(:func:`get_registry`), which is what ``python -m repro <cmd>
--metrics-out`` snapshots.  :class:`NullRegistry` de-instruments a hot
loop; :func:`obs_session` scopes a fresh registry around a run.

See the "Observability" section of docs/architecture.md for the
exported schemas and the instrument naming scheme.
"""

from repro.obs.episodes import EpisodeReconstructor, RecoveryEpisode
from repro.obs.export import format_metrics, write_metrics, write_trace
from repro.obs.flight import DEFAULT_CAPACITY, FLIGHT_SCHEMA, FlightRecorder
from repro.obs.slo import SLOEngine, SLOResult, SLOTarget, format_results
from repro.obs.spans import NULL_SPAN_LOG, SPAN_SCHEMA, Span, SpanLog
from repro.obs.registry import (
    Counter,
    DEFAULT_MAX_SAMPLES,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SNAPSHOT_SCHEMA,
    Series,
    Timer,
    get_registry,
    get_trace_sink,
    merge_snapshots,
    obs_session,
    set_registry,
    set_trace_sink,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SNAPSHOT_SCHEMA",
    "DEFAULT_MAX_SAMPLES",
    "get_registry",
    "set_registry",
    "get_trace_sink",
    "set_trace_sink",
    "obs_session",
    "merge_snapshots",
    "write_metrics",
    "write_trace",
    "format_metrics",
    "Span",
    "SpanLog",
    "NULL_SPAN_LOG",
    "SPAN_SCHEMA",
    "EpisodeReconstructor",
    "RecoveryEpisode",
    "SLOEngine",
    "SLOTarget",
    "SLOResult",
    "format_results",
    "FlightRecorder",
    "FLIGHT_SCHEMA",
    "DEFAULT_CAPACITY",
]
