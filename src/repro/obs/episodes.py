"""Offline reconstruction of recovery episodes from a span stream.

The protocol runtime opens one ``episode`` span per connection whose
primary channel is hit (see :mod:`repro.protocol.runtime`) and attaches
detection, report-hop, activation, and resumption point spans beneath
it.  :class:`EpisodeReconstructor` folds an exported JSONL stream (mixed
``repro.trace/1`` event rows and ``repro.spans/1`` span rows — span rows
carry a ``span`` key) back into :class:`RecoveryEpisode` objects with
the paper's delay breakdown:

* **detect** — failure injection to the first daemon noticing,
* **propagate** — detection to the end-node learning of the failure
  (the failure-report RCC hops),
* **activate** — informed to the first activation dispatched,
* **restore** — activation to the source resuming service.

The four components telescope: their sum is exactly the episode's total
service disruption (the paper's measured Γ).

Each recovered episode is also checked against the analytic bound
Γ ≤ (K−1)·D + 2(b−1)(K−1)·D (Section 5.3) for its own (K, b, D)
configuration, which the runtime stamps into the episode span's attrs.
For an episode containing *multiple* failures (a backup dying while
recovery is in flight), the bound's clock is dated from the **latest**
failure signal preceding resumption — the analysis assumes a single
triggering failure, so restarting the clock at each new failure is the
honest comparison; for single-failure episodes this equals the total.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.tables import format_table

#: Numerical slack for bound comparisons (pure-float arithmetic).
_EPSILON = 1e-9

#: Child span kinds that mark a (new) failure signal inside an episode —
#: used to date the Γ clock for multi-failure episodes.
_CLOCK_KINDS = frozenset({"detect", "mux-failure"})


@dataclass
class RecoveryEpisode:
    """One reconstructed per-failure recovery episode."""

    span_id: int
    connection_id: int
    component: str
    failed_at: float
    outcome: str  # "recovered" | "unrecoverable" | "unresolved"
    k_hops: int = 1
    num_backups: int = 1
    d_max: float = 1.0
    detect_at: "float | None" = None
    informed_at: "float | None" = None
    activate_at: "float | None" = None
    resumed_at: "float | None" = None
    completed_at: "float | None" = None
    serial: "int | None" = None
    report_hops: int = 0
    #: Times of every failure signal (detect / mux-failure) observed
    #: inside the episode, in stream order.
    failure_signals: list[float] = field(default_factory=list)

    # -- delay breakdown -----------------------------------------------
    @property
    def total(self) -> "float | None":
        """Failure injection to source resumption — the measured Γ."""
        if self.resumed_at is None:
            return None
        return self.resumed_at - self.failed_at

    @property
    def detect_delay(self) -> "float | None":
        if self.resumed_at is None:
            return None
        return (self.detect_at if self.detect_at is not None
                else self.failed_at) - self.failed_at

    @property
    def propagate_delay(self) -> "float | None":
        if self.resumed_at is None:
            return None
        detect = self.detect_at if self.detect_at is not None \
            else self.failed_at
        informed = self.informed_at if self.informed_at is not None else detect
        return informed - detect

    @property
    def activate_delay(self) -> "float | None":
        if self.resumed_at is None:
            return None
        detect = self.detect_at if self.detect_at is not None \
            else self.failed_at
        informed = self.informed_at if self.informed_at is not None else detect
        activate = self.activate_at if self.activate_at is not None \
            else informed
        return activate - informed

    @property
    def restore_delay(self) -> "float | None":
        if self.resumed_at is None:
            return None
        detect = self.detect_at if self.detect_at is not None \
            else self.failed_at
        informed = self.informed_at if self.informed_at is not None else detect
        activate = self.activate_at if self.activate_at is not None \
            else informed
        return self.resumed_at - activate

    # -- the Γ bound check ---------------------------------------------
    @property
    def bound(self) -> float:
        """The analytic Γ bound for this episode's (K, b, D_max)."""
        # Imported lazily: repro.analysis pulls in the core network stack,
        # which itself imports repro.obs at module load.
        from repro.analysis.delay import recovery_delay_bound

        return recovery_delay_bound(max(1, self.k_hops),
                                    max(1, self.num_backups), self.d_max)

    @property
    def gamma(self) -> "float | None":
        """The delay compared against the bound: resumption minus the
        latest failure signal preceding it (equals :attr:`total` for
        single-failure episodes with instant detection)."""
        if self.resumed_at is None:
            return None
        clock = self.failed_at
        for t in self.failure_signals:
            if clock < t <= self.resumed_at + _EPSILON:
                clock = t
        return self.resumed_at - clock

    @property
    def within_bound(self) -> "bool | None":
        """Whether the episode respects its Γ bound (``None`` when it
        never resumed, so there is nothing to check)."""
        gamma = self.gamma
        if gamma is None:
            return None
        return gamma <= self.bound + _EPSILON

    def to_dict(self) -> dict:
        return {
            "span": self.span_id,
            "connection": self.connection_id,
            "component": self.component,
            "outcome": self.outcome,
            "failed_at": self.failed_at,
            "detect_at": self.detect_at,
            "informed_at": self.informed_at,
            "activate_at": self.activate_at,
            "resumed_at": self.resumed_at,
            "completed_at": self.completed_at,
            "serial": self.serial,
            "report_hops": self.report_hops,
            "k_hops": self.k_hops,
            "num_backups": self.num_backups,
            "d_max": self.d_max,
            "detect": self.detect_delay,
            "propagate": self.propagate_delay,
            "activate": self.activate_delay,
            "restore": self.restore_delay,
            "total": self.total,
            "gamma": self.gamma,
            "bound": self.bound,
            "within_bound": self.within_bound,
        }


class EpisodeReconstructor:
    """Fold a span/trace stream into recovery episodes."""

    def __init__(self) -> None:
        self.episodes: list[RecoveryEpisode] = []
        self._by_span: dict[int, RecoveryEpisode] = {}

    # -- feeding --------------------------------------------------------
    def add_row(self, row: dict) -> None:
        """Consume one JSONL row (event rows are ignored)."""
        if "span" not in row:
            return
        kind = row.get("kind")
        attrs = row.get("attrs") or {}
        if kind == "episode":
            episode = RecoveryEpisode(
                span_id=row["span"],
                connection_id=attrs.get("connection", -1),
                component=str(attrs.get("component", "?")),
                failed_at=row["t_start"],
                outcome=str(attrs.get("outcome", "unresolved")),
                k_hops=int(attrs.get("k_hops", 1)),
                num_backups=int(attrs.get("num_backups", 1)),
                d_max=float(attrs.get("d_max", 1.0)),
                serial=attrs.get("serial"),
            )
            if episode.outcome == "recovered":
                episode.resumed_at = row["t_end"]
                episode.completed_at = attrs.get("completed")
            self.episodes.append(episode)
            self._by_span[episode.span_id] = episode
            return
        parent = row.get("parent")
        episode = self._by_span.get(parent) if parent else None
        if episode is None:
            return
        t = row["t_start"]
        if kind in _CLOCK_KINDS:
            episode.failure_signals.append(t)
        if kind == "detect":
            if episode.detect_at is None or t < episode.detect_at:
                episode.detect_at = t
        elif kind == "report-hop":
            episode.report_hops += 1
        elif kind == "informed":
            if episode.informed_at is None or t < episode.informed_at:
                episode.informed_at = t
        elif kind == "activate":
            if episode.activate_at is None or t < episode.activate_at:
                episode.activate_at = t

    def add_rows(self, rows: Iterable[dict]) -> "EpisodeReconstructor":
        for row in rows:
            self.add_row(row)
        return self

    def add_jsonl(self, text: str) -> "EpisodeReconstructor":
        """Consume a JSONL document (blank lines are skipped)."""
        for line in text.splitlines():
            line = line.strip()
            if line:
                self.add_row(json.loads(line))
        return self

    def add_file(self, path: "Path | str") -> "EpisodeReconstructor":
        return self.add_jsonl(Path(path).read_text())

    # -- summaries ------------------------------------------------------
    def violations(self) -> list[RecoveryEpisode]:
        """Episodes whose measured delay exceeds their Γ bound."""
        return [e for e in self.episodes if e.within_bound is False]

    def summary(self) -> dict:
        recovered = [e for e in self.episodes if e.outcome == "recovered"]
        totals = sorted(e.total for e in recovered if e.total is not None)
        return {
            "episodes": len(self.episodes),
            "recovered": len(recovered),
            "unrecoverable": sum(1 for e in self.episodes
                                 if e.outcome == "unrecoverable"),
            "unresolved": sum(1 for e in self.episodes
                              if e.outcome == "unresolved"),
            "violations": len(self.violations()),
            "max_total": totals[-1] if totals else None,
        }

    def format_table(self) -> str:
        """The deterministic per-episode breakdown table."""

        def fmt(value) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        rows = []
        for e in self.episodes:
            verdict = "-"
            if e.within_bound is True:
                verdict = "ok"
            elif e.within_bound is False:
                verdict = "VIOLATED"
            rows.append([
                e.span_id, e.connection_id, e.component, e.outcome,
                fmt(e.failed_at), fmt(e.detect_delay), fmt(e.propagate_delay),
                fmt(e.activate_delay), fmt(e.restore_delay), fmt(e.total),
                fmt(e.gamma), fmt(e.bound), verdict,
            ])
        return format_table(
            ["episode", "conn", "component", "outcome", "failed",
             "detect", "propagate", "activate", "restore", "total",
             "gamma", "bound", "vs bound"],
            rows,
            title="Recovery episodes",
        )
