"""The flight recorder: a bounded ring buffer of recent trace events.

Attached to a live :class:`~repro.sim.trace.TraceLog`, it keeps the last
``capacity`` events (and can pair them with the trailing spans of the
log's span stream) so that when something goes wrong — an
:class:`~repro.protocol.invariants.InvariantAuditor` violation, an SLO
breach — the run can dump a small, replayable ``repro.flight/1``
artifact showing what led up to the failure, without having stored the
full trace.

The listener hook fires even on disabled logs (see ``TraceLog.record``),
so the recorder works on runs that are not otherwise tracing.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

#: Schema tag for dumped flight artifacts.
FLIGHT_SCHEMA = "repro.flight/1"

#: Default ring size (events and spans each).
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A bounded ring of the most recent trace events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._trace = None

    # ------------------------------------------------------------------
    def on_event(self, event) -> None:
        """Trace listener: fold one event into the ring."""
        self._events.append(event.to_dict())

    def attach(self, trace) -> "FlightRecorder":
        """Subscribe to a trace log's event stream."""
        self._trace = trace
        trace.subscribe(self.on_event)
        return self

    def detach(self) -> None:
        """Unsubscribe from the attached trace log (no-op when none)."""
        if self._trace is not None:
            self._trace.unsubscribe(self.on_event)
            self._trace = None

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    def snapshot(self, reason: str = "", spans=None,
                 context: "dict | None" = None) -> dict:
        """The ring's contents as a JSON-ready ``repro.flight/1`` dict.

        ``spans`` may be a :class:`~repro.obs.spans.SpanLog`, whose last
        ``capacity`` spans ride along; ``context`` is free-form caller
        metadata (schedule seed, breached SLO spec, ...).
        """
        span_rows: list[dict] = []
        if spans is not None:
            span_rows = [span.to_dict()
                         for span in spans.tail(self.capacity)]
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "capacity": self.capacity,
            "events": list(self._events),
            "spans": span_rows,
            "context": dict(context or {}),
        }

    def dump(self, path: "Path | str", reason: str = "", spans=None,
             context: "dict | None" = None) -> Path:
        """Write the snapshot as pretty-printed JSON; returns the path."""
        target = Path(path)
        document = self.snapshot(reason=reason, spans=spans, context=context)
        target.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
        return target
