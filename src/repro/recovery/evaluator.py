"""Scenario-based recovery evaluation.

For each failure scenario the evaluator replays the *outcome* of the BCP
recovery procedure in the steady state:

1. the scenario's failed components disable every channel whose path
   touches them;
2. connections whose end-nodes crashed are excluded (Section 7.2);
3. every other connection with a failed primary attempts activation, in
   **priority order** — ascending multiplexing degree, the paper's
   priority-based activation (Section 4.3: backups with smaller ν are
   higher priority and draw spare first);
4. a connection tries its backups in serial order (Section 4.2); a backup
   activates iff its path is fully healthy and every link of it can supply
   the channel's bandwidth from the remaining spare pool; draws persist
   within the scenario, so later activations can suffer *multiplexing
   failures* (Section 3.3).

The evaluation works on a scratch copy of the spare pools, so a network
can be evaluated against thousands of scenarios without re-establishment.
An optional uniform spare override implements the brute-force baseline of
Section 7.4.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from repro.channels.channel import Channel
from repro.core.bcp import BCPNetwork
from repro.core.dconnection import DConnection
from repro.faults.models import FailureScenario
from repro.network.components import LinkId
from repro.obs.registry import MetricsRegistry, get_registry, get_trace_sink
from repro.recovery.metrics import RecoveryStats
from repro.util.rng import make_rng


class ActivationOrder(enum.Enum):
    """Order in which contending connections draw spare resources."""

    #: Ascending multiplexing degree (paper's priority-based activation).
    PRIORITY = "priority"
    #: Establishment order (connection id) — no prioritisation.
    CONNECTION_ID = "connection_id"
    #: Uniformly random — models unsynchronised activation races.
    RANDOM = "random"


class ConnectionOutcome(enum.Enum):
    """Per-connection result within one scenario."""

    FAST_RECOVERED = "fast_recovered"
    MUX_FAILURE = "mux_failure"
    CHANNELS_LOST = "channels_lost"
    EXCLUDED = "excluded"
    UNAFFECTED = "unaffected"


@dataclass
class ScenarioResult:
    """Outcome of one failure scenario."""

    scenario: FailureScenario
    outcomes: dict[int, ConnectionOutcome] = field(default_factory=dict)
    #: connection id -> serial of the backup that took over.
    activated_serial: dict[int, int] = field(default_factory=dict)

    def count(self, outcome: ConnectionOutcome) -> int:
        """Number of connections with the given outcome."""
        return sum(1 for value in self.outcomes.values() if value is outcome)

    @property
    def failed_primaries(self) -> int:
        """Connections whose primary failed and whose endpoints survived."""
        return sum(
            1
            for value in self.outcomes.values()
            if value
            in (
                ConnectionOutcome.FAST_RECOVERED,
                ConnectionOutcome.MUX_FAILURE,
                ConnectionOutcome.CHANNELS_LOST,
            )
        )

    @property
    def r_fast(self) -> float | None:
        failed = self.failed_primaries
        if failed == 0:
            return None
        return self.count(ConnectionOutcome.FAST_RECOVERED) / failed


class RecoveryEvaluator:
    """Evaluates failure scenarios against a loaded BCP network.

    Parameters
    ----------
    network:
        The loaded :class:`~repro.core.bcp.BCPNetwork` (not mutated).
    order:
        Activation order among contending connections.
    spare_override:
        Per-link spare pools replacing the network's own — either a mapping
        (missing links get 0) or a single float applied to every link.
        This is how the brute-force baseline of Section 7.4 is evaluated.
    free_capacity_fallback:
        If ``True``, an activation short on spare may draw the shortfall
        from the link's *free* (unreserved) capacity.  The paper draws from
        spare only; the fallback is an ablation knob.
    seed:
        RNG seed for ``ActivationOrder.RANDOM``.
    metrics:
        Registry receiving per-scenario timing (``evaluator.scenario_s``)
        and outcome counters (``evaluator.*``); defaults to the session
        registry.  Pass :data:`~repro.obs.NULL_REGISTRY` to de-instrument
        a hot sweep.
    """

    def __init__(
        self,
        network: BCPNetwork,
        order: ActivationOrder = ActivationOrder.PRIORITY,
        spare_override: "Mapping[LinkId, float] | float | None" = None,
        free_capacity_fallback: bool = False,
        seed: "int | None" = 0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.network = network
        self.order = order
        self.free_capacity_fallback = free_capacity_fallback
        self._rng = make_rng(seed)
        obs = metrics if metrics is not None else get_registry()
        self._timed = obs.enabled
        self._t_scenario = obs.timer("evaluator.scenario_s")
        self._c_scenarios = obs.counter("evaluator.scenarios")
        self._c_fast = obs.counter("evaluator.fast_recovered")
        self._c_mux = obs.counter("evaluator.mux_failures")
        self._c_lost = obs.counter("evaluator.channels_lost")
        self._c_excluded = obs.counter("evaluator.excluded")
        self._base_spares = self._resolve_spares(spare_override)
        #: Ledger version the base spare snapshot was captured at.
        #: Consumers evaluating under churn (where establishment and
        #: teardown keep moving the pools) check :attr:`is_stale` and
        #: build a fresh evaluator instead of replaying dead state.
        self.ledger_version = network.ledger.version
        # Free capacity per link, fixed at construction — only needed (and
        # only paid for) in fallback mode.
        self._base_free = (
            {link: network.ledger.free(link) for link in network.topology.links()}
            if free_capacity_fallback
            else {}
        )

    @property
    def is_stale(self) -> bool:
        """Whether the network's ledger has moved past the spare snapshot
        this evaluator was built from (the evaluate-under-churn guard)."""
        return self.network.ledger.version != self.ledger_version

    def reseed(self, seed: "int | None") -> None:
        """Replace the activation-order RNG (``ActivationOrder.RANDOM``).

        The parallel execution layer reseeds one evaluator per scenario
        shard so results are independent of how shards map to workers.
        """
        self._rng = make_rng(seed)

    def _resolve_spares(
        self, override: "Mapping[LinkId, float] | float | None"
    ) -> dict[LinkId, float]:
        topology = self.network.topology
        if override is None:
            # Shared, version-cached view: constructing many evaluators
            # against an unchanged network (one per shard in a parallel
            # sweep, or one per activation-order variant in the ablation
            # experiment) re-derives the spare pools exactly once.  The
            # evaluator never mutates its base pools (scenario draws go to
            # scenario-local copies), so sharing is safe.
            return self.network.ledger.shared_spares()
        if isinstance(override, (int, float)):
            # A uniform pool cannot exceed what the link can actually hold.
            return {
                link: min(
                    float(override),
                    topology.capacity(link)
                    - self.network.ledger.primary_reserved(link),
                )
                for link in topology.links()
            }
        return {link: float(override.get(link, 0.0)) for link in topology.links()}

    # ------------------------------------------------------------------
    def evaluate(self, scenario: FailureScenario) -> ScenarioResult:
        """Replay one scenario; the network itself is untouched."""
        if not self._timed:
            return self._evaluate(scenario)
        start = perf_counter()
        result = self._evaluate(scenario)
        self._t_scenario.record(perf_counter() - start)
        ordinal = self._c_scenarios.value
        self._c_scenarios.inc()
        fast = result.count(ConnectionOutcome.FAST_RECOVERED)
        mux = result.count(ConnectionOutcome.MUX_FAILURE)
        lost = result.count(ConnectionOutcome.CHANNELS_LOST)
        self._c_fast.inc(fast)
        self._c_mux.inc(mux)
        self._c_lost.inc(lost)
        self._c_excluded.inc(result.count(ConnectionOutcome.EXCLUDED))
        sink = get_trace_sink()
        if sink is not None:
            # The evaluator has no simulation clock; the time field is
            # the scenario ordinal within this evaluator.
            sink.record(
                float(ordinal), "scenario", "evaluator",
                f"{scenario}: fast={fast} mux={mux} lost={lost}",
            )
        return result

    def _evaluate(self, scenario: FailureScenario) -> ScenarioResult:
        network = self.network
        failed_components = scenario.components(network.topology)
        affected_ids = network.registry.affected_by(failed_components)
        result = ScenarioResult(scenario=scenario)
        if not affected_ids:
            return result

        # Group affected channels by connection and classify.
        contenders: list[DConnection] = []
        for connection in network.connections():
            if scenario.hits_endpoint(connection.source, connection.destination):
                if any(
                    channel.channel_id in affected_ids
                    for channel in connection.channels
                ):
                    result.outcomes[connection.connection_id] = (
                        ConnectionOutcome.EXCLUDED
                    )
                continue
            if connection.primary.channel_id in affected_ids:
                contenders.append(connection)
            # A failed backup alone does not disrupt service; it is handled
            # by resource reconfiguration, not by this evaluator.

        pools: dict[LinkId, float] = {}
        free: dict[LinkId, float] = {}
        for connection in self._ordered(contenders):
            outcome = self._try_activate(
                connection, failed_components, pools, free, result
            )
            result.outcomes[connection.connection_id] = outcome
        return result

    def evaluate_many(self, scenarios: Iterable[FailureScenario]) -> RecoveryStats:
        """Aggregate :class:`RecoveryStats` over a scenario set."""
        stats = RecoveryStats()
        for scenario in scenarios:
            result = self.evaluate(scenario)
            stats.add_scenario(
                failed_primaries=result.failed_primaries,
                fast_recovered=result.count(ConnectionOutcome.FAST_RECOVERED),
                mux_failures=result.count(ConnectionOutcome.MUX_FAILURE),
                channels_lost=result.count(ConnectionOutcome.CHANNELS_LOST),
                excluded_connections=result.count(ConnectionOutcome.EXCLUDED),
            )
        return stats

    # ------------------------------------------------------------------
    def _ordered(self, contenders: Sequence[DConnection]) -> list[DConnection]:
        if self.order is ActivationOrder.PRIORITY:
            return sorted(
                contenders,
                key=lambda conn: (conn.mux_degree, conn.connection_id),
            )
        if self.order is ActivationOrder.CONNECTION_ID:
            return sorted(contenders, key=lambda conn: conn.connection_id)
        shuffled = list(contenders)
        self._rng.shuffle(shuffled)
        return shuffled

    def _try_activate(
        self,
        connection: DConnection,
        failed_components: frozenset,
        pools: dict[LinkId, float],
        free: dict[LinkId, float],
        result: ScenarioResult,
    ) -> ConnectionOutcome:
        bandwidth = connection.traffic.bandwidth
        saw_healthy_backup = False
        for backup in connection.backups_in_serial_order():
            if backup.fails_under(failed_components):
                continue
            saw_healthy_backup = True
            if self._draw(backup, bandwidth, pools, free):
                result.activated_serial[connection.connection_id] = backup.serial
                return ConnectionOutcome.FAST_RECOVERED
        if saw_healthy_backup:
            return ConnectionOutcome.MUX_FAILURE
        return ConnectionOutcome.CHANNELS_LOST

    def _draw(
        self,
        backup: Channel,
        bandwidth: float,
        pools: dict[LinkId, float],
        free: dict[LinkId, float],
    ) -> bool:
        """Atomically draw ``bandwidth`` on every link of ``backup``.

        ``pools``/``free`` hold the scenario-local remaining amounts,
        lazily seeded from the construction-time snapshots.
        """
        links = backup.path.links
        for link in links:
            available = pools.setdefault(link, self._base_spares.get(link, 0.0))
            if available + 1e-9 < bandwidth:
                if not self.free_capacity_fallback:
                    return False
                spill = bandwidth - available
                free_here = free.setdefault(link, self._base_free.get(link, 0.0))
                if free_here + 1e-9 < spill:
                    return False
        for link in links:
            remaining = pools[link] - bandwidth
            if remaining < -1e-9:
                # Fallback mode: the shortfall was checked (and `free`
                # seeded) in the first pass; draw the rest from there.
                free[link] += remaining
                remaining = 0.0
            pools[link] = max(0.0, remaining)  # absorb float round-off
        return True
