"""Aggregated recovery statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryStats:
    """Counters aggregated over one or more failure scenarios.

    ``failed_primaries`` counts D-connections whose primary was disabled
    and whose end-nodes survived (the paper's denominator); the remaining
    counters partition it:

    * ``fast_recovered`` — switched to a healthy backup with sufficient
      spare (the paper's numerator),
    * ``mux_failures`` — a healthy backup existed but some spare pool was
      exhausted (a *multiplexing failure*, Section 3.3),
    * ``channels_lost`` — every backup was disabled by the same scenario,
    * no backups at all also lands in ``channels_lost`` (a connection with
      zero backups can never recover fast).
    """

    scenarios: int = 0
    failed_primaries: int = 0
    fast_recovered: int = 0
    mux_failures: int = 0
    channels_lost: int = 0
    excluded_connections: int = 0
    #: Sum over scenarios of each scenario's own R_fast (for mean-of-ratios).
    _r_fast_sum: float = field(default=0.0, repr=False)
    _r_fast_scenarios: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    def add_scenario(
        self,
        failed_primaries: int,
        fast_recovered: int,
        mux_failures: int,
        channels_lost: int,
        excluded_connections: int,
    ) -> None:
        """Fold one scenario's counts in."""
        if fast_recovered + mux_failures + channels_lost != failed_primaries:
            raise ValueError(
                "scenario counts do not partition failed_primaries: "
                f"{fast_recovered}+{mux_failures}+{channels_lost} != "
                f"{failed_primaries}"
            )
        self.scenarios += 1
        self.failed_primaries += failed_primaries
        self.fast_recovered += fast_recovered
        self.mux_failures += mux_failures
        self.channels_lost += channels_lost
        self.excluded_connections += excluded_connections
        if failed_primaries > 0:
            self._r_fast_sum += fast_recovered / failed_primaries
            self._r_fast_scenarios += 1

    def merge(self, other: "RecoveryStats") -> "RecoveryStats":
        """Combine with another stats object (parallel sweeps)."""
        merged = RecoveryStats(
            scenarios=self.scenarios + other.scenarios,
            failed_primaries=self.failed_primaries + other.failed_primaries,
            fast_recovered=self.fast_recovered + other.fast_recovered,
            mux_failures=self.mux_failures + other.mux_failures,
            channels_lost=self.channels_lost + other.channels_lost,
            excluded_connections=(
                self.excluded_connections + other.excluded_connections
            ),
        )
        merged._r_fast_sum = self._r_fast_sum + other._r_fast_sum
        merged._r_fast_scenarios = self._r_fast_scenarios + other._r_fast_scenarios
        return merged

    # ------------------------------------------------------------------
    @property
    def r_fast(self) -> float | None:
        """Ratio of fast recoveries to failed primaries, pooled over all
        scenarios (the paper's R_fast).  ``None`` when nothing failed."""
        if self.failed_primaries == 0:
            return None
        return self.fast_recovered / self.failed_primaries

    @property
    def r_fast_mean_of_scenarios(self) -> float | None:
        """Mean of per-scenario R_fast values — an alternative aggregation
        that weights scenarios equally regardless of blast radius."""
        if self._r_fast_scenarios == 0:
            return None
        return self._r_fast_sum / self._r_fast_scenarios

    @property
    def mean_failed_primaries(self) -> float:
        """Average number of primaries disabled per scenario (the paper
        quotes these: ~64 per link failure in the torus, etc.)."""
        if self.scenarios == 0:
            return 0.0
        return self.failed_primaries / self.scenarios
