"""Grouped recovery evaluation.

The paper's Table 2 breaks R_fast down by connection class; this module
generalises that: aggregate :class:`~repro.recovery.metrics.RecoveryStats`
per arbitrary connection group (by multiplexing degree, by endpoint, by
tenant — any key function).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.bcp import BCPNetwork
from repro.core.dconnection import DConnection
from repro.faults.models import FailureScenario
from repro.recovery.evaluator import ConnectionOutcome, RecoveryEvaluator
from repro.recovery.metrics import RecoveryStats

GroupKey = Callable[[DConnection], object]


def by_mux_degree(connection: DConnection) -> int:
    """Group by the connection's multiplexing degree (Table 2's classes)."""
    return connection.mux_degree

def by_backup_count(connection: DConnection) -> int:
    """Group by how many backups the connection owns."""
    return connection.num_backups


def by_source(connection: DConnection) -> object:
    """Group by source node (per-site reporting)."""
    return connection.source


def evaluate_grouped(
    network: BCPNetwork,
    evaluator: RecoveryEvaluator,
    scenarios: Iterable[FailureScenario],
    key: GroupKey = by_mux_degree,
) -> dict[object, RecoveryStats]:
    """Aggregate recovery stats per connection group over a scenario set.

    Each scenario is evaluated once; its per-connection outcomes are
    partitioned by ``key`` and folded into one
    :class:`~repro.recovery.metrics.RecoveryStats` per group.
    """
    group_of = {
        connection.connection_id: key(connection)
        for connection in network.connections()
    }
    per_group: dict[object, RecoveryStats] = {}
    for scenario in scenarios:
        result = evaluator.evaluate(scenario)
        counters: dict[object, dict[ConnectionOutcome, int]] = {}
        for connection_id, outcome in result.outcomes.items():
            group = group_of[connection_id]
            counts = counters.setdefault(group, {})
            counts[outcome] = counts.get(outcome, 0) + 1
        for group, counts in counters.items():
            stats = per_group.setdefault(group, RecoveryStats())
            fast = counts.get(ConnectionOutcome.FAST_RECOVERED, 0)
            muxf = counts.get(ConnectionOutcome.MUX_FAILURE, 0)
            lost = counts.get(ConnectionOutcome.CHANNELS_LOST, 0)
            stats.add_scenario(
                failed_primaries=fast + muxf + lost,
                fast_recovered=fast,
                mux_failures=muxf,
                channels_lost=lost,
                excluded_connections=counts.get(ConnectionOutcome.EXCLUDED, 0),
            )
    return per_group
