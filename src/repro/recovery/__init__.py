"""Steady-state recovery evaluation: the R_fast methodology of Section 7.2.

Given a loaded :class:`~repro.core.bcp.BCPNetwork` and a failure scenario,
the evaluator determines — without mutating the network — which primaries
fail, which connections recover fast via a backup, and which suffer
multiplexing failures or total channel loss.  Aggregating over a scenario
set yields the paper's *fast recovery rate*.
"""

from repro.recovery.evaluator import (
    ActivationOrder,
    ConnectionOutcome,
    RecoveryEvaluator,
    ScenarioResult,
)
from repro.recovery.grouping import (
    by_backup_count,
    by_mux_degree,
    by_source,
    evaluate_grouped,
)
from repro.recovery.metrics import RecoveryStats

__all__ = [
    "RecoveryEvaluator",
    "ScenarioResult",
    "ConnectionOutcome",
    "ActivationOrder",
    "RecoveryStats",
    "evaluate_grouped",
    "by_mux_degree",
    "by_backup_count",
    "by_source",
]
