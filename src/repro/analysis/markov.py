"""Continuous-time Markov reliability models (Section 3.1, Fig. 3).

A D-connection with one backup is modelled with four states:

* 0 — both channels healthy (initial state),
* 1 — primary failed, backup carrying traffic, repair under way,
* 2 — backup failed, primary carrying traffic, repair under way,
* 3 — service lost (absorbing).

Transition rates: the shared part of the two routes fails at λ₃ and kills
both channels at once (0 → 3); the primary-only part fails at λ₁ − λ₃
(0 → 1), the backup-only part at λ₂ − λ₃ (0 → 2); from a degraded state
the surviving channel's failure absorbs (rates λ₂ and λ₁), and repair at
rate μ restores state 0.  ``R(t) = 1 − P(state 3 at t)``, evaluated with
``scipy.linalg.expm`` (the [TRI82] technique the paper cites).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.util.validation import check_non_negative, check_positive


class DConnectionMarkovModel:
    """The Fig. 3(a) model for a single-backup D-connection."""

    def __init__(
        self,
        primary_rate: float,
        backup_rate: float,
        shared_rate: float = 0.0,
        repair_rate: float = 0.0,
    ) -> None:
        check_positive(primary_rate, "primary_rate")
        check_positive(backup_rate, "backup_rate")
        check_non_negative(shared_rate, "shared_rate")
        check_non_negative(repair_rate, "repair_rate")
        if shared_rate > min(primary_rate, backup_rate):
            raise ValueError(
                "shared_rate cannot exceed either channel's total rate "
                f"({shared_rate} > min({primary_rate}, {backup_rate}))"
            )
        self.primary_rate = primary_rate
        self.backup_rate = backup_rate
        self.shared_rate = shared_rate
        self.repair_rate = repair_rate
        self._generator = self._build_generator()

    def _build_generator(self) -> np.ndarray:
        lam1, lam2 = self.primary_rate, self.backup_rate
        lam3, mu = self.shared_rate, self.repair_rate
        q = np.zeros((4, 4))
        q[0, 1] = lam1 - lam3
        q[0, 2] = lam2 - lam3
        q[0, 3] = lam3
        q[1, 0] = mu
        q[1, 3] = lam2
        q[2, 0] = mu
        q[2, 3] = lam1
        for state in range(4):
            q[state, state] = -q[state].sum()
        return q

    @property
    def generator(self) -> np.ndarray:
        """The 4x4 CTMC generator matrix Q (rows sum to zero)."""
        return self._generator.copy()

    def state_probabilities(self, t: float) -> np.ndarray:
        """Distribution over states at time ``t``, starting in state 0."""
        check_non_negative(t, "t")
        return expm(self._generator * t)[0]

    def reliability(self, t: float) -> float:
        """``R(t) = 1 − P(absorbed by t)`` (footnote 3 of the paper)."""
        return float(1.0 - self.state_probabilities(t)[3])

    def reliability_curve(self, times) -> np.ndarray:
        """Vectorised :meth:`reliability` over an array of times."""
        return np.array([self.reliability(t) for t in np.asarray(times)])

    def mean_time_to_failure(self) -> float:
        """Expected absorption time from state 0 (fundamental-matrix
        method: ``MTTF = [(-Q_T)^{-1} 1]_0`` over the transient states)."""
        transient = self._generator[:3, :3]
        ones = np.ones(3)
        times = np.linalg.solve(-transient, ones)
        return float(times[0])


def simplified_markov_model(
    channel_rate: float, shared_rate: float = 0.0, repair_rate: float = 0.0
) -> DConnectionMarkovModel:
    """The Fig. 3(b) simplification: primary and backup of equal length
    (λ₁ = λ₂ = ``channel_rate``)."""
    return DConnectionMarkovModel(
        primary_rate=channel_rate,
        backup_rate=channel_rate,
        shared_rate=shared_rate,
        repair_rate=repair_rate,
    )
