"""Failure-recovery delay bound and RCC sizing (Sections 5.2-5.3).

With RCC message delay bounded by ``D_max`` per hop, the paper derives

    Γ ≤ (K − 1)·D_max  +  2(b − 1)(K − 1)·D_max

where ``K`` is the hop count of the connection's longest channel and ``b``
its number of backups: the first term bounds the failure-reporting delay,
the second the activation-retrial round trips when earlier backups turn
out to be dead.  The protocol runtime's measured service disruptions are
validated against this bound (``benchmarks/bench_delay_bound.py``).

Section 5.2's sizing rule makes ``D_max`` hold: the RCC frame must carry
the worst-case burst, ``S_max ≥ max(x·y)`` over link pairs, with ``y`` the
number of channels on the pair of opposite links between two neighbours.
"""

from __future__ import annotations

from repro.core.bcp import BCPNetwork
from repro.core.dconnection import DConnection
from repro.util.validation import check_positive


def recovery_delay_bound(hops: int, num_backups: int, d_max: float) -> float:
    """The Γ upper bound for a connection whose longest channel has
    ``hops`` hops and which owns ``num_backups`` backups."""
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    if num_backups < 1:
        raise ValueError(
            f"the bound assumes at least one backup, got {num_backups}"
        )
    check_positive(d_max, "d_max")
    k = hops
    reporting = (k - 1) * d_max
    retrials = 2 * (num_backups - 1) * (k - 1) * d_max
    return reporting + retrials


def connection_delay_bound(connection: DConnection, d_max: float) -> float:
    """Γ bound for a live D-connection: ``K`` is the hop count of its
    longest channel (primary or backup)."""
    k = max(channel.path.hops for channel in connection.channels)
    return recovery_delay_bound(k, max(1, connection.num_backups), d_max)


def required_rcc_frame_messages(network: BCPNetwork) -> int:
    """Smallest per-frame message capacity guaranteeing bounded control
    delay (Section 5.2), in units of control messages.

    For every adjacent node pair, the worst burst on the RCC between them
    is one control message per channel routed over *either* direction of
    the pair (failure reports can travel both ways along a channel).  The
    required S_max is the maximum over all pairs.
    """
    registry = network.registry
    worst = 0
    seen_pairs = set()
    for link in network.topology.links():
        pair = frozenset(link.endpoints())
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        count = registry.channel_count_on_link(link)
        reverse = link.reversed()
        count += registry.channel_count_on_link(reverse)
        worst = max(worst, count)
    return worst
