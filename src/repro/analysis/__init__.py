"""Analytic models: Markov reliability (Fig. 3), delay bounds (Section 5),
and RCC sizing (Section 5.2)."""

from repro.analysis.delay import (
    connection_delay_bound,
    recovery_delay_bound,
    required_rcc_frame_messages,
)
from repro.analysis.markov import (
    DConnectionMarkovModel,
    simplified_markov_model,
)

__all__ = [
    "recovery_delay_bound",
    "connection_delay_bound",
    "required_rcc_frame_messages",
    "DConnectionMarkovModel",
    "simplified_markov_model",
]
