"""The chaos engine: execute schedules, audit invariants, fan out
campaigns.

:func:`run_schedule` replays one :class:`~repro.chaos.schedule.
ChaosSchedule` against a fresh :class:`~repro.protocol.runtime.
ProtocolSimulation` with an attached :class:`~repro.protocol.invariants.
InvariantAuditor`, checking invariants after every injected event and
exhaustively at quiescence.  Reactive triggers are armed on the live
trace stream and their resolved firings recorded as static events, so
the result is always replayable without trigger state.

:func:`run_campaign` fans a batch of schedules over
:func:`repro.parallel.parallel_map`, inheriting its determinism
guarantee: each schedule is seeded independently at build time and runs
under a fresh per-item registry, so campaign results are bit-identical
for any worker count.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.chaos.schedule import FAIL, ChaosEvent, ChaosSchedule
from repro.chaos.profiles import DEFAULT_PROFILES, build_schedule
from repro.channels.qos import FaultToleranceQoS
from repro.core.bcp import BCPNetwork
from repro.network.generators import mesh, torus
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.parallel import parallel_map
from repro.protocol.config import ProtocolConfig
from repro.protocol.invariants import InvariantAuditor, InvariantViolation
from repro.protocol.runtime import ProtocolSimulation
from repro.protocol.states import IllegalTransitionError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ChaosEnvironment:
    """The network a chaos campaign runs against (artifact-serialisable).

    Deliberately small by default: chaos runs execute hundreds of
    schedules, and a handful of multi-hop connections over a 4x4 torus
    already exercises every recovery path.
    """

    topology: str = "torus"
    rows: int = 4
    cols: int = 4
    capacity: float = 200.0
    num_backups: int = 2
    mux_degree: int = 1
    connections: int = 6

    def build(self) -> BCPNetwork:
        """Instantiate the topology and establish the connection set.

        Endpoint pairs are chosen deterministically (node ``i`` to the
        node half the network away), so the same environment always
        yields the same established state.
        """
        if self.topology == "torus":
            topo = torus(self.rows, self.cols, capacity=self.capacity)
        elif self.topology == "mesh":
            topo = mesh(self.rows, self.cols, capacity=self.capacity)
        else:
            raise ValueError(f"unknown topology {self.topology!r}")
        network = BCPNetwork(topo)
        nodes = sorted(topo.nodes())
        half = len(nodes) // 2
        qos = FaultToleranceQoS(
            num_backups=self.num_backups, mux_degree=self.mux_degree
        )
        established = 0
        for index in range(len(nodes)):
            if established >= self.connections:
                break
            src = nodes[index]
            dst = nodes[(index + half) % len(nodes)]
            if src == dst:
                continue
            network.establish(src, dst, ft_qos=qos)
            established += 1
        return network

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "rows": self.rows,
            "cols": self.cols,
            "capacity": self.capacity,
            "num_backups": self.num_backups,
            "mux_degree": self.mux_degree,
            "connections": self.connections,
        }

    @staticmethod
    def from_dict(data: dict) -> "ChaosEnvironment":
        return ChaosEnvironment(**data)


@dataclass
class ChaosRunResult:
    """Outcome of one schedule execution."""

    schedule: ChaosSchedule
    #: Every invariant breach the auditor recorded, in detection order.
    violations: tuple = field(default_factory=tuple)
    #: The flattened injection stream: static events plus resolved
    #: trigger firings, in time order.  This is what the shrinker bisects
    #: and what a replay artifact stores.
    materialized: tuple = field(default_factory=tuple)
    final_time: float = 0.0
    drained: bool = True
    recovered: int = 0
    unrecoverable: int = 0
    rejoins: int = 0
    #: Flight-recorder snapshot (``repro.flight/1`` dict) of the last
    #: events before the first invariant violation; ``None`` for clean
    #: runs.  Kept out of :meth:`as_dict` — it is dumped as its own
    #: artifact, next to the shrunk schedule.
    flight: "dict | None" = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "violations": [v.as_dict() for v in self.violations],
            "materialized": [e.to_dict() for e in self.materialized],
            "final_time": self.final_time,
            "drained": self.drained,
            "recovered": self.recovered,
            "unrecoverable": self.unrecoverable,
            "rejoins": self.rejoins,
        }


def run_schedule(
    schedule: ChaosSchedule,
    network: BCPNetwork,
    config: "ProtocolConfig | None" = None,
    metrics=None,
    trace_log=None,
    flight_capacity: int = DEFAULT_CAPACITY,
) -> ChaosRunResult:
    """Execute one schedule against a fresh runtime and audit it.

    A :class:`~repro.obs.flight.FlightRecorder` rides along on every
    run; when the auditor records violations, the result carries the
    recorder's snapshot (the last ``flight_capacity`` trace events plus
    trailing spans) as a replayable diagnosis artifact.  ``trace_log``
    overrides the runtime's trace sink (see
    :class:`~repro.protocol.runtime.ProtocolSimulation`).
    """
    config = config or ProtocolConfig()
    simulation = ProtocolSimulation(
        network, config, seed=schedule.seed, metrics=metrics,
        trace_log=trace_log,
    )
    recorder = FlightRecorder(capacity=flight_capacity)
    recorder.attach(simulation.trace)
    auditor = InvariantAuditor(simulation)
    auditor.attach()
    engine = simulation.engine
    materialized: list[ChaosEvent] = []

    def inject(event: ChaosEvent) -> None:
        if event.action == FAIL:
            simulation._apply_failure(event.component)
        else:
            simulation._apply_repair(event.component)
        auditor.check_event()

    for event in schedule.events:
        materialized.append(event)
        engine.schedule_at(event.time, inject, event)

    # Reactive triggers: armed on the live trace stream, one firing each;
    # the resolved injection joins the materialized stream so the run is
    # replayable (and shrinkable) as plain timed events.
    pending_triggers = list(schedule.triggers)
    listener = None
    if pending_triggers:
        def listener(trace_event) -> None:
            for trigger in tuple(pending_triggers):
                if trigger.category != trace_event.category:
                    continue
                pending_triggers.remove(trigger)
                resolved = ChaosEvent(
                    time=engine.now + trigger.delay,
                    action=trigger.action,
                    component=trigger.component,
                )
                materialized.append(resolved)
                engine.schedule_at(resolved.time, inject, resolved)

        simulation.trace.subscribe(listener)

    aborted = False
    try:
        simulation.run(until=schedule.horizon)
    except IllegalTransitionError as exc:
        aborted = True
        auditor.record("illegal-transition", "state-machine", str(exc))
    finally:
        if listener is not None:
            simulation.trace.unsubscribe(listener)

    drained = engine.pending == 0
    if not drained and not aborted:
        auditor.record(
            "quiescence-timeout", "engine",
            f"{engine.pending} events still pending at horizon "
            f"{schedule.horizon:g} (the run failed to quiesce)",
        )
    auditor.check_quiescent(drained=drained and not aborted)
    auditor.detach()
    recorder.detach()
    flight = None
    if auditor.violations:
        flight = recorder.snapshot(
            reason="invariant-violation",
            spans=simulation.spans,
            context={
                "seed": schedule.seed,
                "horizon": schedule.horizon,
                "violations": [v.as_dict() for v in auditor.violations],
            },
        )
    materialized.sort(key=lambda event: event.time)
    return ChaosRunResult(
        schedule=schedule,
        violations=tuple(auditor.violations),
        materialized=tuple(materialized),
        final_time=engine.now,
        drained=drained,
        recovered=simulation.metrics.recovered_count(),
        unrecoverable=simulation.metrics.unrecoverable,
        rejoins=simulation.metrics.rejoins,
        flight=flight,
    )


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
def build_campaign(
    seed: int,
    size: int,
    network: BCPNetwork,
    config: "ProtocolConfig | None" = None,
    profiles=DEFAULT_PROFILES,
) -> list[ChaosSchedule]:
    """Generate ``size`` schedules, rotating over ``profiles``.

    Per-item seeds are drawn from one parent RNG (the
    :mod:`repro.parallel` seeding discipline), so the campaign's contents
    depend only on ``seed`` — never on worker count or execution order.
    """
    if size < 1:
        raise ValueError(f"campaign size must be >= 1, got {size}")
    if not profiles:
        raise ValueError("campaign needs at least one profile")
    config = config or ProtocolConfig()
    parent = make_rng(seed)
    return [
        build_schedule(
            profiles[index % len(profiles)],
            parent.getrandbits(64),
            network,
            config,
        )
        for index in range(size)
    ]


def _campaign_item(
    schedule: ChaosSchedule, network: BCPNetwork, config: ProtocolConfig
) -> ChaosRunResult:
    return run_schedule(schedule, network, config)


def run_campaign(
    schedules,
    network: BCPNetwork,
    config: "ProtocolConfig | None" = None,
    workers: "int | None" = 1,
    metrics=None,
) -> list[ChaosRunResult]:
    """Run a batch of schedules, optionally across worker processes.

    Results come back in schedule order and are bit-identical for any
    worker count (each item runs under its own seed and fresh registry;
    merging is ordered — see :func:`repro.parallel.parallel_map`).
    """
    config = config or ProtocolConfig()
    runner = functools.partial(_campaign_item, network=network, config=config)
    return parallel_map(runner, list(schedules), workers=workers,
                        metrics=metrics)


def campaign_summary(results) -> dict:
    """Aggregate counts over a campaign's run results (report/CI gate)."""
    violations: dict[str, int] = {}
    failing = 0
    for result in results:
        if result.violations:
            failing += 1
        for violation in result.violations:
            violations[violation.invariant] = (
                violations.get(violation.invariant, 0) + 1
            )
    return {
        "runs": len(results),
        "failing_runs": failing,
        "violations": violations,
        "recovered": sum(r.recovered for r in results),
        "unrecoverable": sum(r.unrecoverable for r in results),
        "rejoins": sum(r.rejoins for r in results),
        "undrained": sum(1 for r in results if not r.drained),
    }


# Re-exported for artifact consumers.
__all__ = [
    "ChaosEnvironment",
    "ChaosRunResult",
    "run_schedule",
    "build_campaign",
    "run_campaign",
    "campaign_summary",
    "InvariantViolation",
]
