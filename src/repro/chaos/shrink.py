"""Failing-schedule shrinking (delta debugging) and replay artifacts.

When a chaos run violates an invariant, the schedule that produced it is
usually mostly noise: flaps that never mattered, repairs after the bug
already fired.  :func:`shrink_failing_run` bisects the run's
*materialized* event stream with the classic ddmin algorithm until no
single chunk can be removed without losing the violation, re-executing
candidate schedules against the same network and seed each step.

The reproduction criterion is the *violation signature* — the set of
invariant names the original run tripped.  A candidate reproduces when
it trips at least one invariant from that signature; insisting on the
identical violation list would make shrinking brittle (removing events
legitimately changes times and counts without changing the bug).

The minimal schedule plus its violations serialise to a ``repro.chaos/1``
JSON artifact that is self-contained: it carries the environment and
protocol config needed to rebuild the network and replay the failure
(``repro chaos --replay <artifact>``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.chaos.engine import (
    ChaosEnvironment,
    ChaosRunResult,
    run_schedule,
)
from repro.chaos.schedule import (
    SCHEMA,
    ChaosSchedule,
    protocol_config_from_json,
    protocol_config_to_json,
)
from repro.protocol.config import ProtocolConfig


@dataclass
class ShrinkResult:
    """A minimal reproducing schedule and the work spent finding it."""

    schedule: ChaosSchedule
    violations: tuple = field(default_factory=tuple)
    #: Event count of the flattened original schedule.
    original_events: int = 0
    #: Schedule re-executions the shrink consumed.
    runs: int = 0
    #: Whether the flattened original reproduced at all (when it does
    #: not — e.g. a heisen-timing artifact — the result is the unshrunk
    #: schedule and this flag lets callers report that honestly).
    reproduced: bool = True

    @property
    def minimal_events(self) -> int:
        return len(self.schedule.events)


def violation_signature(violations) -> frozenset:
    """The set of invariant names a run tripped."""
    return frozenset(violation.invariant for violation in violations)


def _ddmin(events: list, test) -> list:
    """Classic ddmin over an event list: repeatedly drop the largest
    removable chunk, refining granularity until 1-event complements fail."""
    current = list(events)
    n = 2
    while len(current) >= 2:
        size = max(1, len(current) // n)
        chunks = [current[i:i + size] for i in range(0, len(current), size)]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                event
                for j, chunk in enumerate(chunks)
                if j != index
                for event in chunk
            ]
            if complement and test(complement):
                current = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    return current


def shrink_failing_run(
    result: ChaosRunResult,
    network,
    config: "ProtocolConfig | None" = None,
    max_runs: int = 300,
) -> ShrinkResult:
    """Reduce a failing run to a minimal reproducing event sequence.

    Operates on the run's materialized stream (triggers already resolved
    to timed events), so the minimal schedule replays with no reactive
    state.  ``max_runs`` caps re-executions; hitting the cap returns the
    best reduction found so far.
    """
    if not result.violations:
        raise ValueError("nothing to shrink: the run violated no invariant")
    config = config or ProtocolConfig()
    signature = violation_signature(result.violations)
    base = result.schedule
    events = list(result.materialized)
    runs = 0
    cache: dict[tuple, bool] = {}

    def test(candidate: list) -> bool:
        nonlocal runs
        key = tuple(candidate)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if runs >= max_runs:
            return False  # budget exhausted: treat as non-reproducing
        runs += 1
        outcome = run_schedule(base.with_events(candidate), network, config)
        reproduces = bool(
            signature & violation_signature(outcome.violations)
        )
        cache[key] = reproduces
        return reproduces

    flat = base.with_events(events)
    if not test(events):
        # The flattened schedule does not reproduce (timing-sensitive
        # trigger interplay): report the flat schedule unshrunk.
        rerun = run_schedule(flat, network, config)
        return ShrinkResult(
            schedule=flat,
            violations=rerun.violations,
            original_events=len(events),
            runs=runs,
            reproduced=False,
        )
    minimal = _ddmin(events, test)
    minimal_schedule = base.with_events(minimal)
    final = run_schedule(minimal_schedule, network, config)
    return ShrinkResult(
        schedule=minimal_schedule,
        violations=final.violations,
        original_events=len(events),
        runs=runs,
        reproduced=True,
    )


# ----------------------------------------------------------------------
# replayable artifacts (the ``repro.chaos/1`` schema)
# ----------------------------------------------------------------------
def artifact_payload(
    shrink: ShrinkResult,
    config: ProtocolConfig,
    environment: "ChaosEnvironment | None" = None,
) -> dict:
    """The JSON document for one shrunk failure."""
    payload = {
        "schema": SCHEMA,
        "schedule": shrink.schedule.to_dict(),
        "violations": [v.as_dict() for v in shrink.violations],
        "shrunk_from": shrink.original_events,
        "shrink_runs": shrink.runs,
        "reproduced": shrink.reproduced,
        "config": protocol_config_to_json(config),
        "environment": (
            environment.to_dict() if environment is not None else None
        ),
        # The (K, b, D) triple spelled out explicitly: K and b shape the
        # *established* state (they live in the environment), D is the
        # RCC per-hop bound (it lives in the config).  Replays validate
        # this block against both so an artifact edited by hand — or one
        # replayed under drifted CLI defaults — fails loudly instead of
        # reproducing a different scenario byte-for-byte.
        "protocol": {
            "d_max": config.rcc.max_delay,
        },
    }
    if environment is not None:
        payload["protocol"].update(
            num_backups=environment.num_backups,
            mux_degree=environment.mux_degree,
        )
    return payload


def write_artifact(path, payload: dict) -> None:
    """Write one artifact document (pretty-printed, stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path) -> dict:
    """Read an artifact document, validating the schema marker."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, found {schema!r}"
        )
    return payload


def _check_protocol_block(payload: dict, config: ProtocolConfig) -> None:
    """Cross-validate the artifact's explicit (K, b, D) block against the
    environment and config it also carries.  Old artifacts without the
    block pass unchecked (the config/environment remain authoritative)."""
    protocol = payload.get("protocol")
    if protocol is None:
        return
    mismatches = []
    d_max = protocol.get("d_max")
    if d_max is not None and d_max != config.rcc.max_delay:
        mismatches.append(
            f"d_max {d_max!r} != config rcc.max_delay "
            f"{config.rcc.max_delay!r}"
        )
    environment = payload.get("environment")
    if environment is not None:
        for key in ("num_backups", "mux_degree"):
            declared = protocol.get(key)
            recorded = environment.get(key)
            if declared is not None and declared != recorded:
                mismatches.append(
                    f"{key} {declared!r} != environment {key} {recorded!r}"
                )
    if mismatches:
        raise ValueError(
            "artifact protocol block contradicts its recorded "
            "environment/config: " + "; ".join(mismatches)
        )


def replay_artifact(payload: dict, network=None) -> ChaosRunResult:
    """Re-execute an artifact's schedule under its recorded config.

    ``network`` overrides the artifact's environment (tests replaying
    against a live network); otherwise the environment is rebuilt, which
    is what makes artifacts portable across machines.  Replays never read
    CLI defaults: everything comes from the artifact, and the explicit
    ``protocol`` block is validated against the recorded
    environment/config first.
    """
    config = protocol_config_from_json(payload["config"])
    _check_protocol_block(payload, config)
    schedule = ChaosSchedule.from_dict(payload["schedule"])
    if network is None:
        environment = payload.get("environment")
        if environment is None:
            raise ValueError(
                "artifact has no environment; pass the network explicitly"
            )
        network = ChaosEnvironment.from_dict(environment).build()
    return run_schedule(schedule, network, config)
