"""Chaos schedules: seeded, replayable fault-event streams.

A :class:`ChaosSchedule` is the unit the chaos engine executes: a list of
timed crash/repair :class:`ChaosEvent`\\ s, plus optional reactive
:class:`ChaosTrigger`\\ s that fire off live trace events (e.g. *fail the
backup while its activation is in flight*).  Schedules are pure data —
built once from a seed by a profile, serialised to the ``repro.chaos/1``
JSON artifact format, and replayed bit-identically on any worker.

Triggers carry their target component pre-chosen at build time, so the
only runtime-dependent part of a trigger is *when* it fires.  The engine
records the resolved firing as a static event (the run result's
*materialized* stream), which is what the shrinker and replay operate on
— a shrunk artifact never needs live trace state to reproduce.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.faults.models import component_from_json, component_to_json
from repro.protocol.config import ProtocolConfig, RCCParams, SwitchingScheme

#: Artifact schema identifier (bumped on incompatible format changes).
SCHEMA = "repro.chaos/1"

#: The two injection actions.
FAIL = "fail"
REPAIR = "repair"


@dataclass(frozen=True, slots=True)
class ChaosEvent:
    """One timed injection: crash or repair one component."""

    time: float
    action: str  # FAIL | REPAIR
    component: object  # NodeId | LinkId

    def __post_init__(self) -> None:
        if self.action not in (FAIL, REPAIR):
            raise ValueError(f"unknown chaos action {self.action!r}")

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "action": self.action,
            "component": component_to_json(self.component),
        }

    @staticmethod
    def from_dict(data: dict) -> "ChaosEvent":
        return ChaosEvent(
            time=data["time"],
            action=data["action"],
            component=component_from_json(data["component"]),
        )


@dataclass(frozen=True, slots=True)
class ChaosTrigger:
    """A reactive injection armed on a live trace category.

    When the run's first trace event of ``category`` appears (at time
    ``t``), the trigger injects ``action`` on ``component`` at
    ``t + delay``.  One firing per trigger; a run whose trace never shows
    the category simply never fires it.
    """

    category: str  # trace category to arm on (e.g. "activation")
    delay: float
    action: str  # FAIL | REPAIR
    component: object

    def __post_init__(self) -> None:
        if self.action not in (FAIL, REPAIR):
            raise ValueError(f"unknown chaos action {self.action!r}")

    def to_dict(self) -> dict:
        return {
            "category": self.category,
            "delay": self.delay,
            "action": self.action,
            "component": component_to_json(self.component),
        }

    @staticmethod
    def from_dict(data: dict) -> "ChaosTrigger":
        return ChaosTrigger(
            category=data["category"],
            delay=data["delay"],
            action=data["action"],
            component=component_from_json(data["component"]),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """One replayable fault schedule (the chaos engine's work unit)."""

    seed: int
    profile: str
    horizon: float
    events: tuple = field(default_factory=tuple)
    triggers: tuple = field(default_factory=tuple)

    def with_events(self, events) -> "ChaosSchedule":
        """Copy with ``events`` replacing both events and triggers — the
        shrinker's move: triggers are already materialized into the static
        stream it bisects."""
        return dataclasses.replace(
            self, events=tuple(events), triggers=()
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
            "triggers": [trigger.to_dict() for trigger in self.triggers],
        }

    @staticmethod
    def from_dict(data: dict) -> "ChaosSchedule":
        return ChaosSchedule(
            seed=data["seed"],
            profile=data["profile"],
            horizon=data["horizon"],
            events=tuple(
                ChaosEvent.from_dict(event) for event in data["events"]
            ),
            triggers=tuple(
                ChaosTrigger.from_dict(trigger)
                for trigger in data.get("triggers", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ChaosSchedule":
        return ChaosSchedule.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# protocol-config codec (artifacts must replay under the exact config)
# ----------------------------------------------------------------------
def protocol_config_to_json(config: ProtocolConfig) -> dict:
    """JSON-safe encoding of a :class:`ProtocolConfig` (full fidelity)."""
    data = dataclasses.asdict(config)
    data["scheme"] = config.scheme.value
    return data


def protocol_config_from_json(data: dict) -> ProtocolConfig:
    """Inverse of :func:`protocol_config_to_json`."""
    data = dict(data)
    data["scheme"] = SwitchingScheme(data["scheme"])
    data["rcc"] = RCCParams(**data["rcc"])
    return ProtocolConfig(**data)
