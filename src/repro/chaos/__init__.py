"""Deterministic chaos campaigns over the BCP protocol runtime.

The chaos subsystem answers one question: *does the recovery protocol
keep its invariants under adversarial failure timing?*  It has four
parts:

* :mod:`repro.chaos.schedule` — seeded, replayable fault schedules
  (timed crash/repair events plus trace-armed reactive triggers) with
  the ``repro.chaos/1`` JSON codec,
* :mod:`repro.chaos.profiles` — generators for the interesting failure
  shapes (link flapping, correlated regional failures, cascades,
  failure-during-recovery, backup-before-primary, repair/rejoin races),
* :mod:`repro.chaos.engine` — schedule execution with a live
  :class:`~repro.protocol.invariants.InvariantAuditor`, and campaign
  fan-out over :func:`repro.parallel.parallel_map` (bit-identical for
  any worker count),
* :mod:`repro.chaos.shrink` — ddmin reduction of failing schedules to
  minimal reproducing event sequences, exported as self-contained
  replay artifacts.

Entry points: ``build_campaign`` + ``run_campaign`` for sweeps,
``run_schedule`` for one schedule, ``shrink_failing_run`` +
``write_artifact`` when something breaks, ``replay_artifact`` to
re-execute a saved failure.  The ``repro chaos`` CLI subcommand wraps
the whole loop.
"""

from repro.chaos.engine import (
    ChaosEnvironment,
    ChaosRunResult,
    build_campaign,
    campaign_summary,
    run_campaign,
    run_schedule,
)
from repro.chaos.profiles import DEFAULT_PROFILES, PROFILES, build_schedule
from repro.chaos.schedule import (
    FAIL,
    REPAIR,
    SCHEMA,
    ChaosEvent,
    ChaosSchedule,
    ChaosTrigger,
)
from repro.chaos.shrink import (
    ShrinkResult,
    artifact_payload,
    load_artifact,
    replay_artifact,
    shrink_failing_run,
    violation_signature,
    write_artifact,
)

__all__ = [
    "ChaosEnvironment",
    "ChaosRunResult",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosTrigger",
    "ShrinkResult",
    "FAIL",
    "REPAIR",
    "SCHEMA",
    "PROFILES",
    "DEFAULT_PROFILES",
    "build_schedule",
    "build_campaign",
    "run_campaign",
    "run_schedule",
    "campaign_summary",
    "shrink_failing_run",
    "violation_signature",
    "artifact_payload",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
]
