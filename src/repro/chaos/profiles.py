"""Chaos profiles: seeded generators of fault schedules.

Each profile turns an RNG plus an established network into one
:class:`~repro.chaos.schedule.ChaosSchedule` exercising a specific
failure shape the BCP recovery machinery must survive:

* ``flapping``        — one link crashes and heals repeatedly,
* ``regional``        — a node and a neighbour die near-simultaneously
  (correlated regional failure), repaired later,
* ``cascade``         — staggered failures marching across a
  connection's channels,
* ``failure_during_recovery`` — the primary dies, then the backup being
  activated dies *while the activation is in flight* (trace-triggered),
* ``backup_before_primary``   — a standby backup dies first, then the
  primary (the health table must steer activation past the dead backup),
* ``repair_race``     — a failed component is repaired right around the
  soft-state rejoin-timeout boundary, racing expiry against rejoin.

All randomness flows through the passed RNG; every choice draws from
deterministically ordered candidates, so a (profile, seed, network)
triple always yields the same schedule.
"""

from __future__ import annotations

from repro.chaos.schedule import FAIL, REPAIR, ChaosEvent, ChaosSchedule, ChaosTrigger

#: First injection time: late enough that establishment-time state is
#: fully installed, early enough to keep runs short.
BASE_TIME = 5.0


# ----------------------------------------------------------------------
# deterministic selection helpers
# ----------------------------------------------------------------------
def _connections(network) -> list:
    return sorted(network.connections(), key=lambda c: c.connection_id)


def _pick_connection(rng, network):
    connections = _connections(network)
    if not connections:
        raise ValueError("chaos profiles need at least one connection")
    return connections[rng.randrange(len(connections))]


def _mid_link(rng, channel):
    """A link of the channel's path, preferring interior hops (failing an
    endpoint-adjacent link risks hitting the end-node's only exit)."""
    links = channel.path.links
    interior = links[1:-1] if len(links) > 2 else links
    return interior[rng.randrange(len(interior))]


def _backup_of(rng, connection):
    backups = sorted(connection.backups, key=lambda ch: ch.serial)
    if not backups:
        return None
    return backups[rng.randrange(len(backups))]


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------
def flapping(rng, network, config):
    """One link fails and repairs in quick cycles (link flapping)."""
    connection = _pick_connection(rng, network)
    link = _mid_link(rng, connection.primary)
    events = []
    time = BASE_TIME
    for _ in range(rng.randint(2, 4)):
        down = rng.uniform(5.0, 20.0)
        up = rng.uniform(10.0, 30.0)
        events.append(ChaosEvent(time=time, action=FAIL, component=link))
        events.append(ChaosEvent(time=time + down, action=REPAIR,
                                 component=link))
        time += down + up
    return events, []


def regional(rng, network, config):
    """A node and one of its neighbours crash almost together — the
    correlated regional failure that defeats naive disjointness."""
    topology = network.topology
    nodes = sorted(topology.nodes())
    node = nodes[rng.randrange(len(nodes))]
    neighbours = sorted(
        set(topology.successors(node)) | set(topology.predecessors(node))
    )
    neighbour = neighbours[rng.randrange(len(neighbours))]
    stagger = rng.uniform(0.0, 2.0)
    outage = rng.uniform(60.0, 90.0)
    events = [
        ChaosEvent(time=BASE_TIME, action=FAIL, component=node),
        ChaosEvent(time=BASE_TIME + stagger, action=FAIL,
                   component=neighbour),
        ChaosEvent(time=BASE_TIME + outage, action=REPAIR, component=node),
        ChaosEvent(time=BASE_TIME + outage + stagger, action=REPAIR,
                   component=neighbour),
    ]
    return events, []


def cascade(rng, network, config):
    """Failures marching across one connection's channels: the primary
    first, then each backup a few time units later."""
    connection = _pick_connection(rng, network)
    events = [
        ChaosEvent(time=BASE_TIME, action=FAIL,
                   component=_mid_link(rng, connection.primary))
    ]
    time = BASE_TIME
    for backup in sorted(connection.backups, key=lambda ch: ch.serial):
        time += rng.uniform(2.0, 10.0)
        events.append(
            ChaosEvent(time=time, action=FAIL,
                       component=_mid_link(rng, backup))
        )
    return events, []


def failure_during_recovery(rng, network, config):
    """Crash the primary, then crash the first backup *while its
    activation is in flight* — armed on the run's first ``activation``
    trace event, with the target pre-chosen here."""
    connection = _pick_connection(rng, network)
    backup = _backup_of(rng, connection)
    events = [
        ChaosEvent(time=BASE_TIME, action=FAIL,
                   component=_mid_link(rng, connection.primary))
    ]
    triggers = []
    if backup is not None:
        triggers.append(
            ChaosTrigger(
                category="activation",
                delay=rng.uniform(0.0, 1.0),
                action=FAIL,
                component=_mid_link(rng, backup),
            )
        )
    return events, triggers


def backup_before_primary(rng, network, config):
    """A standby backup dies first; the primary follows.  Activation must
    skip the dead backup via the end-nodes' health tables."""
    connection = _pick_connection(rng, network)
    backup = _backup_of(rng, connection)
    events = []
    time = BASE_TIME
    if backup is not None:
        events.append(
            ChaosEvent(time=time, action=FAIL,
                       component=_mid_link(rng, backup))
        )
        time += rng.uniform(5.0, 15.0)
    events.append(
        ChaosEvent(time=time, action=FAIL,
                   component=_mid_link(rng, connection.primary))
    )
    return events, []


def repair_race(rng, network, config):
    """Repair the failed primary link right around the rejoin-timeout
    boundary, racing soft-state expiry against the rejoin probes."""
    connection = _pick_connection(rng, network)
    link = _mid_link(rng, connection.primary)
    # The rejoin timer arms at detection (shortly after the crash); a
    # repair inside [0.85, 1.15] x timeout lands on both sides of expiry
    # across seeds, including the probe-vs-expiry race in the middle.
    offset = config.rejoin_timeout * rng.uniform(0.85, 1.15)
    events = [
        ChaosEvent(time=BASE_TIME, action=FAIL, component=link),
        ChaosEvent(time=BASE_TIME + offset, action=REPAIR, component=link),
    ]
    return events, []


#: Name -> generator; iteration order is the default campaign rotation.
PROFILES = {
    "flapping": flapping,
    "regional": regional,
    "cascade": cascade,
    "failure_during_recovery": failure_during_recovery,
    "backup_before_primary": backup_before_primary,
    "repair_race": repair_race,
}

DEFAULT_PROFILES = tuple(PROFILES)


def build_schedule(profile: str, seed: int, network, config) -> ChaosSchedule:
    """Generate one schedule for ``profile`` from ``seed``.

    The horizon is sized so every soft-state timer armed by the last
    injection can expire and the probe timers can notice and self-stop —
    a run that still has pending events at the horizon has genuinely
    failed to quiesce.
    """
    from repro.util.rng import make_rng

    generator = PROFILES.get(profile)
    if generator is None:
        raise ValueError(
            f"unknown chaos profile {profile!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        )
    rng = make_rng(seed)
    events, triggers = generator(rng, network, config)
    events = sorted(events, key=lambda event: event.time)
    last = max((event.time for event in events), default=BASE_TIME)
    slack = config.rejoin_timeout + config.rejoin_probe_interval + 50.0
    if triggers:
        # A triggered injection lands within a recovery window of a
        # static one; give its own rejoin cycle room too.
        slack += config.rejoin_timeout
    # The switchover handshake may chew through every backup of a
    # connection at full retry/backoff before falling back; give the
    # worst-case chain room so exhaustion resolves inside the horizon.
    max_backups = max(
        (len(connection.backups) for connection in network.connections()),
        default=1,
    )
    slack += config.switchover_retry_window * max(max_backups, 1)
    return ChaosSchedule(
        seed=seed,
        profile=profile,
        horizon=last + slack,
        events=tuple(events),
        triggers=tuple(triggers),
    )
