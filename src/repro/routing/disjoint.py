"""Sequential disjoint-path routing.

The paper routes the channels of a D-connection "disjointly by a sequential
shortest-path search algorithm.  Thus, the primary channel was routed first
over a shortest path, then the backup was routed without using the
components of the primary channel" (Section 7).  This module implements
that greedy strategy: each successive path avoids the interior nodes and
all links of every previously routed path.

Greedy sequential search is not maximally disjoint (unlike the max-flow
based algorithms of [WHA90, SID91] cited by the paper), but it is the
algorithm the evaluation actually uses, and it is what we reproduce.  A
max-flow variant built on ``networkx`` is provided for comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.network.components import NodeId
from repro.network.topology import Topology
from repro.routing.paths import Path
from repro.routing.shortest import (
    LinkCost,
    NoPathError,
    RouteConstraints,
    shortest_path,
)


class DisjointPathError(Exception):
    """Raised when the requested number of disjoint paths cannot be found."""

    def __init__(self, src: NodeId, dst: NodeId, found: Sequence[Path],
                 wanted: int) -> None:
        super().__init__(
            f"only {len(found)} of {wanted} disjoint paths exist "
            f"from {src!r} to {dst!r}"
        )
        self.src = src
        self.dst = dst
        self.found = list(found)
        self.wanted = wanted


def _avoiding(base: RouteConstraints, routed: Sequence[Path]) -> RouteConstraints:
    """Constraints that additionally exclude the components of ``routed``.

    Endpoint nodes are shared by construction, so only interior nodes and
    links are excluded.
    """
    excluded_nodes = set(base.excluded_nodes)
    excluded_links = set(base.excluded_links)
    for path in routed:
        excluded_nodes.update(path.interior_nodes)
        excluded_links.update(path.links)
    return RouteConstraints(
        excluded_nodes=frozenset(excluded_nodes),
        excluded_links=frozenset(excluded_links),
        link_admissible=base.link_admissible,
        max_hops=base.max_hops,
    )


def sequential_disjoint_paths(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    count: int,
    constraints: RouteConstraints | None = None,
    cost: LinkCost | None = None,
) -> list[Path]:
    """Route ``count`` mutually disjoint paths by greedy sequential search.

    The first path is a shortest feasible path; each subsequent path is a
    shortest feasible path avoiding all components of its predecessors.
    Raises :class:`DisjointPathError` (carrying the paths found so far in
    ``found``) when fewer than ``count`` exist under the constraints.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    base = constraints or RouteConstraints()
    routed: list[Path] = []
    for _ in range(count):
        try:
            routed.append(
                shortest_path(topology, src, dst, _avoiding(base, routed), cost)
            )
        except NoPathError:
            raise DisjointPathError(src, dst, routed, count) from None
    return routed


def max_disjoint_paths(topology: Topology, src: NodeId, dst: NodeId) -> list[Path]:
    """Maximum set of node-disjoint paths via max-flow (comparison utility).

    This corresponds to the optimal algorithms the paper cites [WHA90,
    SID91].  It ignores capacity and QoS constraints and is used to verify
    the greedy search and to probe topological limits (e.g. why the 8x8
    mesh cannot support double backups at its corners).
    """
    graph = topology.to_networkx()
    paths = list(nx.node_disjoint_paths(graph, src, dst))
    return [Path(nodes) for nodes in paths]
