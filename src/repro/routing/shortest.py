"""Constrained shortest-path search.

Channels are routed over *feasible* shortest paths: links must pass an
admission predicate (enough free bandwidth), certain components may be
excluded (a backup avoids its primary's components), and the total length
must respect the delay QoS (at most ``shortest + slack`` hops, Section 7).

Hop-count search uses BFS; an optional per-link cost function switches to
Dijkstra, which the cost-biased backup-routing ablation uses.

Both searches normally execute on the flat-index routing core
(:mod:`repro.routing.flatgraph`): the topology is compiled once into
integer CSR arrays, searches reuse epoch-stamped buffers, and cacheable
results are memoised.  The original dict-based kernels are retained below
as the *reference implementation* — :func:`reference_shortest_path` and
:func:`reference_hop_distance` — and the golden-path equivalence tests
assert the two produce bit-identical paths, tie-breaks included.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.network.components import LinkId, NodeId
from repro.network.topology import Topology
from repro.routing.flatgraph import flat_view
from repro.routing.paths import Path

LinkPredicate = Callable[[LinkId], bool]
LinkCost = Callable[[LinkId], float]


class NoPathError(Exception):
    """Raised when no feasible path exists under the given constraints."""

    def __init__(self, src: NodeId, dst: NodeId, reason: str = "") -> None:
        detail = f" ({reason})" if reason else ""
        super().__init__(f"no feasible path from {src!r} to {dst!r}{detail}")
        self.src = src
        self.dst = dst


@dataclass(frozen=True)
class RouteConstraints:
    """Constraints applied during path search.

    Attributes
    ----------
    excluded_nodes / excluded_links:
        Components the path must avoid (used for disjoint backup routing and
        for routing around failures).  Excluding the source or destination
        makes every search fail, by design.
    link_admissible:
        Per-link predicate; links failing it are skipped.  Establishment
        passes a closure over the reservation ledger here.
    max_hops:
        Inclusive upper bound on path length, or ``None`` for unbounded.
        The paper's delay QoS translates to ``shortest_possible + 2``.
    """

    excluded_nodes: frozenset = field(default_factory=frozenset)
    excluded_links: frozenset = field(default_factory=frozenset)
    link_admissible: LinkPredicate | None = None
    max_hops: int | None = None

    def allows_link(self, link: LinkId) -> bool:
        """Whether the search may traverse ``link``."""
        if link in self.excluded_links:
            return False
        if link.dst in self.excluded_nodes:
            return False
        if self.link_admissible is not None and not self.link_admissible(link):
            return False
        return True

    def allows_source(self, node: NodeId) -> bool:
        """Whether the search may start at ``node``."""
        return node not in self.excluded_nodes


def hop_distance(topology: Topology, src: NodeId, dst: NodeId) -> int:
    """Unconstrained hop count of the shortest path from ``src`` to ``dst``.

    This is the paper's "shortest-possible path" length used as the baseline
    of the delay QoS.  Raises :class:`NoPathError` if ``dst`` is unreachable.

    Runs on the flat routing core (cached bidirectional BFS); see
    :func:`reference_hop_distance` for the retained reference kernel.
    """
    if src == dst:
        return 0
    dist = flat_view(topology).hop_distance(src, dst)
    if dist < 0:
        raise NoPathError(src, dst, "disconnected")
    return dist


def reference_hop_distance(topology: Topology, src: NodeId, dst: NodeId) -> int:
    """Reference (dict-based, single-direction BFS) ``hop_distance``."""
    if src == dst:
        return 0
    seen = {src}
    frontier = deque([(src, 0)])
    while frontier:
        node, dist = frontier.popleft()
        for neighbour in topology.successors(node):
            if neighbour == dst:
                return dist + 1
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append((neighbour, dist + 1))
    raise NoPathError(src, dst, "disconnected")


def shortest_path(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    constraints: RouteConstraints | None = None,
    cost: LinkCost | None = None,
) -> Path:
    """Shortest feasible path from ``src`` to ``dst``.

    With ``cost=None`` the metric is hop count (BFS).  With a cost function
    the metric is total link cost (Dijkstra) and ``max_hops`` still bounds
    the *hop* count, so a cost-biased route cannot violate the delay QoS.

    Ties are broken deterministically by node insertion order, making whole
    experiments reproducible without a seed.

    Runs on the flat routing core; see :func:`reference_shortest_path` for
    the retained reference kernels the golden tests compare against.
    """
    constraints = constraints or RouteConstraints()
    if src == dst:
        raise ValueError(f"source and destination are both {src!r}")
    if not topology.has_node(src) or not topology.has_node(dst):
        raise NoPathError(src, dst, "unknown endpoint")
    if not constraints.allows_source(src) or dst in constraints.excluded_nodes:
        raise NoPathError(src, dst, "endpoint excluded")
    path = flat_view(topology).search(src, dst, constraints, cost)
    if path is None:
        raise NoPathError(src, dst, "constraints unsatisfiable")
    return path


def reference_shortest_path(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    constraints: RouteConstraints | None = None,
    cost: LinkCost | None = None,
) -> Path:
    """Reference (dict-based) ``shortest_path`` — identical contract.

    Kept as the behavioural oracle: the flat-index kernels must return
    bit-identical paths, and the golden equivalence tests enforce it.
    """
    constraints = constraints or RouteConstraints()
    if src == dst:
        raise ValueError(f"source and destination are both {src!r}")
    if not topology.has_node(src) or not topology.has_node(dst):
        raise NoPathError(src, dst, "unknown endpoint")
    if not constraints.allows_source(src) or dst in constraints.excluded_nodes:
        raise NoPathError(src, dst, "endpoint excluded")
    if cost is None:
        return _bfs(topology, src, dst, constraints)
    return _dijkstra(topology, src, dst, constraints, cost)


def _bfs(topology: Topology, src: NodeId, dst: NodeId,
         constraints: RouteConstraints) -> Path:
    parent: dict[NodeId, NodeId] = {src: src}
    frontier = deque([(src, 0)])
    max_hops = constraints.max_hops
    while frontier:
        node, dist = frontier.popleft()
        if max_hops is not None and dist >= max_hops:
            continue
        for neighbour in topology.successors(node):
            if neighbour in parent:
                continue
            if not constraints.allows_link(topology.link(node, neighbour)):
                continue
            parent[neighbour] = node
            if neighbour == dst:
                return _reconstruct(parent, src, dst)
            frontier.append((neighbour, dist + 1))
    raise NoPathError(src, dst, "constraints unsatisfiable")


def _dijkstra(topology: Topology, src: NodeId, dst: NodeId,
              constraints: RouteConstraints, cost: LinkCost) -> Path:
    # Heap entries carry a monotone counter so ties never compare node ids.
    counter = 0
    best: dict[NodeId, float] = {src: 0.0}
    parent: dict[NodeId, NodeId] = {src: src}
    hops: dict[NodeId, int] = {src: 0}
    heap: list[tuple[float, int, NodeId]] = [(0.0, counter, src)]
    done: set[NodeId] = set()
    max_hops = constraints.max_hops
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == dst:
            return _reconstruct(parent, src, dst)
        done.add(node)
        if max_hops is not None and hops[node] >= max_hops:
            continue
        for neighbour in topology.successors(node):
            if neighbour in done:
                continue
            link = topology.link(node, neighbour)
            if not constraints.allows_link(link):
                continue
            link_cost = cost(link)
            if link_cost < 0:
                raise ValueError(f"negative link cost {link_cost!r} on {link}")
            candidate = dist + link_cost
            if candidate < best.get(neighbour, float("inf")):
                best[neighbour] = candidate
                parent[neighbour] = node
                hops[neighbour] = hops[node] + 1
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbour))
    raise NoPathError(src, dst, "constraints unsatisfiable")


def _reconstruct(parent: dict[NodeId, NodeId], src: NodeId, dst: NodeId) -> Path:
    nodes = [dst]
    while nodes[-1] != src:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return Path(nodes)
