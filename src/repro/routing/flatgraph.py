"""Flat-index routing core: CSR topology, reusable buffers, route cache.

Every primary/backup establishment and every baseline funnels through
:func:`repro.routing.shortest.shortest_path` / ``hop_distance``.  The
reference implementations there walk ``NodeId``-keyed dicts, allocate a
fresh ``parent``/``seen`` per call, and pay a ``topology.link(u, v)``
object lookup plus a Python predicate call per scanned link.  This module
compiles a :class:`~repro.network.topology.Topology` **once** into
integer-indexed CSR (compressed sparse row) arrays and reruns all searches
over them:

* **CSR layout** — nodes are interned to dense ints in insertion order;
  ``_off[u]:_off[u+1]`` spans ``u``'s outgoing edge slots in ``_nbr``
  (neighbour index), ``_links`` (the original :class:`LinkId`), and
  ``_cap`` (capacity).  A mirrored in-CSR (``_ioff``/``_ipred``) drives
  the backward half of bidirectional BFS.  Because the CSR is built in
  insertion order, scans reproduce the reference implementation's
  deterministic tie-break order bit for bit.
* **Epoch-stamped buffers** — visited/parent/distance/cost arrays are
  allocated once and invalidated by bumping a single epoch counter, so a
  search does no per-call allocation beyond its frontier list.
* **Constraint pre-resolution** — excluded node/link sets are stamped
  into integer arrays before the scan, and the standard "enough free
  bandwidth" predicate (a :class:`~repro.network.reservations.CapacityFloor`)
  is resolved to an array compare against a ledger-synced free-capacity
  mirror instead of a per-link closure call.
* **Route cache** — results keyed by ``(src, dst, constraint signature)``
  are memoised; searches that depend on the ledger additionally key on the
  capacity floor's bandwidth and are invalidated wholesale whenever
  ``ledger.version`` moves (any reserve/release/spare change).  Negative
  results (*no feasible path*) are cached too.  Hit/miss totals surface as
  ``route_cache.hits`` / ``route_cache.misses`` in the ``repro.obs``
  registry.

The compiled view lives on ``topology._flat`` and is discarded whenever
``topology.version`` changes; worker processes never receive it in pickles
(see ``Topology.__getstate__``) and recompile lazily.
"""

from __future__ import annotations

import heapq
from array import array

from repro.network.components import LinkId, NodeId
from repro.network.reservations import (
    CAPACITY_EPSILON,
    CapacityFloor,
    ReservationLedger,
)
from repro.network.topology import Topology
from repro.obs.registry import get_registry
from repro.routing.paths import Path

__all__ = [
    "FlatTopology",
    "RouteCache",
    "StaleFlatViewError",
    "flat_view",
    "route_cache_enabled",
    "set_route_cache_enabled",
]


class StaleFlatViewError(RuntimeError):
    """A :class:`FlatTopology` was searched after its topology mutated.

    The compiled CSR arrays, the search buffers, *and the route cache*
    are all sized and keyed for the topology as it was at compile time;
    running a search on a stale view would silently route on the old
    graph (or serve a cached route the new graph no longer supports).
    Re-resolve through :func:`flat_view` — the public entry points in
    :mod:`repro.routing.shortest` do this on every call.
    """

#: Process-wide escape hatch (``--no-route-cache`` on the CLI).  Search
#: kernels still run flat; only memoisation is disabled.
_ROUTE_CACHE_ENABLED = True

#: Sentinel distinguishing "cached None" (no feasible path) from a miss.
_MISSING = object()


def set_route_cache_enabled(enabled: bool) -> bool:
    """Enable/disable route-result memoisation; returns the previous state."""
    global _ROUTE_CACHE_ENABLED
    previous = _ROUTE_CACHE_ENABLED
    _ROUTE_CACHE_ENABLED = bool(enabled)
    return previous


def route_cache_enabled() -> bool:
    """Whether route-result memoisation is currently enabled."""
    return _ROUTE_CACHE_ENABLED


def flat_view(topology: Topology) -> "FlatTopology":
    """The compiled flat view of ``topology``, rebuilt if stale.

    The view is cached on the topology and keyed by ``topology.version``,
    so a settled topology compiles exactly once per process.
    """
    flat = topology._flat
    if flat is None or flat.version != topology.version:
        flat = FlatTopology(topology)
        topology._flat = flat
    return flat


class RouteCache:
    """Memoised search results for one :class:`FlatTopology`.

    Two tables:

    * ``static`` — searches whose outcome depends only on the topology and
      the constraint sets (no bandwidth floor, no custom predicate/cost).
      Valid for the lifetime of the flat view, i.e. until the topology
      mutates.  Also holds ``hop_distance`` results under ``("hop", src,
      dst)`` keys.
    * ``floor`` — searches gated by a :class:`CapacityFloor`; keys gain the
      floor's bandwidth and the whole table is cleared whenever the
      observed ledger (by identity) or its ``version`` changes.
    """

    #: Safety valve: a table exceeding this is cleared outright rather
    #: than evicted entry-by-entry (workloads never get close; this only
    #: bounds pathological key churn).
    MAX_ENTRIES = 65536

    __slots__ = (
        "_static", "_floor", "_floor_ledger", "_floor_version",
        "_registry", "_hits", "_misses",
    )

    def __init__(self) -> None:
        self._static: dict = {}
        self._floor: dict = {}
        self._floor_ledger: ReservationLedger | None = None
        self._floor_version = -1
        self._registry = None
        self._hits = None
        self._misses = None

    # -- tables --------------------------------------------------------
    def static_table(self) -> dict:
        return self._static

    def floor_table(self, ledger: ReservationLedger) -> dict:
        """The floor table, cleared if ``ledger`` moved since last use."""
        if self._floor_ledger is not ledger or self._floor_version != ledger.version:
            self._floor.clear()
            self._floor_ledger = ledger
            self._floor_version = ledger.version
        return self._floor

    def store(self, table: dict, key, value) -> None:
        if len(table) >= self.MAX_ENTRIES:
            table.clear()
        table[key] = value

    # -- observability -------------------------------------------------
    def _counters(self):
        # Re-resolve lazily: obs sessions swap the process registry, and
        # counters are identity-bound to the registry they came from.
        registry = get_registry()
        if registry is not self._registry:
            self._registry = registry
            self._hits = registry.counter("route_cache.hits")
            self._misses = registry.counter("route_cache.misses")
        return self._hits, self._misses

    def record_hit(self) -> None:
        self._counters()[0].inc()

    def record_miss(self) -> None:
        self._counters()[1].inc()

    def __len__(self) -> int:
        return len(self._static) + len(self._floor)


class FlatTopology:
    """Integer-indexed CSR compilation of a :class:`Topology`.

    Exposes the two search entry points the public routing API dispatches
    to: :meth:`search` (constrained BFS/Dijkstra returning a
    :class:`~repro.routing.paths.Path` or ``None``) and
    :meth:`hop_distance` (bidirectional BFS returning ``-1`` when
    disconnected).  Kernels never raise "no path" — the thin wrappers in
    :mod:`repro.routing.shortest` own the error surface.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.version = topology.version

        nodes = list(topology.nodes())
        self.nodes = nodes
        self.index: dict[NodeId, int] = {
            node: i for i, node in enumerate(nodes)
        }
        n = len(nodes)
        index = self.index

        # Out-CSR, in node/link insertion order (= tie-break order).  The
        # index arrays the kernels walk per edge are plain lists: CPython
        # indexes a list ~2x faster than an ``array`` (no int re-boxing),
        # and that difference dominates the inner loops.  The cold tables
        # (capacities, link-position map) stay compact ``array`` storage.
        nbr: list[int] = []
        links: list[LinkId] = []
        cap = array("d")
        edge_slot: dict[LinkId, int] = {}
        off = [0] * (n + 1)
        total = 0
        for i, node in enumerate(nodes):
            for neighbour, link in topology.out_edges(node):
                nbr.append(index[neighbour])
                edge_slot[link] = total
                links.append(link)
                cap.append(topology.capacity(link))
                total += 1
            off[i + 1] = total
        self._off = off
        self._nbr = nbr
        self._links = links
        self._cap = cap
        self.edge_slot = edge_slot
        num_edges = total

        # In-CSR (predecessor node indices only) for bidirectional BFS.
        ioff = [0] * (n + 1)
        ipred: list[int] = []
        itotal = 0
        for i, node in enumerate(nodes):
            for pred in topology.predecessors(node):
                ipred.append(index[pred])
                itotal += 1
            ioff[i + 1] = itotal
        self._ioff = ioff
        self._ipred = ipred

        # Position-in-``topology.links()`` -> CSR edge slot, for the bulk
        # free-capacity sync fast path.
        self._links_pos_slot = array(
            "i", (edge_slot[link] for link in topology.links())
        )

        # Epoch-stamped reusable search buffers.  A stamp equal to the
        # current epoch means "set this search"; bumping the epoch resets
        # every buffer at once.
        self._epoch = 0
        self._seen = [0] * n          # BFS visited / forward side
        self._seen_b = [0] * n        # bidirectional backward side
        self._parent = [0] * n
        self._depth = [0] * n         # BFS depth / forward dist
        self._depth_b = [0] * n       # backward dist
        self._xnode = [0] * n         # excluded-node stamps
        self._xedge = [0] * num_edges  # excluded-link stamps
        self._best = [0.0] * n        # Dijkstra tentative cost
        self._best_stamp = [0] * n
        self._done = [0] * n          # Dijkstra settled stamps
        self._hops = [0] * n          # Dijkstra hop counts

        # Free-capacity mirror for CapacityFloor admissibility, synced
        # against (ledger identity, ledger.version).
        self._free = [0.0] * num_edges
        self._free_ledger: ReservationLedger | None = None
        self._free_version = -1

        self.cache = RouteCache()

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def search(self, src: NodeId, dst: NodeId, constraints, cost) -> Path | None:
        """Constrained shortest path, or ``None`` when none is feasible.

        Endpoint validation (``src != dst``, both known, neither excluded)
        is the caller's job; this mirrors the retained reference kernels
        exactly, including tie-breaks and the negative-cost ``ValueError``.
        """
        if self.version != self.topology.version:
            raise StaleFlatViewError(
                f"flat view compiled at topology version {self.version} "
                f"but {self.topology.name!r} is now at "
                f"{self.topology.version}; re-resolve via flat_view()"
            )
        pred = constraints.link_admissible
        floor: CapacityFloor | None = None
        if isinstance(pred, CapacityFloor):
            floor = pred
            pred = None

        cacheable = _ROUTE_CACHE_ENABLED and cost is None and pred is None
        table = key = None
        if cacheable:
            cache = self.cache
            key = (
                src, dst, constraints.excluded_nodes,
                constraints.excluded_links, constraints.max_hops,
            )
            if floor is None:
                table = cache.static_table()
            else:
                table = cache.floor_table(floor.ledger)
                key = (*key, floor.bandwidth)
            hit = table.get(key, _MISSING)
            if hit is not _MISSING:
                cache.record_hit()
                return hit

        s = self.index[src]
        t = self.index[dst]
        ep = self._stamp_exclusions(constraints)
        if floor is not None:
            self._sync_free(floor.ledger)
            floor_bw = floor.bandwidth
        else:
            floor_bw = None

        if cost is None:
            path = self._run_bfs(s, t, ep, constraints.max_hops, floor_bw, pred)
        else:
            path = self._run_dijkstra(
                s, t, ep, constraints.max_hops, floor_bw, pred, cost
            )

        if cacheable:
            cache.record_miss()
            cache.store(table, key, path)
        return path

    def hop_distance(self, src: NodeId, dst: NodeId) -> int:
        """Unconstrained hop count via bidirectional BFS; ``-1`` when
        ``dst`` is unreachable.  ``src == dst`` is the caller's case."""
        if self.version != self.topology.version:
            raise StaleFlatViewError(
                f"flat view compiled at topology version {self.version} "
                f"but {self.topology.name!r} is now at "
                f"{self.topology.version}; re-resolve via flat_view()"
            )
        cacheable = _ROUTE_CACHE_ENABLED
        if cacheable:
            cache = self.cache
            table = cache.static_table()
            key = ("hop", src, dst)
            hit = table.get(key, _MISSING)
            if hit is not _MISSING:
                cache.record_hit()
                return hit

        s = self.index[src]  # KeyError on unknown src, like the reference
        t = self.index.get(dst)
        dist = -1 if t is None else self._run_bidirectional(s, t)

        if cacheable:
            cache.record_miss()
            cache.store(table, key, dist)
        return dist

    # ------------------------------------------------------------------
    # constraint resolution
    # ------------------------------------------------------------------
    def _stamp_exclusions(self, constraints) -> int:
        """Bump the epoch and stamp excluded components; returns the epoch.

        Components absent from the topology are ignored — the reference
        implementation's membership tests can never match them either.
        """
        self._epoch += 1
        ep = self._epoch
        excluded_nodes = constraints.excluded_nodes
        if excluded_nodes:
            xnode = self._xnode
            index_get = self.index.get
            for node in excluded_nodes:
                i = index_get(node)
                if i is not None:
                    xnode[i] = ep
        excluded_links = constraints.excluded_links
        if excluded_links:
            xedge = self._xedge
            slot_get = self.edge_slot.get
            for link in excluded_links:
                e = slot_get(link)
                if e is not None:
                    xedge[e] = ep
        return ep

    def _sync_free(self, ledger: ReservationLedger) -> None:
        """Refresh the per-edge free-bandwidth mirror from ``ledger``.

        Refresh contract: the mirror is keyed on ``(ledger identity,
        ledger.version)``, so any reservation change — *including* the
        version bump the ledger performs when it reconciles with a grown
        topology — forces a resync.  The bulk path indexes
        ``ledger.free_values()`` positionally against the CSR edge
        table, which is sound because (a) ``free_values()`` reconciles
        to the current ``topology.links()`` order/length (the ledger's
        mutation contract) and (b) a stale *view* can never get here —
        :meth:`search` raises :class:`StaleFlatViewError` first.
        """
        if (self._free_ledger is ledger
                and self._free_version == ledger.version):
            return
        free = self._free
        if ledger.topology is self.topology:
            # Bulk path: ledger entries are in topology.links() order.
            for pos, value in enumerate(ledger.free_values()):
                free[self._links_pos_slot[pos]] = value
        else:
            # Routing on one topology against another's ledger (the
            # runtime re-establishes over a residual topology with the
            # live ledger); fall back to per-link lookups by LinkId.
            for e, link in enumerate(self._links):
                free[e] = ledger.free(link)
        self._free_ledger = ledger
        self._free_version = ledger.version

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _run_bfs(self, s: int, t: int, ep: int, max_hops, floor_bw, pred):
        seen = self._seen
        parent = self._parent
        depth = self._depth
        off = self._off
        nbr = self._nbr
        xnode = self._xnode
        xedge = self._xedge
        links = self._links
        free = self._free
        limit = len(self.nodes) if max_hops is None else max_hops

        seen[s] = ep
        parent[s] = s
        depth[s] = 0
        queue = [s]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            d = depth[u]
            if d >= limit:
                continue
            for e in range(off[u], off[u + 1]):
                v = nbr[e]
                if seen[v] == ep:
                    continue
                if xedge[e] == ep or xnode[v] == ep:
                    continue
                if floor_bw is not None:
                    if free[e] + CAPACITY_EPSILON < floor_bw:
                        continue
                elif pred is not None and not pred(links[e]):
                    continue
                seen[v] = ep
                parent[v] = u
                if v == t:
                    return self._walk_parents(s, t)
                depth[v] = d + 1
                queue.append(v)
        return None

    def _run_dijkstra(self, s: int, t: int, ep: int, max_hops,
                      floor_bw, pred, cost):
        best = self._best
        best_stamp = self._best_stamp
        done = self._done
        hops = self._hops
        parent = self._parent
        off = self._off
        nbr = self._nbr
        xnode = self._xnode
        xedge = self._xedge
        links = self._links
        free = self._free
        heappush = heapq.heappush
        heappop = heapq.heappop
        limit = len(self.nodes) if max_hops is None else max_hops

        # Heap entries carry a monotone counter so ties never compare
        # beyond it — identical pop order to the reference kernel.
        counter = 0
        best[s] = 0.0
        best_stamp[s] = ep
        parent[s] = s
        hops[s] = 0
        heap = [(0.0, 0, s)]
        while heap:
            dist, _, u = heappop(heap)
            if done[u] == ep:
                continue
            if u == t:
                return self._walk_parents(s, t)
            done[u] = ep
            if hops[u] >= limit:
                continue
            u_hops = hops[u] + 1
            for e in range(off[u], off[u + 1]):
                v = nbr[e]
                if done[v] == ep:
                    continue
                if xedge[e] == ep or xnode[v] == ep:
                    continue
                if floor_bw is not None:
                    if free[e] + CAPACITY_EPSILON < floor_bw:
                        continue
                elif pred is not None and not pred(links[e]):
                    continue
                link_cost = cost(links[e])
                if link_cost < 0:
                    raise ValueError(
                        f"negative link cost {link_cost!r} on {links[e]}"
                    )
                candidate = dist + link_cost
                if best_stamp[v] != ep or candidate < best[v]:
                    best[v] = candidate
                    best_stamp[v] = ep
                    parent[v] = u
                    hops[v] = u_hops
                    counter += 1
                    heappush(heap, (candidate, counter, v))
        return None

    def _run_bidirectional(self, s: int, t: int) -> int:
        """Meet-in-the-middle BFS over the out- and in-CSR.

        Expands the smaller frontier one full level at a time; a candidate
        meeting through any scanned edge is recorded.  After levels ``df``
        and ``db`` both complete, every s→t path of length at most
        ``df + db`` has been detected, so any undetected path is at least
        ``df + db + 1`` hops — a recorded best of at most that is optimal
        and the loop stops.
        """
        ep = self._epoch = self._epoch + 1
        seen_f = self._seen
        seen_b = self._seen_b
        dist_f = self._depth
        dist_b = self._depth_b
        off = self._off
        nbr = self._nbr
        ioff = self._ioff
        ipred = self._ipred

        seen_f[s] = ep
        dist_f[s] = 0
        seen_b[t] = ep
        dist_b[t] = 0
        frontier_f = [s]
        frontier_b = [t]
        df = db = 0
        best = -1
        while frontier_f and frontier_b:
            if best >= 0 and best <= df + db + 1:
                break
            if len(frontier_f) <= len(frontier_b):
                level = []
                for u in frontier_f:
                    du = dist_f[u] + 1
                    for e in range(off[u], off[u + 1]):
                        v = nbr[e]
                        if seen_b[v] == ep:
                            candidate = du + dist_b[v]
                            if best < 0 or candidate < best:
                                best = candidate
                        if seen_f[v] != ep:
                            seen_f[v] = ep
                            dist_f[v] = du
                            level.append(v)
                frontier_f = level
                df += 1
            else:
                level = []
                for u in frontier_b:
                    du = dist_b[u] + 1
                    for e in range(ioff[u], ioff[u + 1]):
                        v = ipred[e]
                        if seen_f[v] == ep:
                            candidate = dist_f[v] + du
                            if best < 0 or candidate < best:
                                best = candidate
                        if seen_b[v] != ep:
                            seen_b[v] = ep
                            dist_b[v] = du
                            level.append(v)
                frontier_b = level
                db += 1
        return best

    def _walk_parents(self, s: int, t: int) -> Path:
        nodes = self.nodes
        parent = self._parent
        out = [nodes[t]]
        u = t
        while u != s:
            u = parent[u]
            out.append(nodes[u])
        out.reverse()
        return Path(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatTopology({self.topology.name!r}, "
            f"nodes={len(self.nodes)}, edges={len(self._nbr)}, "
            f"version={self.version})"
        )
