"""Path objects.

A :class:`Path` is an immutable node sequence with cached derived views:
the simplex links it traverses and its *component set* — the nodes and
links whose failure disables it.  Component sets drive both the overlap
computation ``sc(M_i, M_j)`` of backup multiplexing (Section 3.2) and the
failure-impact queries of the recovery evaluator.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import cached_property

from repro.network.components import LinkId, NodeId
from repro.network.topology import Topology


class Path:
    """An immutable simple path through a network.

    Parameters
    ----------
    nodes:
        The node sequence, source first.  Must contain at least two distinct
        nodes and no repeats (real-time channels are simple virtual circuits).
    """

    __slots__ = ("_nodes", "__dict__")

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        node_tuple = tuple(nodes)
        if len(node_tuple) < 2:
            raise ValueError(f"a path needs at least 2 nodes, got {node_tuple!r}")
        if len(set(node_tuple)) != len(node_tuple):
            raise ValueError(f"path contains repeated nodes: {node_tuple!r}")
        self._nodes = node_tuple

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node sequence, source first."""
        return self._nodes

    @property
    def source(self) -> NodeId:
        return self._nodes[0]

    @property
    def destination(self) -> NodeId:
        return self._nodes[-1]

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self._nodes) - 1

    @cached_property
    def links(self) -> tuple[LinkId, ...]:
        """The simplex links traversed, in order."""
        return tuple(
            LinkId(src, dst) for src, dst in zip(self._nodes, self._nodes[1:])
        )

    @property
    def interior_nodes(self) -> tuple[NodeId, ...]:
        """Nodes strictly between source and destination."""
        return self._nodes[1:-1]

    # ------------------------------------------------------------------
    # component sets
    # ------------------------------------------------------------------
    @cached_property
    def components(self) -> frozenset:
        """All components of the path: every node (endpoints included) and
        every link.  This is the paper's literal component count ``c(M)``."""
        return frozenset(self._nodes) | frozenset(self.links)

    @cached_property
    def transit_components(self) -> frozenset:
        """Components excluding the endpoint nodes.

        A failure of an endpoint makes the connection unrecoverable by any
        protocol, so the evaluation excludes such connections (Section 7.2);
        this set answers "does this *recoverable* failure hit the path?".
        """
        return frozenset(self.interior_nodes) | frozenset(self.links)

    def component_count(self, count_endpoints: bool = True) -> int:
        """``c(M)`` — the number of failure-prone components of the path."""
        source = self.components if count_endpoints else self.transit_components
        return len(source)

    def uses(self, component: "NodeId | LinkId") -> bool:
        """Whether the path traverses the given node or link."""
        return component in self.components

    def intersects(self, components: frozenset | set) -> bool:
        """Whether any of ``components`` lies on this path."""
        # Iterate the smaller set for speed; failure sets are tiny.
        if len(components) <= len(self.components):
            return any(item in self.components for item in components)
        return any(item in components for item in self.components)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, topology: Topology) -> "Path":
        """Check every hop exists in ``topology``; returns ``self``."""
        for link in self.links:
            if not topology.has_link(link.src, link.dst):
                raise ValueError(
                    f"path uses non-existent link {link} in {topology.name}"
                )
        return self

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.hops

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Path({' -> '.join(str(node) for node in self._nodes)})"


def shared_component_count(path_a: Path, path_b: Path,
                           count_endpoints: bool = True) -> int:
    """``sc(M_i, M_j)`` — components common to both paths (Section 3.2)."""
    if count_endpoints:
        return len(path_a.components & path_b.components)
    return len(path_a.transit_components & path_b.transit_components)
