"""Yen's k-shortest loopless paths.

Used by the cost-biased backup-routing ablation (the [HAN97b] direction)
to enumerate candidate backup routes, and generally useful as a routing
substrate.  Operates under the same :class:`RouteConstraints` as the other
searches, so candidates are always feasible paths.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.network.components import NodeId
from repro.network.topology import Topology
from repro.routing.paths import Path
from repro.routing.shortest import (
    LinkCost,
    NoPathError,
    RouteConstraints,
    shortest_path,
)


def _path_cost(path: Path, cost: LinkCost | None) -> float:
    if cost is None:
        return float(path.hops)
    return sum(cost(link) for link in path.links)


def k_shortest_paths(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    k: int,
    constraints: RouteConstraints | None = None,
    cost: LinkCost | None = None,
) -> list[Path]:
    """Up to ``k`` loopless shortest paths in non-decreasing cost order.

    Returns fewer than ``k`` paths when the graph does not contain ``k``
    distinct feasible paths; returns an empty list when there is none.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    base = constraints or RouteConstraints()
    try:
        first = shortest_path(topology, src, dst, base, cost)
    except NoPathError:
        return []

    accepted: list[Path] = [first]
    # Candidate heap entries: (cost, tie-break counter, path).
    candidates: list[tuple[float, int, Path]] = []
    seen_candidates: set[Path] = {first}
    counter = 0

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(previous.hops):
            spur_node = previous.nodes[spur_index]
            root_nodes = previous.nodes[: spur_index + 1]

            # Edges leaving the spur node along any accepted path sharing
            # this root are banned, as are the root's interior nodes.
            banned_links = set(base.excluded_links)
            for path in accepted:
                if path.nodes[: spur_index + 1] == root_nodes:
                    banned_links.add(path.links[spur_index])
            banned_nodes = set(base.excluded_nodes) | set(root_nodes[:-1])

            remaining_hops = None
            if base.max_hops is not None:
                remaining_hops = base.max_hops - spur_index
                if remaining_hops < 1:
                    continue
            spur_constraints = RouteConstraints(
                excluded_nodes=frozenset(banned_nodes),
                excluded_links=frozenset(banned_links),
                link_admissible=base.link_admissible,
                max_hops=remaining_hops,
            )
            try:
                spur = shortest_path(topology, spur_node, dst, spur_constraints, cost)
            except NoPathError:
                continue
            total = Path(root_nodes[:-1] + spur.nodes)
            if total in seen_candidates:
                continue
            seen_candidates.add(total)
            counter += 1
            heapq.heappush(
                candidates, (_path_cost(total, cost), counter, total)
            )
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted


def iter_shortest_paths(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    constraints: RouteConstraints | None = None,
    cost: LinkCost | None = None,
    limit: int = 64,
) -> Iterator[Path]:
    """Lazy wrapper over :func:`k_shortest_paths` with a safety ``limit``."""
    yield from k_shortest_paths(topology, src, dst, limit, constraints, cost)
