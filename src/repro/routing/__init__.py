"""Routing substrate: paths, constrained shortest paths, disjoint paths.

The paper routes channels with a *sequential shortest-path search*: the
primary over a shortest feasible path, then each backup over a shortest
feasible path that avoids the components already used by the connection
(Section 7).  :func:`~repro.routing.disjoint.sequential_disjoint_paths`
implements exactly that; Yen's k-shortest-paths is provided for the
cost-biased backup-routing ablation.
"""

from repro.routing.disjoint import DisjointPathError, sequential_disjoint_paths
from repro.routing.flatgraph import (
    FlatTopology,
    StaleFlatViewError,
    flat_view,
    route_cache_enabled,
    set_route_cache_enabled,
)
from repro.routing.ksp import k_shortest_paths
from repro.routing.paths import Path
from repro.routing.shortest import (
    NoPathError,
    RouteConstraints,
    hop_distance,
    reference_hop_distance,
    reference_shortest_path,
    shortest_path,
)

__all__ = [
    "Path",
    "RouteConstraints",
    "shortest_path",
    "hop_distance",
    "NoPathError",
    "sequential_disjoint_paths",
    "DisjointPathError",
    "k_shortest_paths",
    "FlatTopology",
    "StaleFlatViewError",
    "flat_view",
    "route_cache_enabled",
    "set_route_cache_enabled",
    "reference_shortest_path",
    "reference_hop_distance",
]
