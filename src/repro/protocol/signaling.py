"""Channel-establishment signaling (Section 3.4's message passes).

A channel is established "by using a pair of channel-establishment
messages: (i) the 'resource reservation message' from source to
destination and (ii) the 'resource relaxation message' from destination to
source".  This module simulates those two passes hop by hop:

* the **forward pass** visits each node, spends per-hop processing time on
  the admission test, tentatively reserves bandwidth, and — for backup
  channels — collects the |Ψ| counts for the candidate multiplexing
  degrees (the literal negotiation scheme's raw material);
* on admission failure the pass aborts and a **release pass** walks back,
  undoing the tentative reservations;
* the **backward pass** (relaxation) returns to the source, committing the
  final reservation level.

The point of modelling this is the paper's central latency argument:
"establishing a new channel is usually a time-consuming process" —
re-establishment costs a full signalling round trip with per-hop
admission work, whereas backup activation costs one failure report plus
an activation sweep.  :func:`establishment_latency` and the
:class:`SignalingSession` make that cost measurable under the same clock
as the recovery protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.traffic import TrafficSpec
from repro.network.reservations import ReservationLedger
from repro.routing.paths import Path
from repro.sim.engine import EventEngine
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SignalingParams:
    """Timing model of establishment signalling.

    ``hop_delay`` is the per-hop message transfer time (these messages are
    *not* time-critical and do not ride the RCC — Section 5.1 explicitly
    excludes reconfiguration traffic — so they see ordinary queueing);
    ``processing_delay`` is the per-node admission-test / table-update
    time.  Both default to multiples of the RCC's 1.0 hop delay to keep
    the comparison conservative.
    """

    hop_delay: float = 2.0
    processing_delay: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.hop_delay, "hop_delay")
        check_non_negative(self.processing_delay, "processing_delay")


def establishment_latency(hops: int, params: "SignalingParams | None" = None,
                          attempts: int = 1) -> float:
    """Closed-form signalling latency of establishing one channel.

    Forward pass: ``hops`` transfers and ``hops + 1`` node visits;
    backward pass the same.  ``attempts`` multiplies the whole round trip
    (the contention retries of [BAN93]-style recovery).
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    params = params or SignalingParams()
    # Forward: every node processes once ((hops+1) nodes) over `hops`
    # transfers; backward: `hops` transfers, each followed by processing
    # at the receiving node (the destination's processing is shared).
    round_trip = (
        2 * hops * params.hop_delay
        + (2 * hops + 1) * params.processing_delay
    )
    return attempts * round_trip


@dataclass
class SignalingOutcome:
    """Result of one simulated establishment session."""

    success: bool
    completed_at: "float | None" = None
    #: Node index at which admission failed (forward pass), if any.
    blocked_at: "int | None" = None
    #: Times at which each node finished its forward-pass processing.
    visit_times: list[float] = field(default_factory=list)


class SignalingSession:
    """One two-pass establishment walk over a path, against a live ledger.

    Reservations are tentative during the forward pass and either
    committed by the backward pass or rolled back by the release pass —
    so concurrent sessions contend realistically for capacity.
    """

    def __init__(
        self,
        engine: EventEngine,
        ledger: ReservationLedger,
        path: Path,
        traffic: TrafficSpec,
        params: "SignalingParams | None" = None,
    ) -> None:
        self.engine = engine
        self.ledger = ledger
        self.path = path
        self.traffic = traffic
        self.params = params or SignalingParams()
        self.outcome = SignalingOutcome(success=False)
        self._reserved_upto = -1  # index of last link reserved

    def start(self, at: float = 0.0) -> "SignalingSession":
        """Schedule the forward pass; returns self for chaining."""
        self.engine.schedule_at(
            at + self.params.processing_delay, self._forward, 0
        )
        return self

    # ------------------------------------------------------------------
    def _forward(self, node_index: int) -> None:
        self.outcome.visit_times.append(self.engine.now)
        if node_index == self.path.hops:
            # Destination reached: admission succeeded everywhere; start
            # the relaxation (confirmation) pass back to the source.
            self.engine.schedule(
                self.params.hop_delay + self.params.processing_delay,
                self._backward, self.path.hops - 1,
            )
            return
        link = self.path.links[node_index]
        if not self.ledger.can_reserve_primary(link, self.traffic.bandwidth):
            self.outcome.blocked_at = node_index
            self._release(node_index - 1)
            return
        self.ledger.reserve_primary(link, self.traffic.bandwidth)
        self._reserved_upto = node_index
        self.engine.schedule(
            self.params.hop_delay + self.params.processing_delay,
            self._forward, node_index + 1,
        )

    def _backward(self, link_index: int) -> None:
        # Invoked when the upstream node of `link_index` has processed the
        # relaxation message; the source (link 0) completes the session.
        if link_index == 0:
            self.outcome.success = True
            self.outcome.completed_at = self.engine.now
            return
        self.engine.schedule(
            self.params.hop_delay + self.params.processing_delay,
            self._backward, link_index - 1,
        )

    def _release(self, link_index: int) -> None:
        if link_index < 0:
            self.outcome.completed_at = self.engine.now
            return
        self.ledger.release_primary(
            self.path.links[link_index], self.traffic.bandwidth
        )
        self.engine.schedule(
            self.params.hop_delay + self.params.processing_delay,
            self._release, link_index - 1,
        )
