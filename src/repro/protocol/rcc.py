"""Real-time control channels (Section 5.1).

One :class:`RCCLink` runs over each simplex physical link.  It batches
outgoing control messages into sequence-numbered frames, enforces the
``1/R_max`` eligibility spacing and the ``S_max`` frame size, delivers
frames after the ``D_max`` hop delay, and guarantees delivery with
hop-by-hop acknowledgments and retransmission.  Duplicate frames are
detected by sequence number and dropped (their ack is still sent, in case
the original ack was lost).

Acknowledgments ride the *reverse* RCC link as pure-ack frames, which are
themselves not acknowledged.  Frames are lost when the physical link (or
either endpoint node) is down, or — to exercise the machinery — with a
configurable random probability.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.network.components import LinkId
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import NULL_SPAN_LOG, SpanLog
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import ControlMessage, RCCFrame
from repro.sim.engine import EventEngine, EventHandle
from repro.util.rng import make_rng


@dataclass
class RCCStats:
    """Per-link transport counters (diagnostics and tests)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    duplicates_dropped: int = 0
    retransmissions: int = 0
    gave_up: int = 0
    acks_sent: int = 0
    #: Worst message queueing+delivery delay observed on this link.
    max_message_delay: float = 0.0


@dataclass
class _PendingFrame:
    frame: RCCFrame
    retries: int = 0
    timer: "EventHandle | None" = field(default=None, repr=False)


class RCCLink:
    """The RCC in one direction of one physical link."""

    def __init__(
        self,
        engine: EventEngine,
        link: LinkId,
        config: ProtocolConfig,
        link_up: Callable[[LinkId], bool],
        deliver: Callable[[ControlMessage], None],
        seed: "int | None" = 0,
        metrics: "MetricsRegistry | None" = None,
        spans: "SpanLog | None" = None,
    ) -> None:
        self.engine = engine
        self.link = link
        self.config = config
        self._link_up = link_up
        self._deliver = deliver
        self._rng = make_rng(seed)
        self.stats = RCCStats()
        #: Causal span log (shared with the owning runtime's trace log);
        #: give-up verdicts are recorded as ``rcc-give-up`` point spans.
        self.spans = spans if spans is not None else NULL_SPAN_LOG
        # Network-wide transport metrics: every RCCLink of a runtime
        # shares these instruments, so they aggregate across links.
        obs = metrics if metrics is not None else get_registry()
        self._m_messages = obs.counter("rcc.messages_sent")
        self._m_frames = obs.counter("rcc.frames_sent")
        self._m_lost = obs.counter("rcc.frames_lost")
        self._m_retransmissions = obs.counter("rcc.retransmissions")
        self._m_gave_up = obs.counter("rcc.gave_up")
        self._m_queue_depth = obs.gauge("rcc.queue_depth")
        self._m_batch = obs.histogram("rcc.messages_per_frame")

        self._queue: deque[tuple[float, ControlMessage]] = deque()
        self._next_seq = 0
        self._last_tx = -float("inf")
        self._tx_scheduled: EventHandle | None = None
        self._pending: dict[int, _PendingFrame] = {}
        self._pending_acks: list[int] = []
        self._seen_seqs: set[int] = set()
        #: Enqueue times of the messages in each not-yet-delivered frame,
        #: for the max_message_delay statistic.
        self._frame_times: dict[int, float] = {}
        #: The reverse-direction RCCLink, used to carry our acks.
        self.reverse: "RCCLink | None" = None
        #: Called with the link id when a frame exhausts its retransmission
        #: budget — the sender-side liveness signal (a heartbeat-detection
        #: runtime uses it to detect dead *outgoing* links, which missed
        #: incoming beats cannot reveal).
        self.on_give_up: "Callable[[LinkId], None] | None" = None
        #: Per-link frame-loss override; ``None`` falls back to the shared
        #: ``config.frame_loss_probability``.  Lets chaos profiles and
        #: tests make *one* link lossy without touching the others.
        self.loss_probability: "float | None" = None
        #: Delivery observer: called as ``observer(rcc, frame)`` just
        #: before a frame's messages are handed to the daemon (after the
        #: link-health and duplicate checks).  The invariant auditor hangs
        #: its sequence-number and dead-link-delivery checks here.
        self.on_frame_delivered: "Callable[[RCCLink, RCCFrame], None] | None" \
            = None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, message: ControlMessage) -> None:
        """Queue a control message; it rides the next eligible frame."""
        self.stats.messages_sent += 1
        self._m_messages.inc()
        self._queue.append((self.engine.now, message))
        self._m_queue_depth.set(len(self._queue))
        self._schedule_transmission()

    def _schedule_transmission(self) -> None:
        if self._tx_scheduled is not None and self._tx_scheduled.active:
            return
        eligible_at = max(
            self.engine.now, self._last_tx + self.config.rcc.min_interval
        )
        self._tx_scheduled = self.engine.schedule_at(eligible_at, self._transmit)

    def _transmit(self) -> None:
        self._tx_scheduled = None
        if not self._queue and not self._pending_acks:
            return
        batch: list[ControlMessage] = []
        oldest_enqueue = self.engine.now
        while self._queue and len(batch) < self.config.rcc.max_messages_per_frame:
            enqueued_at, message = self._queue.popleft()
            oldest_enqueue = min(oldest_enqueue, enqueued_at)
            batch.append(message)
        self._m_queue_depth.set(len(self._queue))
        acks = tuple(self._pending_acks)
        self._pending_acks.clear()
        frame = RCCFrame(seq=self._next_seq, messages=tuple(batch), acks=acks)
        if batch:
            self._m_batch.record(len(batch))
        self._next_seq += 1
        self._last_tx = self.engine.now
        if not frame.is_pure_ack:
            pending = _PendingFrame(frame=frame)
            self._pending[frame.seq] = pending
            self._frame_times[frame.seq] = oldest_enqueue
            self._arm_retransmit(pending)
        self._launch(frame)
        if self._queue:
            self._schedule_transmission()

    def _launch(self, frame: RCCFrame) -> None:
        self.stats.frames_sent += 1
        self._m_frames.inc()
        loss = (
            self.config.frame_loss_probability
            if self.loss_probability is None
            else self.loss_probability
        )
        if not self._link_up(self.link) or (
            loss > 0 and self._rng.random() < loss
        ):
            self.stats.frames_lost += 1
            self._m_lost.inc()
            return  # lost; the retransmit timer covers non-pure-ack frames
        self.engine.schedule(self.config.rcc.max_delay, self._arrive, frame)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _arm_retransmit(self, pending: _PendingFrame) -> None:
        pending.timer = self.engine.schedule(
            self.config.ack_timeout, self._retransmit, pending
        )

    def _retransmit(self, pending: _PendingFrame) -> None:
        if pending.frame.seq not in self._pending:
            return  # acked in the meantime
        if pending.retries >= self.config.max_retransmissions:
            del self._pending[pending.frame.seq]
            self._frame_times.pop(pending.frame.seq, None)
            self.stats.gave_up += 1
            self._m_gave_up.inc()
            if self.spans.enabled:
                self.spans.point(
                    "rcc-give-up", self.engine.now, link=str(self.link),
                    retries=pending.retries,
                )
            if self.on_give_up is not None:
                self.on_give_up(self.link)
            return
        pending.retries += 1
        self.stats.retransmissions += 1
        self._m_retransmissions.inc()
        self._arm_retransmit(pending)
        self._launch(pending.frame)

    def _handle_ack(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    def halt(self) -> None:
        """Stop all sender-side activity: a crashed source node transmits
        nothing, so its queued messages, unacked frames, and pending
        retransmit/transmit timers are dropped on the spot (instead of
        ticking on pointlessly until give-up)."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        self._frame_times.clear()
        self._queue.clear()
        self._pending_acks.clear()
        self._m_queue_depth.set(0)
        if self._tx_scheduled is not None:
            self._tx_scheduled.cancel()
            self._tx_scheduled = None

    # ------------------------------------------------------------------
    # receiving (runs at the *destination* node of the link)
    # ------------------------------------------------------------------
    def _arrive(self, frame: RCCFrame) -> None:
        if not self._link_up(self.link):
            # The link (or an endpoint) died while the frame was in flight.
            self.stats.frames_lost += 1
            return
        self.stats.frames_delivered += 1
        for seq in frame.acks:
            self._handle_ack_on_reverse(seq)
        if frame.is_pure_ack:
            return
        self._queue_ack(frame.seq)
        if frame.seq in self._seen_seqs:
            self.stats.duplicates_dropped += 1
            return
        self._seen_seqs.add(frame.seq)
        enqueued_at = self._frame_times.pop(frame.seq, None)
        if enqueued_at is not None:
            self.stats.max_message_delay = max(
                self.stats.max_message_delay, self.engine.now - enqueued_at
            )
        if self.on_frame_delivered is not None:
            self.on_frame_delivered(self, frame)
        for message in frame.messages:
            self.stats.messages_delivered += 1
            self._deliver(message)

    def _handle_ack_on_reverse(self, seq: int) -> None:
        # Acks carried by this link acknowledge frames sent on the reverse
        # link (we receive at this link's dst, which sends on the reverse).
        if self.reverse is not None:
            self.reverse._handle_ack(seq)

    def _queue_ack(self, seq: int) -> None:
        if self.reverse is None:
            return
        self.stats.acks_sent += 1
        self.reverse._pending_acks.append(seq)
        self.reverse._schedule_transmission()
