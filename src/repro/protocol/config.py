"""Protocol runtime configuration.

Time is unit-free; the defaults read naturally as milliseconds (RCC hop
delay 1.0, rejoin timeout 50.0).  The delay-bound analysis of Section 5.3
works in the same unit via ``RCCParams.max_delay``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


class SwitchingScheme(enum.Enum):
    """The three channel-switching schemes of Section 4.2 (Fig. 5)."""

    #: Downstream node reports to the *destination*; the destination sends
    #: the activation toward the source, which resumes on receiving it.
    SCHEME_1 = 1
    #: Upstream node reports to the *source*; the source sends the
    #: activation toward the destination and resumes immediately.
    SCHEME_2 = 2
    #: Hybrid: both end-nodes are informed and activate bi-directionally
    #: (the paper's default for the rest of the paper).
    SCHEME_3 = 3


@dataclass(frozen=True)
class RCCParams:
    """The RCC model of Section 5.1: (S_max, R_max, D_max).

    ``max_messages_per_frame`` plays the role of S_max expressed in control
    messages (all control messages have equal size in the model);
    ``max_rate`` is R_max (frames per time unit), enforcing the eligibility
    spacing ``1/R_max``; ``max_delay`` is D_max, the per-hop delivery bound
    the underlying real-time channel guarantees.
    """

    max_messages_per_frame: int = 64
    max_rate: float = 10.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_messages_per_frame < 1:
            raise ValueError(
                f"max_messages_per_frame must be >= 1, got "
                f"{self.max_messages_per_frame}"
            )
        check_positive(self.max_rate, "max_rate")
        check_positive(self.max_delay, "max_delay")

    @property
    def min_interval(self) -> float:
        """Minimum spacing between frame transmissions (1/R_max)."""
        return 1.0 / self.max_rate


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs of the BCP runtime."""

    scheme: SwitchingScheme = SwitchingScheme.SCHEME_3
    rcc: RCCParams = field(default_factory=RCCParams)
    #: Delay between a component crash and its neighbours noticing; the
    #: paper assumes detection exists ([HAN97a]) and Section 5.3 assumes it
    #: is immediate.
    detection_delay: float = 0.0
    #: Soft-state rejoin timer (Section 4.4) — must cover reporting delay +
    #: rejoin round trip for repairs to beat the teardown.
    rejoin_timeout: float = 50.0
    #: The source re-probes a failed channel (rejoin-request) at this
    #: interval while its rejoin timer runs, so a repair anywhere in the
    #: window is caught even after earlier probes died at the break.
    rejoin_probe_interval: float = 10.0
    #: Priority-based activation, delay variant (Section 4.3): an end-node
    #: waits ``mux_degree * activation_delay_per_degree`` before sending an
    #: activation.  0 disables the wait.
    activation_delay_per_degree: float = 0.0
    #: Priority-based activation, preemption variant (Section 4.3): a
    #: higher-priority activation short on spare may preempt an activated
    #: lower-priority backup on the congested link.
    preemption: bool = False
    #: Retransmission: resend an unacked frame after
    #: ``ack_timeout_factor * 2 * rcc.max_delay``.
    ack_timeout_factor: float = 1.25
    max_retransmissions: int = 8
    #: Random per-frame loss (exercises the ack/retransmit machinery even
    #: without component failures).
    frame_loss_probability: float = 0.0
    #: Slow-path recovery (Section 4.4: "If all channels of a D-connection
    #: fail simultaneously, a new primary channel has to be established
    #: from scratch").  When enabled, a source that exhausts its backups
    #: routes a replacement in the residual network and pays the full
    #: two-pass establishment latency; otherwise the connection is just
    #: reported unrecoverable.
    reestablish_unrecoverable: bool = False
    #: Failure detection.  The paper assumes an external detector
    #: ([HAN97a]) and instant detection; with ``heartbeat_detection`` the
    #: detection is *emergent* instead: every node heartbeats each
    #: outgoing link over the RCC, and a neighbour missing
    #: ``heartbeat_miss_threshold`` consecutive beats declares the link
    #: failed.  Detection latency then becomes
    #: ≈ threshold·period + D_max rather than ``detection_delay``.
    heartbeat_detection: bool = False
    heartbeat_period: float = 2.0
    heartbeat_miss_threshold: int = 3
    #: Switchover handshake (Section 4.2 hardening): an end-node that
    #: initiates an activation expects an end-to-end ActivationAck from
    #: the far end-node within ``switchover_ack_timeout``; on expiry it
    #: resends, backing off geometrically by ``switchover_backoff`` per
    #: attempt, up to ``switchover_retry_limit`` retries.  Exhaustion
    #: declares the backup dead (U) and falls through to the next backup
    #: or to source-initiated re-establishment — the handshake never
    #: wedges in soft state.  The default timeout covers a worst-case
    #: report + activation + ack traversal over the RCC (a few give-up
    #: free hop round trips at D_max = 1.0).
    switchover_ack_timeout: float = 12.0
    switchover_retry_limit: int = 2
    switchover_backoff: float = 2.0
    #: Planted bug for validating the invariant auditor (never enable
    #: outside tests/chaos validation): releasing an activation draw also
    #: credits the bandwidth back into the runtime's spare pool, i.e. a
    #: spare-pool double-release.  The auditor's reservation-conservation
    #: check must catch it, and the chaos shrinker must reduce a failing
    #: campaign schedule to a minimal reproducing event sequence.
    debug_double_release: bool = False
    #: Planted race for validating the invariant auditor (never enable
    #: outside tests/chaos validation): disables every switchover guard —
    #: episode/serial staleness rejection, stale-primary demotion, the
    #: activation ack/retry layer, and duplicate-report suppression —
    #: restoring the unguarded pre-hardening handshake.  Regional/cascade
    #: chaos schedules then drive the endpoints into `multiple-active` /
    #: `endpoint-disagreement` violations the auditor must catch and the
    #: shrinker must reduce.
    debug_unguarded_switchover: bool = False

    def __post_init__(self) -> None:
        check_non_negative(self.detection_delay, "detection_delay")
        check_positive(self.rejoin_timeout, "rejoin_timeout")
        check_non_negative(
            self.activation_delay_per_degree, "activation_delay_per_degree"
        )
        check_positive(self.ack_timeout_factor, "ack_timeout_factor")
        if self.max_retransmissions < 0:
            raise ValueError(
                f"max_retransmissions must be >= 0, got {self.max_retransmissions}"
            )
        check_probability(self.frame_loss_probability, "frame_loss_probability")
        check_positive(self.rejoin_probe_interval, "rejoin_probe_interval")
        check_positive(self.switchover_ack_timeout, "switchover_ack_timeout")
        if self.switchover_retry_limit < 0:
            raise ValueError(
                f"switchover_retry_limit must be >= 0, got "
                f"{self.switchover_retry_limit}"
            )
        if self.switchover_backoff < 1.0:
            raise ValueError(
                f"switchover_backoff must be >= 1.0, got "
                f"{self.switchover_backoff}"
            )
        check_positive(self.heartbeat_period, "heartbeat_period")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError(
                f"heartbeat_miss_threshold must be >= 1, got "
                f"{self.heartbeat_miss_threshold}"
            )

    @property
    def ack_timeout(self) -> float:
        """How long a frame waits for its hop-by-hop ack before resending."""
        return self.ack_timeout_factor * 2.0 * self.rcc.max_delay

    @property
    def switchover_retry_window(self) -> float:
        """Worst-case wall time one backup's handshake can occupy: the
        geometric sum of the initial wait plus every backed-off retry."""
        attempts = self.switchover_retry_limit + 1
        if self.switchover_backoff == 1.0:
            return self.switchover_ack_timeout * attempts
        return (
            self.switchover_ack_timeout
            * (self.switchover_backoff ** attempts - 1.0)
            / (self.switchover_backoff - 1.0)
        )
