"""Control messages and RCC frames (Sections 4.2, 5.1).

Control messages are immutable records; an :class:`RCCFrame` bundles
several of them for one hop (the paper's Fig. 7 format: a combination of
failure reports, activation messages, and acknowledgments, plus a
sequence number for duplicate detection).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Travel direction of a control message along a channel's path."""

    TO_SOURCE = "to_source"
    TO_DESTINATION = "to_destination"

    def reverse(self) -> "Direction":
        """The opposite travel direction."""
        if self is Direction.TO_SOURCE:
            return Direction.TO_DESTINATION
        return Direction.TO_SOURCE


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """Base class: every control message names the channel it concerns."""

    channel_id: int


@dataclass(frozen=True, slots=True)
class FailureReport(ControlMessage):
    """A channel was disabled by a component failure (or a multiplexing
    failure when ``mux_failure`` is set); travels toward one end-node
    through the healthy segment of the channel's path."""

    direction: Direction = Direction.TO_SOURCE
    failed_component: object = None
    mux_failure: bool = False


@dataclass(frozen=True, slots=True)
class ActivationMessage(ControlMessage):
    """Activate a backup channel (``channel_id`` is the backup's id).

    ``serial`` lets both end-nodes verify they are activating the same
    backup (Section 4.2); ``episode`` is the sending end-node's recovery
    round for the connection, so a late duplicate from an earlier failure
    round is rejected deterministically instead of racing the current
    switchover.
    """

    direction: Direction = Direction.TO_DESTINATION
    connection_id: int = -1
    serial: int = 0
    episode: int = 0


@dataclass(frozen=True, slots=True)
class ActivationAck(ControlMessage):
    """End-to-end acknowledgment of an :class:`ActivationMessage`.

    Sent by the far end-node back along the backup's path once the
    activation reached it; the initiating end-node cancels its
    retry/backoff timer on a matching ``(connection, serial, episode)``.
    """

    direction: Direction = Direction.TO_SOURCE
    connection_id: int = -1
    serial: int = 0
    episode: int = 0


@dataclass(frozen=True, slots=True)
class RejoinRequest(ControlMessage):
    """Source-to-destination probe over a failed channel's path: if it
    gets through, the channel is repairable (Section 4.4)."""


@dataclass(frozen=True, slots=True)
class RejoinConfirm(ControlMessage):
    """Destination-to-source confirmation: the channel is repaired and
    becomes a backup again (U -> B)."""


@dataclass(frozen=True, slots=True)
class ChannelClosure(ControlMessage):
    """Tear the channel down at each node (undo of a late rejoin, or an
    explicit teardown)."""

    direction: Direction = Direction.TO_DESTINATION


@dataclass(frozen=True, slots=True)
class RCCFrame:
    """One RCC transmission unit: a batch of control messages plus
    acknowledgments of previously received frames (Fig. 7)."""

    seq: int
    messages: tuple[ControlMessage, ...] = ()
    acks: tuple[int, ...] = field(default=())

    @property
    def is_pure_ack(self) -> bool:
        """Frames carrying only acknowledgments are not themselves acked,
        avoiding infinite ack chains."""
        return not self.messages
