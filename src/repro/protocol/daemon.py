"""The per-node BCP daemon (Section 4).

Each node runs one daemon.  It keeps a :class:`LocalChannelRecord` for
every channel whose path crosses the node, and — at the end-nodes of a
D-connection — an :class:`EndpointView` with the connection-level
knowledge needed for channel switching (backup serials, paths, health).

The daemon implements:

* failure detection hand-off and failure reporting along the healthy
  segments of failed channels' paths, under any of the three switching
  schemes (Section 4.2),
* backup activation with spare-pool draws, including multiplexing
  failures and the two priority-based activation variants (Section 4.3),
* the soft-state rejoin machinery (Section 4.4): rejoin timers,
  rejoin-request / rejoin-confirm forwarding, late-rejoin closure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.network.components import LinkId, NodeId
from repro.obs.registry import get_registry
from repro.obs.spans import NULL_SPAN_LOG
from repro.protocol.config import SwitchingScheme
from repro.protocol.messages import (
    ActivationAck,
    ActivationMessage,
    ChannelClosure,
    ControlMessage,
    Direction,
    FailureReport,
    RejoinConfirm,
    RejoinRequest,
)
from repro.protocol.states import (
    ChannelEvent,
    LocalChannelRecord,
    LocalChannelState,
)
from repro.routing.paths import Path
from repro.sim.timers import PeriodicTimer, Timeout


class _FailureSide(enum.Enum):
    """Where a detected failure lies relative to this node on the path."""

    UPSTREAM = "upstream"      # we are the downstream neighbour
    DOWNSTREAM = "downstream"  # we are the upstream neighbour


@dataclass
class BackupInfo:
    """Endpoint-side knowledge of one backup channel."""

    channel_id: int
    serial: int
    path: Path
    mux_degree: int


@dataclass
class EndpointView:
    """Connection-level state kept at each end-node (Section 4.2)."""

    connection_id: int
    source: NodeId
    destination: NodeId
    role: str  # "source" | "destination"
    current_channel: int  # channel id currently carrying (or meant to carry) data
    backups: list[BackupInfo] = field(default_factory=list)
    unhealthy: set[int] = field(default_factory=set)
    attempted: set[int] = field(default_factory=set)
    recovering: bool = False
    #: Serial of ``current_channel`` — the serial-number rule's anchor:
    #: an incoming activation for a lower (episode, serial) pair is stale.
    current_serial: int = 0
    #: Recovery round for this connection at this end-node; bumped every
    #: time the channel currently carrying data is learned dead.  Carried
    #: by activations/acks so late duplicates from an earlier round are
    #: rejected deterministically.
    episode: int = 0

    def next_backup(self) -> "BackupInfo | None":
        """Lowest-serial backup believed healthy and not yet attempted —
        the serial-number rule that keeps both end-nodes consistent."""
        for backup in sorted(self.backups, key=lambda info: info.serial):
            if backup.channel_id in self.unhealthy:
                continue
            if backup.channel_id in self.attempted:
                continue
            return backup
        return None


@dataclass
class _PendingActivation:
    """One in-flight switchover handshake at its initiating end-node."""

    backup: BackupInfo
    episode: int
    attempts: int
    timer: Timeout


class BCPDaemon:
    """The BCP agent at one node."""

    def __init__(self, node: NodeId, runtime) -> None:
        self.node = node
        self.runtime = runtime
        self.records: dict[int, LocalChannelRecord] = {}
        self.views: dict[int, EndpointView] = {}
        self._rejoin_timers: dict[int, Timeout] = {}
        self._probe_timers: dict[int, PeriodicTimer] = {}
        #: In-flight switchover handshakes this end-node initiated, keyed
        #: by connection id (at most one per connection).
        self._pending: dict[int, _PendingActivation] = {}
        # Network-wide control-plane counters, shared by every daemon of
        # the runtime (stub runtimes without .obs fall back to the
        # session registry).
        obs = getattr(runtime, "obs", None) or get_registry()
        self._c_detections = obs.counter("protocol.detections")
        self._c_reports = obs.counter("protocol.reports_sent")
        self._c_received = obs.counter("protocol.messages_received")
        self._c_so_episodes = obs.counter("switchover.episodes")
        self._c_so_duplicates = obs.counter("switchover.duplicates")
        self._c_so_stale = obs.counter("switchover.stale_dropped")
        self._c_so_retries = obs.counter("switchover.retries")
        self._c_so_exhausted = obs.counter("switchover.retry_exhausted")
        self._c_so_demotions = obs.counter("switchover.demotions")
        self._c_so_acks = obs.counter("switchover.acks")
        self._c_so_completed = obs.counter("switchover.completed")
        self._c_so_fallbacks = obs.counter("switchover.fallbacks")
        # Causal span log shared with the runtime (stub runtimes without
        # .spans get the inert one).  Note: an *empty* SpanLog is falsy
        # (it has __len__), so this must be a None check, not ``or``.
        spans = getattr(runtime, "spans", None)
        self._spans = spans if spans is not None else NULL_SPAN_LOG

    # ------------------------------------------------------------------
    # registration (channel establishment has already happened; the
    # runtime installs the resulting state)
    # ------------------------------------------------------------------
    def register_channel(
        self,
        channel_id: int,
        connection_id: int,
        serial: int,
        path: Path,
        mux_degree: int,
        state: LocalChannelState,
    ) -> LocalChannelRecord:
        """Install a channel's local record in the given state."""
        record = LocalChannelRecord(
            channel_id=channel_id,
            connection_id=connection_id,
            serial=serial,
            path=path,
            node=self.node,
            mux_degree=mux_degree,
        )
        event = (
            ChannelEvent.ESTABLISH_PRIMARY
            if state is LocalChannelState.PRIMARY
            else ChannelEvent.ESTABLISH_BACKUP
            if state is LocalChannelState.BACKUP
            else None
        )
        record.transition(state, event)
        self.records[channel_id] = record
        return record

    def register_endpoint(self, view: EndpointView) -> None:
        """Install connection-level knowledge at an end-node."""
        self.views[view.connection_id] = view

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def _config(self):
        return self.runtime.config

    def _alive(self) -> bool:
        return self.runtime.node_up(self.node)

    def _trace(self, category: str, description: str) -> None:
        self.runtime.trace.record(
            self.runtime.engine.now, category, self.node, description
        )

    def _span_point(self, kind: str, connection_id: int,
                    **attrs: object) -> None:
        """Record an instantaneous span attached to the connection's open
        recovery episode (callers guard on ``self._spans.enabled``)."""
        self._spans.point(
            kind, self.runtime.engine.now,
            parent=self.runtime.episode_parent(connection_id),
            node=str(self.node), connection=connection_id, **attrs,
        )

    def _send(self, next_hop: NodeId, message: ControlMessage) -> None:
        self.runtime.rcc_send(self.node, next_hop, message)

    def _next_hop(self, record: LocalChannelRecord, direction: Direction):
        if direction is Direction.TO_SOURCE:
            return record.upstream
        return record.downstream

    def _start_rejoin_timer(self, record: LocalChannelRecord) -> None:
        timer = self._rejoin_timers.get(record.channel_id)
        if timer is None:
            timer = Timeout(
                self.runtime.engine,
                self._config.rejoin_timeout,
                lambda cid=record.channel_id: self._rejoin_expired(cid),
            )
            self._rejoin_timers[record.channel_id] = timer
        timer.start()

    def _cancel_rejoin_timer(self, channel_id: int) -> None:
        timer = self._rejoin_timers.get(channel_id)
        if timer is not None:
            timer.cancel()

    def on_crashed(self) -> None:
        """The node died: disarm every pending timer.

        The ``_alive()`` guards already make post-crash callbacks no-ops,
        but the armed events would still fire (and keep the event heap
        from draining); a crashed node holds no soft state, so its rejoin
        and probe timers are cancelled outright.
        """
        for timer in self._rejoin_timers.values():
            timer.cancel()
        for timer in self._probe_timers.values():
            timer.stop()
        for pending in self._pending.values():
            pending.timer.cancel()
        self._pending.clear()

    def on_repaired(self) -> None:
        """The node came back: re-arm soft-state expiry for channels that
        were unhealthy at crash time, so they either rejoin or tear down
        instead of lingering in U forever (their timers were cancelled by
        :meth:`on_crashed`), and reconcile the endpoint views.

        A repaired end-node cannot trust its frozen connection views: the
        far end may have switched channels, exhausted every backup, or
        torn soft state down while this node was dark.  Marking the
        (pre-crash) current channel suspect and opening a fresh recovery
        round resynchronizes both ends through the guarded handshake —
        either on a surviving channel, or into a consistent unrecoverable
        verdict.
        """
        for record in self.records.values():
            if record.state is LocalChannelState.UNHEALTHY:
                self._start_rejoin_timer(record)
        if self._config.debug_unguarded_switchover:
            return
        for view in self.views.values():
            view.unhealthy.add(view.current_channel)
            view.episode += 1
            self._c_so_episodes.inc()
            view.recovering = False
            self._trace(
                "switchover",
                f"end-node repaired; reconciling connection "
                f"{view.connection_id} (pre-crash channel "
                f"{view.current_channel} is suspect)",
            )
            if view.role == "source":
                # Probe everything believed dead: a channel whose soft
                # state survived elsewhere can heal back into a standby.
                for channel_id in sorted(view.unhealthy):
                    probed = self.records.get(channel_id)
                    if (
                        probed is not None
                        and probed.is_source
                        and probed.state is not LocalChannelState.NON_EXISTENT
                    ):
                        self.start_rejoin_probe(channel_id)
                        self._start_probe_timer(channel_id)
            if self._initiates_activation(view):
                self._initiate_recovery(view)

    def _rejoin_expired(self, channel_id: int) -> None:
        if not self._alive():
            return
        record = self.records.get(channel_id)
        if record is None or record.state is not LocalChannelState.UNHEALTHY:
            return
        # Soft-state teardown: the channel's local resources are released.
        record.transition(LocalChannelState.NON_EXISTENT, ChannelEvent.EXPIRE)
        self._trace(
            "teardown",
            f"rejoin timer expired; channel {channel_id} released",
        )
        self.runtime.release_channel_at_node(channel_id, self.node)

    # ------------------------------------------------------------------
    # failure detection (called by the runtime on the failed component's
    # neighbour nodes)
    # ------------------------------------------------------------------
    def on_component_failure(self, component) -> None:
        """A component adjacent to this node crashed; find every channel
        we host that traverses it and start the recovery machinery."""
        if not self._alive():
            return
        for record in list(self.records.values()):
            side = self._relation(record, component)
            if side is None:
                continue
            self._handle_detected_failure(record, side, component)

    def _relation(self, record: LocalChannelRecord, component):
        """Whether ``component`` is this record's upstream/downstream
        neighbour component (link or node)."""
        up, down = record.upstream, record.downstream
        if up is not None:
            if component == up or component == LinkId(up, self.node):
                return _FailureSide.UPSTREAM
        if down is not None:
            if component == down or component == LinkId(self.node, down):
                return _FailureSide.DOWNSTREAM
        return None

    def _handle_detected_failure(
        self, record: LocalChannelRecord, side: _FailureSide, component
    ) -> None:
        if record.state in (LocalChannelState.PRIMARY, LocalChannelState.BACKUP):
            record.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
            self._start_rejoin_timer(record)
            self._c_detections.inc()
            self._trace(
                "detect",
                f"channel {record.channel_id} lost its {side.value} "
                f"component {component}",
            )
            if self._spans.enabled:
                self._span_point(
                    "detect", record.connection_id,
                    channel=record.channel_id, side=side.value,
                    component=str(component),
                )
        elif record.state is LocalChannelState.NON_EXISTENT:
            return
        scheme = self._config.scheme
        # Which reports this node generates (Fig. 5): the node downstream
        # of the failure reports toward the destination (schemes 1, 3); the
        # node upstream reports toward the source (schemes 2, 3).
        if side is _FailureSide.UPSTREAM and scheme in (
            SwitchingScheme.SCHEME_1, SwitchingScheme.SCHEME_3
        ):
            self._emit_report(record, Direction.TO_DESTINATION, component)
        if side is _FailureSide.DOWNSTREAM and scheme in (
            SwitchingScheme.SCHEME_2, SwitchingScheme.SCHEME_3
        ):
            self._emit_report(record, Direction.TO_SOURCE, component)

    def _emit_report(
        self, record: LocalChannelRecord, direction: Direction, component,
        mux_failure: bool = False,
    ) -> None:
        if direction in record.reported:
            return
        record.reported.add(direction)
        report = FailureReport(
            channel_id=record.channel_id,
            direction=direction,
            failed_component=component,
            mux_failure=mux_failure,
        )
        next_hop = self._next_hop(record, direction)
        if next_hop is None:
            # This node *is* the target end-node.
            self._end_node_learns_failure(record, report)
        else:
            self._c_reports.inc()
            self._trace(
                "report",
                f"failure report for channel {record.channel_id} "
                f"{direction.value} via {next_hop}",
            )
            if self._spans.enabled:
                self._span_point(
                    "report-hop", record.connection_id,
                    channel=record.channel_id, direction=direction.value,
                    via=str(next_hop),
                )
            self._send(next_hop, report)

    # ------------------------------------------------------------------
    # message dispatch (called by the RCC layer)
    # ------------------------------------------------------------------
    def receive(self, message: ControlMessage) -> None:
        """Dispatch one control message delivered by the RCC layer."""
        if not self._alive():
            return
        self._c_received.inc()
        record = self.records.get(message.channel_id)
        if record is None:
            return  # the channel was never established through this node
        if isinstance(message, FailureReport):
            self._receive_failure_report(record, message)
        elif isinstance(message, ActivationMessage):
            self._receive_activation(record, message)
        elif isinstance(message, ActivationAck):
            self._receive_activation_ack(record, message)
        elif isinstance(message, RejoinRequest):
            self._receive_rejoin_request(record, message)
        elif isinstance(message, RejoinConfirm):
            self._receive_rejoin_confirm(record, message)
        elif isinstance(message, ChannelClosure):
            self._receive_closure(record, message)

    # -- failure reports ------------------------------------------------
    def _receive_failure_report(
        self, record: LocalChannelRecord, report: FailureReport
    ) -> None:
        if (
            record.state is LocalChannelState.UNHEALTHY
            and report.direction in record.reported
        ):
            return  # duplicate: already seen/forwarded this episode
        if record.state in (LocalChannelState.PRIMARY, LocalChannelState.BACKUP):
            record.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
            self._start_rejoin_timer(record)
        if record.state is LocalChannelState.NON_EXISTENT:
            return  # already torn down; nothing to do or forward
        record.reported.add(report.direction)
        next_hop = self._next_hop(record, report.direction)
        if next_hop is None:
            self._end_node_learns_failure(record, report)
        else:
            self._c_reports.inc()
            if self._spans.enabled:
                self._span_point(
                    "report-hop", record.connection_id,
                    channel=record.channel_id,
                    direction=report.direction.value, via=str(next_hop),
                )
            self._send(next_hop, report)

    def _end_node_learns_failure(
        self, record: LocalChannelRecord, report: FailureReport
    ) -> None:
        view = self.views.get(record.connection_id)
        if view is None:  # pragma: no cover - every endpoint has a view
            return
        guarded = not self._config.debug_unguarded_switchover
        if guarded and record.channel_id in view.unhealthy:
            # Duplicate report for a channel this end-node already knows
            # is dead (e.g. a component report racing a mux report, or an
            # exhaustion declaration racing the real failure report) —
            # recovery already ran for it; re-running would double-attempt.
            # But if this end learned of the death *implicitly* (by
            # adopting the far end's activation), this report is the first
            # confirmed sighting — make sure the source is probing for a
            # repair (both calls are idempotent).
            self._c_so_duplicates.inc()
            if (
                view.role == "source"
                and record.state is LocalChannelState.UNHEALTHY
            ):
                self.start_rejoin_probe(record.channel_id)
                self._start_probe_timer(record.channel_id)
            return
        view.unhealthy.add(record.channel_id)
        self._trace(
            "informed",
            f"end-node learned channel {record.channel_id} of connection "
            f"{record.connection_id} is unhealthy",
        )
        self.runtime.metrics.note_endpoint_informed(
            record.connection_id, record.channel_id, self.runtime.engine.now
        )
        if self._spans.enabled:
            self._span_point(
                "informed", record.connection_id,
                channel=record.channel_id, role=view.role,
            )
        if view.role == "source":
            # Soft-state repair attempt (Section 4.4): probe the failed
            # channel's path now and periodically while it stays
            # unhealthy, so a repair anywhere inside the rejoin window is
            # caught even if earlier probes died at the break.
            self.start_rejoin_probe(record.channel_id)
            self._start_probe_timer(record.channel_id)
        if record.channel_id != view.current_channel:
            return  # a standby backup failed; health table updated, done
        if guarded:
            # The channel carrying data died: a new recovery round starts.
            # Any handshake still in flight is for a dead channel — drop it.
            view.episode += 1
            self._c_so_episodes.inc()
            self._cancel_pending(view.connection_id)
        if not self._initiates_activation(view):
            return
        self._initiate_recovery(view)

    def _initiates_activation(self, view: EndpointView) -> bool:
        scheme = self._config.scheme
        if scheme is SwitchingScheme.SCHEME_1:
            return view.role == "destination"
        if scheme is SwitchingScheme.SCHEME_2:
            return view.role == "source"
        return True

    # -- recovery / activation -------------------------------------------
    def _initiate_recovery(self, view: EndpointView) -> None:
        view.recovering = True
        backup = view.next_backup()
        if backup is None:
            view.recovering = False
            self.runtime.metrics.note_unrecoverable(
                view.connection_id, self.runtime.engine.now, self.node
            )
            if self._spans.enabled:
                self._span_point("unrecoverable", view.connection_id,
                                 role=view.role)
                self.runtime.end_episode(
                    view.connection_id, self.runtime.engine.now,
                    outcome="unrecoverable",
                )
            if view.role == "source":
                # Section 4.4: all channels lost — fall back to building a
                # new primary from scratch (if the runtime allows it).
                self.runtime.request_reestablishment(view.connection_id)
            return
        delay = backup.mux_degree * self._config.activation_delay_per_degree
        if delay > 0:
            self.runtime.engine.schedule(
                delay, self._send_activation, view, backup
            )
        else:
            self._send_activation(view, backup)

    def _send_activation(self, view: EndpointView, backup: BackupInfo) -> None:
        if not self._alive():
            return
        if backup.channel_id in view.unhealthy:
            # Learned of its death while waiting; pick another.
            self._initiate_recovery(view)
            return
        if backup.channel_id in view.attempted:
            return
        guarded = not self._config.debug_unguarded_switchover
        view.attempted.add(backup.channel_id)
        view.current_channel = backup.channel_id
        view.current_serial = backup.serial
        self._trace(
            "activation",
            f"activating backup serial {backup.serial} of connection "
            f"{view.connection_id}",
        )
        if self._spans.enabled:
            self._span_point(
                "activate", view.connection_id,
                serial=backup.serial, role=view.role,
            )
        record = self.records[backup.channel_id]
        direction = (
            Direction.TO_DESTINATION if view.role == "source"
            else Direction.TO_SOURCE
        )
        if view.role == "source":
            self.runtime.metrics.note_activation_sent(
                view.connection_id, backup.serial, self.runtime.engine.now
            )
        if record.state is not LocalChannelState.BACKUP:
            # Already promoted by the other end's activation sweeping the
            # whole path, or already failed; nothing to send.
            return
        record.transition(LocalChannelState.PRIMARY, ChannelEvent.ACTIVATE)
        if guarded:
            # Idempotence: at most one primary per connection at this
            # node — the endpoint's own activation supersedes any other.
            self._demote_stale_primaries(record, all_serials=True)
        # The endpoint draws its own outgoing link (the source end);
        # the destination end owns no forward link on the channel.
        if view.role == "source":
            if not self._draw_or_mux_fail(record):
                return
        next_hop = self._next_hop(record, direction)
        if next_hop is not None:
            self._send(
                next_hop,
                ActivationMessage(
                    channel_id=backup.channel_id,
                    direction=direction,
                    connection_id=view.connection_id,
                    serial=backup.serial,
                    episode=view.episode,
                ),
            )
            if guarded:
                self._arm_pending(view, backup)

    def _receive_activation(
        self, record: LocalChannelRecord, message: ActivationMessage
    ) -> None:
        if self._config.debug_unguarded_switchover:
            self._receive_activation_unguarded(record, message)
            return
        next_hop = self._next_hop(record, message.direction)
        if next_hop is None:
            self._activation_reaches_endpoint(record, message)
            return
        # Intermediate hop of the activation sweep.
        if record.state is LocalChannelState.BACKUP:
            record.transition(LocalChannelState.PRIMARY, ChannelEvent.ACTIVATE)
            self._demote_stale_primaries(record)
            if not self._draw_or_mux_fail(record):
                return
            self._send(next_hop, message)
        elif record.state is LocalChannelState.PRIMARY:
            # A crossing or duplicate sweep of an already-active channel
            # (scheme 3 activates from both ends): nothing to promote or
            # draw, but the message must still reach the far end-node so
            # its handshake completes instead of timing out.
            self._send(next_hop, message)
        # U / N: the activation dies here (Fig. 4); the initiator's
        # retry/backoff layer deals with the silence.

    def _receive_activation_unguarded(
        self, record: LocalChannelRecord, message: ActivationMessage
    ) -> None:
        """The pre-hardening switchover path (``debug_unguarded_switchover``):
        no episode/serial staleness guard, no demotion, no acks — and a
        crossing sweep dies at the first already-primary record."""
        if record.state is LocalChannelState.UNHEALTHY:
            return  # Fig. 4: activation in U is ignored
        if record.state is LocalChannelState.PRIMARY:
            return  # already activated from the other end; discard
        if record.state is LocalChannelState.NON_EXISTENT:
            return
        record.transition(LocalChannelState.PRIMARY, ChannelEvent.ACTIVATE)
        if record.is_source:
            # Scheme 1/3: the destination-initiated activation reached the
            # source; the source can now resume data transfer.
            view = self.views.get(record.connection_id)
            if view is not None:
                view.current_channel = record.channel_id
                view.attempted.add(record.channel_id)
            self.runtime.metrics.note_source_resumed(
                record.connection_id, record.serial, self.runtime.engine.now
            )
            if self._spans.enabled:
                self._span_point("resumed", record.connection_id,
                                 serial=record.serial)
        if not record.is_destination:
            if not self._draw_or_mux_fail(record):
                return
        next_hop = self._next_hop(record, message.direction)
        if next_hop is not None:
            self._send(next_hop, message)

    def _activation_reaches_endpoint(
        self, record: LocalChannelRecord, message: ActivationMessage
    ) -> None:
        """The activation arrived at its target end-node: accept, adopt, or
        reject it by the (episode, serial) order, and acknowledge every
        accepted (or repeated) activation end-to-end."""
        view = self.views.get(record.connection_id)
        if view is None:  # pragma: no cover - every endpoint has a view
            return
        if message.episode < view.episode or (
            message.episode == view.episode
            and message.serial < view.current_serial
        ):
            # A leftover from an earlier recovery round, or a lower serial
            # than what this end already carries: deterministically stale.
            self._c_so_stale.inc()
            self._trace(
                "switchover",
                f"stale activation (serial {message.serial}, episode "
                f"{message.episode}) for connection {record.connection_id} "
                f"dropped",
            )
            return
        changed = (
            record.state is LocalChannelState.BACKUP
            or view.current_channel != record.channel_id
        )
        advanced = (
            message.episode > view.episode
            or message.serial > view.current_serial
        )
        if advanced:
            self._adopt_activation(view, message)
        if record.state is LocalChannelState.BACKUP:
            record.transition(LocalChannelState.PRIMARY, ChannelEvent.ACTIVATE)
        if record.state is not LocalChannelState.PRIMARY:
            # Locally dead (U) or torn down (N): cannot carry data.  If we
            # just adopted the far end's round, we hold *no* valid serial
            # in it — clear the serial floor so the far end's next attempt
            # (possibly a lower, healed serial) is not rejected as stale.
            if advanced:
                view.current_serial = -1
            return
        self._demote_stale_primaries(record, all_serials=True)
        view.current_channel = record.channel_id
        view.current_serial = record.serial
        view.attempted.add(record.channel_id)
        if not record.is_destination and changed:
            if not self._draw_or_mux_fail(record):
                return  # mux failure mid-switchover: reports + fallback ran
        if changed:
            if record.is_source:
                self.runtime.metrics.note_source_resumed(
                    record.connection_id, record.serial,
                    self.runtime.engine.now,
                )
                if self._spans.enabled:
                    self._span_point("resumed", record.connection_id,
                                     serial=record.serial)
        pending = self._pending.get(record.connection_id)
        if pending is not None and pending.backup.channel_id == record.channel_id:
            # Counterpart activation (scheme 3): the far end is provably on
            # this same channel — as good as an ack.
            self._complete_pending(view, pending, how="counterpart")
        view.recovering = False
        ack_direction = message.direction.reverse()
        ack_hop = self._next_hop(record, ack_direction)
        if ack_hop is not None:
            # Idempotent re-ack: repeats of an accepted activation are
            # re-acknowledged so a lost ack only costs one retry.
            self._send(
                ack_hop,
                ActivationAck(
                    channel_id=record.channel_id,
                    direction=ack_direction,
                    connection_id=record.connection_id,
                    serial=message.serial,
                    episode=message.episode,
                ),
            )

    def _adopt_activation(
        self, view: EndpointView, message: ActivationMessage
    ) -> None:
        """The far end is ahead of us (higher episode, or higher serial in
        the same round): adopt its position.  The serial rule means it only
        reached ``message.serial`` after every lower serial failed, so mark
        those dead here too."""
        if message.episode > view.episode:
            view.episode = message.episode
            self._c_so_episodes.inc()
        if view.current_serial < message.serial:
            view.unhealthy.add(view.current_channel)
        for info in view.backups:
            if info.serial < message.serial:
                view.unhealthy.add(info.channel_id)
                view.attempted.add(info.channel_id)
        # Whatever handshake we had in flight is superseded.
        self._cancel_pending(view.connection_id)
        self._trace(
            "switchover",
            f"adopted activation serial {message.serial} (episode "
            f"{message.episode}) from the far end-node for connection "
            f"{view.connection_id}",
        )

    def _demote_stale_primaries(
        self, record: LocalChannelRecord, all_serials: bool = False
    ) -> None:
        """Exactly-one-primary idempotence: when a channel is promoted at
        this node, any same-connection primary with a *lower* serial is a
        leftover whose failure report this node never saw — demote it to U
        (its rejoin timer then heals or reclaims it).

        End-nodes pass ``all_serials=True``: an endpoint's activation is
        authoritative for its episode (the episode guard already rejected
        stale rounds), and a reconciliation round may deliberately restore
        a healed *lower* serial over a dead higher one.  Intermediate
        sweeps keep the lower-only rule — an old sweep still in flight
        must never demote a newer primary it crosses."""
        for other in self.records.values():
            if (
                other.connection_id != record.connection_id
                or other.channel_id == record.channel_id
                or (not all_serials and other.serial >= record.serial)
                or other.state is not LocalChannelState.PRIMARY
            ):
                continue
            other.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
            self._start_rejoin_timer(other)
            self._c_so_demotions.inc()
            self._trace(
                "switchover",
                f"demoted stale primary channel {other.channel_id} "
                f"(serial {other.serial}) superseded by serial "
                f"{record.serial}",
            )
            if self._spans.enabled:
                self._span_point(
                    "switchover-demote", record.connection_id,
                    channel=other.channel_id, serial=other.serial,
                    superseded_by=record.serial,
                )
            view = self.views.get(record.connection_id)
            if view is not None:
                view.unhealthy.add(other.channel_id)

    # -- switchover handshake retry/backoff --------------------------------
    def _arm_pending(self, view: EndpointView, backup: BackupInfo) -> None:
        """Start the ack timer for an activation this end-node just sent."""
        self._cancel_pending(view.connection_id)
        timer = Timeout(
            self.runtime.engine,
            self._config.switchover_ack_timeout,
            lambda cid=view.connection_id: self._activation_retry(cid),
        )
        self._pending[view.connection_id] = _PendingActivation(
            backup=backup, episode=view.episode, attempts=0, timer=timer,
        )
        timer.start()

    def _cancel_pending(self, connection_id: int) -> None:
        pending = self._pending.pop(connection_id, None)
        if pending is not None:
            pending.timer.cancel()

    def _complete_pending(
        self, view: EndpointView, pending: _PendingActivation, how: str
    ) -> None:
        pending.timer.cancel()
        self._pending.pop(view.connection_id, None)
        view.recovering = False
        self._c_so_completed.inc()
        if self._spans.enabled:
            self._span_point(
                "activation-ack", view.connection_id,
                serial=pending.backup.serial, episode=pending.episode,
                how=how, attempts=pending.attempts,
            )

    def _activation_retry(self, connection_id: int) -> None:
        """Ack timer fired: resend the activation with backoff, or give the
        backup up after ``switchover_retry_limit`` resends."""
        if not self._alive():
            return
        pending = self._pending.get(connection_id)
        view = self.views.get(connection_id)
        if pending is None or view is None:
            return
        backup = pending.backup
        record = self.records.get(backup.channel_id)
        if (
            view.current_channel != backup.channel_id
            or view.episode != pending.episode
            or backup.channel_id in view.unhealthy
            or record is None
            or record.state is not LocalChannelState.PRIMARY
        ):
            # The world moved on (re-failure, adoption, closure) while the
            # timer was in flight; the handshake is moot.
            self._cancel_pending(connection_id)
            return
        if pending.attempts >= self._config.switchover_retry_limit:
            self._exhaust_pending(view, pending)
            return
        pending.attempts += 1
        self._c_so_retries.inc()
        self._trace(
            "switchover",
            f"activation of serial {backup.serial} unacked; resend "
            f"{pending.attempts}/{self._config.switchover_retry_limit}",
        )
        if self._spans.enabled:
            self._span_point(
                "activation-retry", connection_id,
                serial=backup.serial, episode=pending.episode,
                attempt=pending.attempts,
            )
        direction = (
            Direction.TO_DESTINATION if view.role == "source"
            else Direction.TO_SOURCE
        )
        next_hop = self._next_hop(record, direction)
        if next_hop is not None:
            self._send(
                next_hop,
                ActivationMessage(
                    channel_id=backup.channel_id,
                    direction=direction,
                    connection_id=connection_id,
                    serial=backup.serial,
                    episode=pending.episode,
                ),
            )
        pending.timer.duration = self._config.switchover_ack_timeout * (
            self._config.switchover_backoff ** pending.attempts
        )
        pending.timer.start()

    def _exhaust_pending(
        self, view: EndpointView, pending: _PendingActivation
    ) -> None:
        """Graceful degradation: the handshake never completed — declare
        the backup dead and fall through to the next backup, or to
        source-initiated re-establishment, instead of wedging."""
        self._cancel_pending(view.connection_id)
        backup = pending.backup
        self._c_so_exhausted.inc()
        self._trace(
            "switchover",
            f"activation of serial {backup.serial} exhausted its retries; "
            f"declaring the backup dead and falling back",
        )
        if self._spans.enabled:
            self._span_point(
                "switchover-exhausted", view.connection_id,
                serial=backup.serial, episode=pending.episode,
                attempts=pending.attempts,
            )
        record = self.records.get(backup.channel_id)
        if record is not None and record.state is LocalChannelState.PRIMARY:
            record.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
            self._start_rejoin_timer(record)
            # Tell the rest of the path (and the far end, if reachable)
            # the attempt is abandoned, so promoted hops release.
            away = (
                Direction.TO_DESTINATION if view.role == "source"
                else Direction.TO_SOURCE
            )
            self._emit_report(record, away, None)
        view.unhealthy.add(backup.channel_id)
        view.episode += 1
        self._c_so_episodes.inc()
        self._c_so_fallbacks.inc()
        self._initiate_recovery(view)

    def _receive_activation_ack(
        self, record: LocalChannelRecord, ack: ActivationAck
    ) -> None:
        next_hop = self._next_hop(record, ack.direction)
        if next_hop is not None:
            # Acks ride the channel's path hop-by-hop regardless of the
            # local record state; a dead hop just loses the ack and the
            # initiator re-sends.
            self._send(next_hop, ack)
            return
        view = self.views.get(record.connection_id)
        if view is None:
            return
        pending = self._pending.get(record.connection_id)
        if (
            pending is not None
            and pending.backup.serial == ack.serial
            and pending.episode == ack.episode
        ):
            self._c_so_acks.inc()
            self._complete_pending(view, pending, how="ack")
        # No pending (the counterpart sweep already completed the
        # handshake) or a mismatched round: nothing to do — acks are
        # purely confirmations and never create state.

    def _draw_or_mux_fail(self, record: LocalChannelRecord) -> bool:
        """Draw this node's outgoing backup-path link from the spare pool;
        on exhaustion, declare a multiplexing failure (Section 3.3)."""
        downstream = record.downstream
        link = LinkId(self.node, downstream)
        drawn, preempted = self.runtime.try_draw(
            link, record.channel_id, record.mux_degree
        )
        for victim_id in preempted:
            self._preempt(victim_id)
        if drawn:
            record.mux_failed_link = None
            return True
        record.mux_failed_link = link
        # Spare exhausted: the backup cannot function (mux failure).  The
        # channel enters U and both end-nodes are told, exactly like a
        # component failure (Section 4.1).
        record.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
        self._start_rejoin_timer(record)
        self._trace(
            "mux-failure",
            f"spare exhausted on {link} for channel {record.channel_id}",
        )
        self.runtime.metrics.note_mux_failure(
            record.connection_id, record.channel_id, link, self.runtime.engine.now
        )
        if self._spans.enabled:
            self._span_point(
                "mux-failure", record.connection_id,
                channel=record.channel_id, link=str(link),
            )
        self._emit_report(record, Direction.TO_SOURCE, link, mux_failure=True)
        self._emit_report(record, Direction.TO_DESTINATION, link, mux_failure=True)
        return False

    def _preempt(self, channel_id: int) -> None:
        """A lower-priority activated backup lost its spare to a
        higher-priority activation; handle exactly like a failure
        (Section 4.3: "preempted channels are handled as if they were
        disabled by component failures")."""
        record = self.records.get(channel_id)
        if record is None:
            return
        if record.state is LocalChannelState.PRIMARY:
            record.transition(LocalChannelState.UNHEALTHY, ChannelEvent.FAIL)
            self._start_rejoin_timer(record)
        self._trace(
            "preemption",
            f"channel {channel_id} of connection {record.connection_id} "
            f"preempted by a higher-priority activation",
        )
        self.runtime.metrics.note_preemption(
            record.connection_id, channel_id, self.runtime.engine.now
        )
        self._emit_report(record, Direction.TO_SOURCE, None)
        self._emit_report(record, Direction.TO_DESTINATION, None)

    # -- teardown ----------------------------------------------------------
    def initiate_closure(self, channel_id: int) -> None:
        """Client-initiated teardown: release the channel here and send a
        channel-closure message down its path (Section 4.4: "a
        'channel-closure message' is usually sent over the channel's
        path, so that resources for the channel may be released")."""
        record = self.records.get(channel_id)
        if record is None or not record.is_source:
            raise ValueError(
                f"node {self.node!r} is not the source of channel {channel_id}"
            )
        if record.state is LocalChannelState.NON_EXISTENT:
            return
        record.transition(LocalChannelState.NON_EXISTENT, ChannelEvent.CLOSE)
        self._cancel_rejoin_timer(channel_id)
        pending = self._pending.get(record.connection_id)
        if pending is not None and pending.backup.channel_id == channel_id:
            self._cancel_pending(record.connection_id)
        self.runtime.release_channel_at_node(channel_id, self.node)
        self._trace("closure", f"tearing down channel {channel_id}")
        if record.downstream is not None:
            self._send(
                record.downstream,
                ChannelClosure(channel_id=channel_id,
                               direction=Direction.TO_DESTINATION),
            )

    # -- rejoin (Section 4.4) ---------------------------------------------
    def _start_probe_timer(self, channel_id: int) -> None:
        timer = self._probe_timers.get(channel_id)
        if timer is None:
            timer = PeriodicTimer(
                self.runtime.engine,
                self._config.rejoin_probe_interval,
                lambda cid=channel_id: self._probe_tick(cid),
            )
            self._probe_timers[channel_id] = timer
        if not timer.running:
            timer.start()

    def _probe_tick(self, channel_id: int) -> None:
        record = self.records.get(channel_id)
        if (
            not self._alive()
            or record is None
            or record.state is not LocalChannelState.UNHEALTHY
        ):
            timer = self._probe_timers.get(channel_id)
            if timer is not None:
                timer.stop()
            return
        self.start_rejoin_probe(channel_id)

    def start_rejoin_probe(self, channel_id: int) -> None:
        """Source-side entry point: probe whether a failed channel's path
        has healed (called by the runtime or by tests)."""
        record = self.records.get(channel_id)
        if record is None or not record.is_source:
            raise ValueError(
                f"node {self.node!r} is not the source of channel {channel_id}"
            )
        next_hop = record.downstream
        if next_hop is not None:
            self._send(next_hop, RejoinRequest(channel_id=channel_id))

    def _receive_rejoin_request(
        self, record: LocalChannelRecord, message: RejoinRequest
    ) -> None:
        if record.state is LocalChannelState.NON_EXISTENT:
            return  # torn down; the request dies here
        if record.mux_failed_link is not None:
            # Healing a multiplexing failure needs the spare back
            # (Section 4.4); if the pool is still dry, drop the request.
            drawn, _ = self.runtime.try_draw(
                record.mux_failed_link, record.channel_id, record.mux_degree,
                allow_preemption=False,
            )
            if not drawn:
                return
            # The channel is only rejoining as a *standby*; give the unit
            # straight back so the pool sizing reflects a backup again.
            self.runtime.release_draw(record.mux_failed_link, record.channel_id)
            record.mux_failed_link = None
        if record.is_destination:
            if record.state is LocalChannelState.UNHEALTHY:
                record.transition(LocalChannelState.BACKUP, ChannelEvent.REJOIN)
                self._cancel_rejoin_timer(record.channel_id)
                self._refresh_view_after_rejoin(record)
                self.runtime.metrics.note_rejoined(
                    record.connection_id, record.channel_id, self.runtime.engine.now
                )
            next_hop = record.upstream
            if next_hop is not None:
                self._send(next_hop, RejoinConfirm(channel_id=record.channel_id))
            return
        self._send(record.downstream, message)

    def _receive_rejoin_confirm(
        self, record: LocalChannelRecord, message: RejoinConfirm
    ) -> None:
        if record.state is LocalChannelState.NON_EXISTENT:
            # Rejoin timer already expired here: resources are gone, so the
            # repair must be undone along the rest of the path (Fig. 6).
            if record.downstream is not None:
                self._send(
                    record.downstream,
                    ChannelClosure(
                        channel_id=record.channel_id,
                        direction=Direction.TO_DESTINATION,
                    ),
                )
            return
        if record.state is LocalChannelState.UNHEALTHY:
            record.transition(LocalChannelState.BACKUP, ChannelEvent.REJOIN)
            self._cancel_rejoin_timer(record.channel_id)
        if record.is_source:
            self._refresh_view_after_rejoin(record)
            self._trace(
                "rejoined",
                f"channel {record.channel_id} repaired and back in service "
                f"as a backup",
            )
            self.runtime.metrics.note_rejoined(
                record.connection_id, record.channel_id, self.runtime.engine.now
            )
            if self._spans.enabled:
                self._span_point("rejoined", record.connection_id,
                                 channel=record.channel_id)
            return
        self._send(record.upstream, message)

    def _refresh_view_after_rejoin(self, record: LocalChannelRecord) -> None:
        """Update this endpoint's connection view when a channel heals: it
        is healthy again, re-attemptable, and offered as a backup even if
        it was the original primary."""
        view = self.views.get(record.connection_id)
        if view is None:
            return
        view.unhealthy.discard(record.channel_id)
        view.attempted.discard(record.channel_id)
        if all(info.channel_id != record.channel_id for info in view.backups):
            view.backups.append(
                BackupInfo(
                    channel_id=record.channel_id,
                    serial=record.serial,
                    path=record.path,
                    mux_degree=record.mux_degree,
                )
            )
        if (
            not self._config.debug_unguarded_switchover
            and view.current_channel in view.unhealthy
            and not view.recovering
            and self._initiates_activation(view)
        ):
            # Service is down at this end (every backup was exhausted in an
            # earlier round) and a channel just healed into standby:
            # restore service over it with a fresh handshake round instead
            # of staying adrift on an abandoned channel.
            view.episode += 1
            self._c_so_episodes.inc()
            self._trace(
                "switchover",
                f"channel {record.channel_id} healed while connection "
                f"{record.connection_id} was down; restoring service",
            )
            self._initiate_recovery(view)

    def _receive_closure(
        self, record: LocalChannelRecord, message: ChannelClosure
    ) -> None:
        if record.state is not LocalChannelState.NON_EXISTENT:
            record.transition(LocalChannelState.NON_EXISTENT, ChannelEvent.CLOSE)
            self._cancel_rejoin_timer(record.channel_id)
            pending = self._pending.get(record.connection_id)
            if pending is not None and pending.backup.channel_id == record.channel_id:
                self._cancel_pending(record.connection_id)
            self.runtime.release_channel_at_node(record.channel_id, self.node)
        next_hop = self._next_hop(record, message.direction)
        if next_hop is not None:
            self._send(next_hop, message)
