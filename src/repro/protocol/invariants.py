"""Protocol invariant auditing over a live :class:`ProtocolSimulation`.

The BCP correctness argument rests on a handful of properties that no
single unit test pins down globally: spare pools are conserved, every
activation draw is eventually released, RCC sequence numbers stay
monotonic and duplicate-free, no control message is delivered over a dead
link, each connection carries at most one active channel, and soft state
(unhealthy channels) expires in bounded time.  The
:class:`InvariantAuditor` attaches to a running simulation as a pure
observer — engine event hook plus per-link RCC delivery hooks — and
checks these properties continuously (cheap sweeps after every event the
chaos engine injects) and exhaustively at quiescence.

Violations are collected, never raised: a chaos campaign wants the full
list for its artifact, and the shrinker wants to re-run schedules and
compare violation signatures.  State-machine legality is the exception —
:meth:`~repro.protocol.states.LocalChannelRecord.transition` already
raises :class:`~repro.protocol.states.IllegalTransitionError` on any move
outside Fig. 4, so the chaos runner catches that exception and converts
it into a violation rather than re-deriving legality here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.components import LinkId
from repro.protocol.states import LocalChannelState, allowed_transitions

#: Bandwidth slack for conservation comparisons, matching the ledger's
#: admission tolerance.
_EPSILON = 1e-9

#: Collection cap: a badly broken run violates the same invariant after
#: every event; past this many records the rest add nothing.
MAX_VIOLATIONS = 200

#: The Fig. 4 closure the auditor audits against, spelled out
#: independently of ``repro.protocol.states``: N establishes into P or B,
#: P fails or closes, B activates/fails/closes, U rejoins/expires/closes.
#: ``attach()`` cross-checks this against the runtime's explicit
#: event-labelled ``TRANSITIONS`` table, so the two can never drift apart
#: silently.
EXPECTED_TRANSITIONS: dict[str, frozenset[str]] = {
    "N": frozenset({"P", "B"}),
    "P": frozenset({"U", "N"}),
    "B": frozenset({"P", "U", "N"}),
    "U": frozenset({"B", "N"}),
}


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One observed breach of a protocol invariant."""

    #: Simulation time at which the check failed.
    time: float
    #: Stable invariant name (``reservation-conservation``,
    #: ``rcc-monotonicity``, ``dead-link-delivery``, ``draw-leak``,
    #: ``multiple-active``, ``endpoint-disagreement``, ``stuck-soft-state``,
    #: ``illegal-transition``, ``quiescence-timeout``).
    invariant: str
    #: The component/channel/connection the breach concerns (stringified).
    subject: str
    #: Human-readable explanation with the observed values.
    detail: str

    def as_dict(self) -> dict:
        """JSON-ready representation (chaos artifacts)."""
        return {
            "time": self.time,
            "invariant": self.invariant,
            "subject": self.subject,
            "detail": self.detail,
        }


class InvariantAuditor:
    """Continuous invariant checks over one :class:`ProtocolSimulation`.

    Usage::

        auditor = InvariantAuditor(simulation)
        auditor.attach()
        ... run, injecting faults; call auditor.check_event() at will ...
        auditor.check_quiescent(drained=simulation.engine.pending == 0)
        auditor.detach()
        if auditor.violations: ...

    The auditor is strictly read-only with respect to the simulation: it
    never schedules events, never mutates daemon or RCC state, and its
    hooks tolerate being called at any point of the run.
    """

    def __init__(self, simulation) -> None:
        self.simulation = simulation
        self.violations: list[InvariantViolation] = []
        #: Spare pools as sized at establishment time — the conservation
        #: baseline.  The runtime never legitimately mutates
        #: ``_spare_pools`` (draws are tracked separately), so any drift
        #: is a double-release or phantom credit.
        self._baseline_spares: dict[LinkId, float] = {}
        #: Highest frame seq delivered per link, and every seq delivered,
        #: for the monotonicity / at-most-once checks.
        self._delivered_seqs: dict[LinkId, set[int]] = {}
        self._attached = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Snapshot the conservation baseline and install the RCC hooks."""
        if self._attached:
            return
        self._attached = True
        self._check_transition_table()
        self._baseline_spares = dict(self.simulation._spare_pools)
        for rcc in self.simulation._rcc.values():
            rcc.on_frame_delivered = self._chain(
                rcc.on_frame_delivered, self._on_frame_delivered
            )

    def detach(self) -> None:
        """Remove the RCC hooks (baseline and findings are kept)."""
        if not self._attached:
            return
        self._attached = False
        for rcc in self.simulation._rcc.values():
            rcc.on_frame_delivered = None

    @staticmethod
    def _chain(existing, added):
        if existing is None:
            return added

        def chained(rcc, frame):
            existing(rcc, frame)
            added(rcc, frame)

        return chained

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, invariant: str, subject, detail: str) -> None:
        """Append one violation (capped at :data:`MAX_VIOLATIONS`)."""
        if len(self.violations) >= MAX_VIOLATIONS:
            return
        self.violations.append(
            InvariantViolation(
                time=self.simulation.engine.now,
                invariant=invariant,
                subject=str(subject),
                detail=detail,
            )
        )

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    # ------------------------------------------------------------------
    # RCC delivery hook
    # ------------------------------------------------------------------
    def _on_frame_delivered(self, rcc, frame) -> None:
        link = rcc.link
        # No delivery over a dead link: _arrive re-checks link health on
        # arrival, so reaching this hook with the link down means the
        # runtime's health model and the transport disagree.
        if not self.simulation.link_up(link):
            self.record(
                "dead-link-delivery", link,
                f"frame seq {frame.seq} delivered while {link} is down",
            )
        # Sequence sanity: a delivered seq must have been assigned by the
        # sender (below its next_seq counter) and never delivered before
        # (the dedup in _arrive must catch retransmitted duplicates).
        if frame.seq >= rcc._next_seq:
            self.record(
                "rcc-monotonicity", link,
                f"delivered seq {frame.seq} but sender has only assigned "
                f"up to {rcc._next_seq - 1}",
            )
        delivered = self._delivered_seqs.setdefault(link, set())
        if frame.seq in delivered:
            self.record(
                "rcc-monotonicity", link,
                f"frame seq {frame.seq} delivered to the daemon twice",
            )
        delivered.add(frame.seq)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def check_event(self) -> None:
        """Cheap sweep, safe after every injected fault/repair."""
        self._check_conservation()
        ledger = self.simulation.network.ledger
        for problem in ledger.audit():
            self.record("reservation-conservation", "ledger", problem)

    def check_quiescent(self, drained: bool = True) -> None:
        """Full sweep once the run has settled.

        ``drained`` says the event heap truly emptied; the transient-
        sensitive checks (draw leaks, at-most-one-active, stuck soft
        state) are only sound then — activations legitimately race
        failure reports mid-flight.
        """
        self.check_event()
        if not drained:
            return
        self._check_draw_leaks()
        self._check_single_active()
        self._check_soft_state_expired()
        self._check_no_pending_handshakes()

    # -- state-machine table consistency ----------------------------------
    def _check_transition_table(self) -> None:
        """The runtime's explicit (state, event) -> state table must close
        to exactly the Fig. 4 closure the auditor expects; a drift means a
        transition was added or dropped without updating the audit."""
        actual = {
            state.value: frozenset(t.value for t in targets)
            for state, targets in allowed_transitions().items()
        }
        if actual != EXPECTED_TRANSITIONS:
            self.record(
                "transition-table", "states.TRANSITIONS",
                f"runtime closure {actual!r} != audited Fig. 4 closure "
                f"{EXPECTED_TRANSITIONS!r}",
            )

    # -- reservation conservation ----------------------------------------
    def _check_conservation(self) -> None:
        simulation = self.simulation
        pools = simulation._spare_pools
        for link, baseline in self._baseline_spares.items():
            current = pools.get(link, 0.0)
            if abs(current - baseline) > _EPSILON:
                self.record(
                    "reservation-conservation", link,
                    f"spare pool drifted from {baseline:g} to {current:g} "
                    f"(pools are sized once at establishment; draws are "
                    f"tracked separately)",
                )
        for link in pools:
            if link not in self._baseline_spares:
                self.record(
                    "reservation-conservation", link,
                    f"spare pool appeared for {link} after establishment",
                )
        for link, draws in simulation._draws.items():
            drawn = sum(draws.values())
            if drawn < -_EPSILON:
                self.record(
                    "reservation-conservation", link,
                    f"negative total draw {drawn:g}",
                )
            pool = pools.get(link, 0.0)
            if drawn > pool + _EPSILON:
                self.record(
                    "reservation-conservation", link,
                    f"draws {drawn:g} exceed the spare pool {pool:g}",
                )

    # -- draw leaks -------------------------------------------------------
    def _check_draw_leaks(self) -> None:
        """Every outstanding draw must belong to a channel that is still
        established at the draw's owning node (the link's source).  A draw
        surviving the channel's teardown there is leaked bandwidth — the
        exact failure mode soft-state expiry (Section 4.4) exists to
        prevent."""
        simulation = self.simulation
        for link, draws in simulation._draws.items():
            owner = link.src
            if not simulation.node_up(owner):
                continue  # a dead node's books are settled on repair/rejoin
            daemon = simulation.daemons.get(owner)
            for channel_id, amount in draws.items():
                record = None if daemon is None else daemon.records.get(
                    channel_id
                )
                if record is None or record.state is (
                    LocalChannelState.NON_EXISTENT
                ):
                    self.record(
                        "draw-leak", link,
                        f"channel {channel_id} still draws {amount:g} on "
                        f"{link} but is torn down at node {owner!r}",
                    )

    # -- at most one active channel per connection ------------------------
    def _check_single_active(self) -> None:
        """At quiescence each alive end-node must consider exactly one
        channel current, and must not host two PRIMARY records for the
        same connection (a transient that is legal mid-activation but a
        switching bug if it persists)."""
        simulation = self.simulation
        for node, daemon in simulation.daemons.items():
            if not simulation.node_up(node):
                continue
            primaries: dict[int, list[int]] = {}
            for channel_id, record in daemon.records.items():
                if not record.is_endpoint:
                    continue
                if record.state is LocalChannelState.PRIMARY:
                    primaries.setdefault(record.connection_id, []).append(
                        channel_id
                    )
            for connection_id, channel_ids in primaries.items():
                if len(channel_ids) > 1:
                    self.record(
                        "multiple-active", f"connection {connection_id}",
                        f"node {node!r} holds {len(channel_ids)} PRIMARY "
                        f"channels {sorted(channel_ids)} for one connection",
                    )
        self._check_endpoint_agreement()

    def _check_endpoint_agreement(self) -> None:
        """Both alive end-nodes of a connection must agree on the current
        channel once the network settles — the serial-number switching
        rule's whole purpose (Section 4.2)."""
        simulation = self.simulation
        for connection in simulation.network.connections():
            src, dst = connection.source, connection.destination
            if not (simulation.node_up(src) and simulation.node_up(dst)):
                continue
            view_src = simulation.daemons[src].views.get(
                connection.connection_id
            )
            view_dst = simulation.daemons[dst].views.get(
                connection.connection_id
            )
            if view_src is None or view_dst is None:
                continue
            # Skip connections that never finished recovering (out of
            # backups, or recovery still marked in progress): there is no
            # agreed current channel to check.
            if view_src.current_channel in view_src.unhealthy:
                continue
            if view_dst.current_channel in view_dst.unhealthy:
                continue
            if view_src.current_channel != view_dst.current_channel:
                self.record(
                    "endpoint-disagreement",
                    f"connection {connection.connection_id}",
                    f"source {src!r} carries channel "
                    f"{view_src.current_channel} but destination {dst!r} "
                    f"carries {view_dst.current_channel}",
                )

    # -- bounded soft state -----------------------------------------------
    def _check_soft_state_expired(self) -> None:
        """With the event heap drained, no alive node may still hold an
        UNHEALTHY record: its rejoin timer either healed it (B) or expired
        it (N).  An UNHEALTHY survivor means a timer was lost."""
        simulation = self.simulation
        for node, daemon in simulation.daemons.items():
            if not simulation.node_up(node):
                continue
            for channel_id, record in daemon.records.items():
                if record.state is LocalChannelState.UNHEALTHY:
                    self.record(
                        "stuck-soft-state", f"channel {channel_id}",
                        f"still UNHEALTHY at node {node!r} after the run "
                        f"drained; its rejoin timer never resolved it",
                    )

    # -- no wedged switchover handshakes ----------------------------------
    def _check_no_pending_handshakes(self) -> None:
        """With the event heap drained, no alive end-node may still carry
        an in-flight switchover handshake: its retry timer either got an
        ack/counterpart or exhausted into the fallback path.  A survivor
        means the retry/backoff layer lost a timer."""
        simulation = self.simulation
        for node, daemon in simulation.daemons.items():
            if not simulation.node_up(node):
                continue
            for connection_id, pending in getattr(
                daemon, "_pending", {}
            ).items():
                self.record(
                    "stuck-soft-state", f"connection {connection_id}",
                    f"switchover handshake for backup serial "
                    f"{pending.backup.serial} still pending at node "
                    f"{node!r} after the run drained",
                )
