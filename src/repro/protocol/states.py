"""Per-node channel state (the state machine of Fig. 4).

At each node, a channel is in one of four states: non-existent (N),
healthy primary (P), healthy backup (B), or unhealthy (U).  The allowed
transitions are exactly those of the paper's Fig. 4; anything else raises,
which turns protocol bugs into loud test failures instead of silent state
corruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.network.components import NodeId
from repro.routing.paths import Path


class LocalChannelState(enum.Enum):
    """Fig. 4 channel states at a node."""

    NON_EXISTENT = "N"
    PRIMARY = "P"
    BACKUP = "B"
    UNHEALTHY = "U"


class ChannelEvent(enum.Enum):
    """Protocol events that drive the Fig. 4 state machine.

    Each event names the *cause* of a transition, so the daemon's call
    sites document themselves and the invariant auditor can verify the
    event-agnostic closure it audits against is exactly the one the
    runtime enforces.
    """

    ESTABLISH_PRIMARY = "establish_primary"
    ESTABLISH_BACKUP = "establish_backup"
    ACTIVATE = "activate"
    FAIL = "fail"
    REJOIN = "rejoin"
    EXPIRE = "expire"
    CLOSE = "close"


#: The explicit Fig. 4 transition table: (state, event) -> next state.
#: This is the single source of truth; the event-agnostic closure
#: ``_ALLOWED`` is derived from it below.
TRANSITIONS: dict[
    tuple[LocalChannelState, ChannelEvent], LocalChannelState
] = {
    (LocalChannelState.NON_EXISTENT, ChannelEvent.ESTABLISH_PRIMARY):
        LocalChannelState.PRIMARY,
    (LocalChannelState.NON_EXISTENT, ChannelEvent.ESTABLISH_BACKUP):
        LocalChannelState.BACKUP,
    (LocalChannelState.PRIMARY, ChannelEvent.FAIL):
        LocalChannelState.UNHEALTHY,
    (LocalChannelState.PRIMARY, ChannelEvent.CLOSE):
        LocalChannelState.NON_EXISTENT,
    (LocalChannelState.BACKUP, ChannelEvent.ACTIVATE):
        LocalChannelState.PRIMARY,
    (LocalChannelState.BACKUP, ChannelEvent.FAIL):
        LocalChannelState.UNHEALTHY,
    (LocalChannelState.BACKUP, ChannelEvent.CLOSE):
        LocalChannelState.NON_EXISTENT,
    (LocalChannelState.UNHEALTHY, ChannelEvent.REJOIN):
        LocalChannelState.BACKUP,
    (LocalChannelState.UNHEALTHY, ChannelEvent.EXPIRE):
        LocalChannelState.NON_EXISTENT,
    (LocalChannelState.UNHEALTHY, ChannelEvent.CLOSE):
        LocalChannelState.NON_EXISTENT,
}


def _derive_allowed() -> dict[LocalChannelState, frozenset[LocalChannelState]]:
    closure: dict[LocalChannelState, set[LocalChannelState]] = {
        state: set() for state in LocalChannelState
    }
    for (state, _event), target in TRANSITIONS.items():
        closure[state].add(target)
    return {state: frozenset(targets) for state, targets in closure.items()}


#: Legal transitions of the Fig. 4 state machine (event-agnostic closure,
#: derived from ``TRANSITIONS``).
_ALLOWED: dict[LocalChannelState, frozenset[LocalChannelState]] = (
    _derive_allowed()
)


def allowed_transitions() -> dict[LocalChannelState, frozenset[LocalChannelState]]:
    """The event-agnostic closure of ``TRANSITIONS`` (for auditors)."""
    return dict(_ALLOWED)


class IllegalTransitionError(Exception):
    """A transition outside the Fig. 4 state machine was attempted."""

    def __init__(self, channel_id: int, node: NodeId,
                 current: LocalChannelState, target: LocalChannelState) -> None:
        super().__init__(
            f"channel {channel_id} at node {node!r}: "
            f"{current.value} -> {target.value} is not a Fig. 4 transition"
        )


@dataclass
class LocalChannelRecord:
    """Everything a BCP daemon knows about one channel through its node.

    The paper (Section 3.4): "the BCP daemon at each node has to maintain
    the information about each backup running through the node, including
    the path of its primary, the multiplexing threshold, ... and the
    current channel state".
    """

    channel_id: int
    connection_id: int
    serial: int
    path: Path
    node: NodeId
    mux_degree: int
    state: LocalChannelState = LocalChannelState.NON_EXISTENT
    #: Reporting dedup: directions in which this node already forwarded a
    #: failure report for the current failure episode.
    reported: set = field(default_factory=set)
    #: Set when the channel entered U because this node could not draw
    #: spare for it (a multiplexing failure); a rejoin through this node
    #: must re-acquire spare on that link before the channel can heal.
    mux_failed_link: object = None

    def __post_init__(self) -> None:
        if self.node not in self.path.nodes:
            raise ValueError(
                f"node {self.node!r} is not on the path of channel "
                f"{self.channel_id}"
            )
        index = self.path.nodes.index(self.node)
        self._index = index

    # ------------------------------------------------------------------
    # topology of the record's position on the path
    # ------------------------------------------------------------------
    @property
    def is_source(self) -> bool:
        return self._index == 0

    @property
    def is_destination(self) -> bool:
        return self._index == len(self.path.nodes) - 1

    @property
    def is_endpoint(self) -> bool:
        return self.is_source or self.is_destination

    @property
    def upstream(self) -> "NodeId | None":
        """Previous node along the channel direction, if any."""
        if self.is_source:
            return None
        return self.path.nodes[self._index - 1]

    @property
    def downstream(self) -> "NodeId | None":
        """Next node along the channel direction, if any."""
        if self.is_destination:
            return None
        return self.path.nodes[self._index + 1]

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def transition(self, target: LocalChannelState,
                   event: "ChannelEvent | None" = None) -> None:
        """Move to ``target``; raises :class:`IllegalTransitionError` for
        transitions outside Fig. 4.

        When ``event`` is given, the move is additionally validated
        against the explicit ``TRANSITIONS`` table: the event must be
        defined for the current state and lead exactly to ``target``.
        """
        if event is not None:
            expected = TRANSITIONS.get((self.state, event))
            if expected is not target:
                raise IllegalTransitionError(
                    self.channel_id, self.node, self.state, target
                )
        elif target not in _ALLOWED[self.state]:
            raise IllegalTransitionError(
                self.channel_id, self.node, self.state, target
            )
        self.state = target
        if target is not LocalChannelState.UNHEALTHY:
            self.reported.clear()

    def can_transition(self, target: LocalChannelState) -> bool:
        """Whether Fig. 4 permits moving to ``target`` from here."""
        return target in _ALLOWED[self.state]
