"""Distributed D-connection establishment (Section 3.4, message level).

The centralised :class:`~repro.core.establishment.EstablishmentEngine`
commits all resources atomically; the paper's actual procedure is a
message exchange — "a pair of channel-establishment messages: (i) the
'resource reservation message' from source to destination and (ii) the
'resource relaxation message' from destination to source" — with
hop-by-hop admission and *tentative, unmultiplexed* spare reservation on
the forward pass ("BCP reserves spare resources for the backup without
multiplexing, while calculating the |Ψ| of each link"), ν selection at
the destination, and multiplexed relaxation on the way back.

:class:`DistributedEstablishment` replays exactly that sequence on an
event engine, mutating the live :class:`~repro.core.bcp.BCPNetwork` at
message-arrival times.  Two consequences the centralised engine hides:

* establishment has a measurable latency (a signalling round trip per
  channel), and
* a request can fail on the forward pass even though its *multiplexed*
  footprint would fit — the tentative unmultiplexed reservation is what
  must fit momentarily.  This is faithful to the paper's procedure.

The end state for an uncontended request is identical to the centralised
engine's (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.channel import ChannelRole
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.core.bcp import BCPNetwork
from repro.core.dconnection import DConnection
from repro.core.establishment import EstablishmentError
from repro.core.reliability import connection_pr
from repro.network.components import LinkId, NodeId
from repro.protocol.signaling import SignalingParams
from repro.routing.paths import Path
from repro.sim.engine import EventEngine


@dataclass
class EstablishmentOutcome:
    """Result of one distributed establishment session."""

    success: bool = False
    connection: "DConnection | None" = None
    #: When the source received the final relaxation message.
    completed_at: "float | None" = None
    #: Completion time of each channel's round trip (primary first).
    channel_times: list[float] = field(default_factory=list)
    failure_reason: "str | None" = None


class DistributedEstablishment:
    """Message-level establishment sessions against a live network."""

    def __init__(
        self,
        network: BCPNetwork,
        engine: "EventEngine | None" = None,
        params: "SignalingParams | None" = None,
    ) -> None:
        self.network = network
        self.engine = engine or EventEngine()
        self.params = params or SignalingParams()

    # ------------------------------------------------------------------
    def establish(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: "TrafficSpec | None" = None,
        delay_qos: "DelayQoS | None" = None,
        ft_qos: "FaultToleranceQoS | None" = None,
        at: float = 0.0,
        run: bool = True,
    ) -> EstablishmentOutcome:
        """Establish a D-connection via message passes starting at ``at``.

        With ``run=True`` (default) the engine is driven to completion and
        the outcome returned; with ``run=False`` the session is scheduled
        and the caller drives the engine (concurrent sessions contend for
        capacity through their tentative reservations).
        """
        session = _Session(
            self, src, dst,
            traffic or TrafficSpec(),
            delay_qos or DelayQoS(),
            ft_qos or FaultToleranceQoS(),
        )
        self.engine.schedule_at(at, session.start)
        if run:
            self.engine.run()
        return session.outcome


class _Session:
    """One connection's establishment: primary pass, then backup passes."""

    def __init__(self, host: DistributedEstablishment, src: NodeId,
                 dst: NodeId, traffic: TrafficSpec, delay_qos: DelayQoS,
                 ft_qos: FaultToleranceQoS) -> None:
        self.host = host
        self.network = host.network
        self.engine = host.engine
        self.src = src
        self.dst = dst
        self.traffic = traffic
        self.delay_qos = delay_qos
        self.ft_qos = ft_qos
        self.outcome = EstablishmentOutcome()
        self.connection: "DConnection | None" = None

    # -- helpers ---------------------------------------------------------
    @property
    def _step(self) -> float:
        return self.host.params.hop_delay + self.host.params.processing_delay

    def _fail(self, reason: str) -> None:
        """Backup-stage failure: the primary is fully reserved and earlier
        backups committed, so the normal teardown undoes everything."""
        self.outcome.failure_reason = reason
        self.outcome.completed_at = self.engine.now
        if self.connection is not None:
            connection_id = self.connection.connection_id
            self.network.engine.teardown(self.connection)
            self.network._connections.pop(connection_id, None)
            self.connection = None

    def _fail_primary_forward(self, reason: str) -> None:
        """Primary forward-pass failure: the prefix reservations are
        already released; only the registry entry remains to undo."""
        self.outcome.failure_reason = reason
        self.outcome.completed_at = self.engine.now
        if self.connection is not None:
            self.network.registry.remove(
                self.connection.primary.channel_id
            )
            self.network._connections.pop(
                self.connection.connection_id, None
            )
            self.connection = None

    # -- session flow ------------------------------------------------------
    def start(self) -> None:
        engine = self.network.engine
        try:
            connection = engine._establish_primary_only(
                self.src, self.dst, self.traffic, self.delay_qos, self.ft_qos
            )
        except EstablishmentError as error:
            # Routing itself failed; nothing was reserved.
            self.outcome.failure_reason = str(error)
            self.outcome.completed_at = self.engine.now
            return
        # _establish_primary_only reserves atomically; undo that and
        # replay the reservation hop by hop on the message schedule.
        self.connection = connection
        self.network._connections[connection.connection_id] = connection
        engine.admission.release_primary(connection.primary.path, self.traffic)
        self._forward_primary(connection.primary.path, 0)

    def _forward_primary(self, path: Path, index: int) -> None:
        ledger = self.network.ledger
        if index == path.hops:
            self.engine.schedule(path.hops * self._step,
                                 self._primary_confirmed)
            return
        link = path.links[index]
        if not ledger.can_reserve_primary(link, self.traffic.bandwidth):
            self._release_primary_prefix(path, index)
            self._fail_primary_forward(f"admission failed at link {link}")
            return
        ledger.reserve_primary(link, self.traffic.bandwidth)
        self.engine.schedule(self._step, self._forward_primary, path,
                             index + 1)

    def _release_primary_prefix(self, path: Path, upto: int) -> None:
        for link in path.links[:upto]:
            self.network.ledger.release_primary(link, self.traffic.bandwidth)

    def _primary_confirmed(self) -> None:
        self.outcome.channel_times.append(self.engine.now)
        self._next_backup()

    def _next_backup(self) -> None:
        assert self.connection is not None
        if self.connection.num_backups >= self.ft_qos.num_backups:
            self._complete()
            return
        engine = self.network.engine
        try:
            path = engine._route_backup(
                self.connection, self.ft_qos.mux_degree
            )
        except EstablishmentError as error:
            self._fail(str(error))
            return
        self._forward_backup(path, 0, [])

    def _forward_backup(self, path: Path, index: int,
                        tentative: list[tuple[LinkId, float]]) -> None:
        ledger = self.network.ledger
        if index == path.hops:
            # Destination: "select the largest ν which satisfies the
            # required P_r" — prescriptive requests simply keep theirs.
            self.engine.schedule(
                self._step, self._backward_backup, path, tentative
            )
            return
        link = path.links[index]
        # Forward pass reserves WITHOUT multiplexing: the pool must
        # momentarily hold one extra unshared unit.
        current = ledger.spare_reserved(link)
        unmuxed = current + self.traffic.bandwidth
        if not ledger.can_set_spare(link, unmuxed):
            for done_link, original in tentative:
                ledger.set_spare(done_link, original)
            self._fail(f"tentative spare failed at link {link}")
            return
        ledger.set_spare(link, unmuxed)
        tentative.append((link, current))
        self.engine.schedule(self._step, self._forward_backup, path,
                             index + 1, tentative)

    def _backward_backup(self, path: Path,
                         tentative: list[tuple[LinkId, float]]) -> None:
        """The relaxation pass, collapsed to one event: restore the
        tentative reservations, then commit the multiplexed amounts
        through the central engine (identical math, distributed timing)."""
        assert self.connection is not None
        ledger = self.network.ledger
        for link, original in tentative:
            ledger.set_spare(link, original)
        engine = self.network.engine
        backup = engine._commit_backup(
            self.connection, path, self.ft_qos.mux_degree
        )
        assert backup.role is ChannelRole.BACKUP
        self.engine.schedule(
            path.hops * self._step, self._backup_confirmed
        )

    def _backup_confirmed(self) -> None:
        self.outcome.channel_times.append(self.engine.now)
        self._next_backup()

    def _complete(self) -> None:
        assert self.connection is not None
        self.connection.achieved_pr = connection_pr(
            self.connection, self.network.mux
        )
        self.outcome.success = True
        self.outcome.connection = self.connection
        self.outcome.completed_at = self.engine.now
