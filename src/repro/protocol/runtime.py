"""The protocol simulation runtime.

:class:`ProtocolSimulation` wires the event kernel, per-node BCP daemons,
and per-link RCC channels up from a loaded
:class:`~repro.core.bcp.BCPNetwork`, injects component failures/repairs,
and records :class:`ProtocolMetrics` — most importantly each connection's
*service-disruption time*, the quantity bounded in Section 5.3.

Resource semantics during recovery follow Section 4: each activation draws
the channel's bandwidth from the link's spare pool; exhausted pools cause
multiplexing failures; with preemption enabled (Section 4.3) a
higher-priority activation may evict an already-activated lower-priority
backup from a congested link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.channel import ChannelRole
from repro.core.bcp import BCPNetwork
from repro.faults.models import FailureScenario
from repro.network.components import LinkId, NodeId
from repro.obs.registry import MetricsRegistry, get_registry, get_trace_sink
from repro.protocol.config import ProtocolConfig
from repro.protocol.daemon import BackupInfo, BCPDaemon, EndpointView
from repro.protocol.messages import ControlMessage
from repro.protocol.rcc import RCCLink
from repro.protocol.states import LocalChannelState
from repro.protocol.signaling import establishment_latency
from repro.routing.shortest import (
    NoPathError,
    RouteConstraints,
    hop_distance,
    shortest_path,
)
from repro.sim.engine import EventEngine
from repro.sim.trace import TraceLog
from repro.util.rng import make_rng


@dataclass
class RecoveryRecord:
    """Per-connection recovery trace."""

    connection_id: int
    #: When the failure disabling the (current) primary was injected.
    failed_at: float | None = None
    #: When an end-node first learned of the failure.
    informed_at: float | None = None
    #: Activation attempts: serial -> time the source resumed service for
    #: that attempt (sent its activation, or received the destination's).
    attempts: dict[int, float] = field(default_factory=dict)
    #: Serial of the backup whose activation completed end-to-end.
    recovered_serial: int | None = None
    #: When that backup became fully active on every hop.
    completed_at: float | None = None
    unrecoverable: bool = False
    endpoint_failed: bool = False
    mux_failures: int = 0
    #: Slow-path recovery: when a from-scratch replacement channel
    #: finished its establishment round trip (Section 4.4), if enabled.
    reestablished_at: float | None = None
    reestablished_hops: int | None = None

    @property
    def recovered(self) -> bool:
        return self.recovered_serial is not None

    @property
    def service_disruption(self) -> float | None:
        """Failure injection to source-side service resumption — the
        paper's recovery delay Γ (Section 5.3)."""
        if self.failed_at is None or self.recovered_serial is None:
            return None
        resumed = self.attempts.get(self.recovered_serial)
        if resumed is None:
            return None
        return resumed - self.failed_at

    @property
    def slow_recovery_disruption(self) -> float | None:
        """Failure to re-established service, for connections that lost
        every channel and took the slow path."""
        if self.failed_at is None or self.reestablished_at is None:
            return None
        return self.reestablished_at - self.failed_at


class ProtocolMetrics:
    """Event-level counters and per-connection recovery traces.

    Besides the in-object counters/records the class mirrors every event
    into a :class:`~repro.obs.MetricsRegistry` under ``protocol.*``
    (counters) and records each connection's measured recovery delay
    into the ``protocol.recovery_delay`` histogram — the paper's Γ
    distribution (Section 5.3)."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.recoveries: dict[int, RecoveryRecord] = {}
        self.preemptions = 0
        self.rejoins = 0
        self.mux_failures = 0
        self.unrecoverable = 0
        self.reestablished = 0
        obs = registry if registry is not None else get_registry()
        self._c_primary_failed = obs.counter("protocol.primary_failures")
        self._c_informed = obs.counter("protocol.endpoint_informed")
        self._c_activations = obs.counter("protocol.activations")
        self._c_recoveries = obs.counter("protocol.recoveries")
        self._c_mux_failures = obs.counter("protocol.mux_failures")
        self._c_unrecoverable = obs.counter("protocol.unrecoverable")
        self._c_reestablished = obs.counter("protocol.reestablished")
        self._c_preemptions = obs.counter("protocol.preemptions")
        self._c_rejoins = obs.counter("protocol.rejoins")
        self._h_recovery_delay = obs.histogram("protocol.recovery_delay")
        self._h_inform_delay = obs.histogram("protocol.inform_delay")
        self._h_slow_delay = obs.histogram("protocol.slow_recovery_delay")

    def _record(self, connection_id: int) -> RecoveryRecord:
        record = self.recoveries.get(connection_id)
        if record is None:
            record = RecoveryRecord(connection_id=connection_id)
            self.recoveries[connection_id] = record
        return record

    # -- hooks called by the runtime and daemons -------------------------
    def note_primary_failed(
        self, connection_id: int, time: float, endpoint_failed: bool
    ) -> None:
        """Record that a connection's primary was hit (first time wins)."""
        record = self._record(connection_id)
        if record.failed_at is None:
            record.failed_at = time
            self._c_primary_failed.inc()
        record.endpoint_failed = record.endpoint_failed or endpoint_failed

    def note_endpoint_informed(
        self, connection_id: int, channel_id: int, time: float
    ) -> None:
        """Record when an end-node first learned of the failure."""
        record = self._record(connection_id)
        if record.informed_at is None:
            record.informed_at = time
            self._c_informed.inc()
            if record.failed_at is not None:
                self._h_inform_delay.record(time - record.failed_at)

    def note_activation_sent(
        self, connection_id: int, serial: int, time: float
    ) -> None:
        """Record the source dispatching an activation for ``serial``."""
        record = self._record(connection_id)
        if serial not in record.attempts:
            record.attempts[serial] = time
            self._c_activations.inc()

    def note_source_resumed(
        self, connection_id: int, serial: int, time: float
    ) -> None:
        """Record a destination-initiated activation reaching the source."""
        # Scheme 1/3: the destination's activation reached the source.
        record = self._record(connection_id)
        if serial not in record.attempts:
            record.attempts[serial] = time
            self._c_activations.inc()

    def note_completed(self, connection_id: int, serial: int, time: float) -> None:
        """Record a backup becoming fully active end to end."""
        record = self._record(connection_id)
        if record.recovered_serial is None:
            record.recovered_serial = serial
            record.completed_at = time
            self._c_recoveries.inc()
            disruption = record.service_disruption
            if disruption is not None:
                self._h_recovery_delay.record(disruption)

    def note_mux_failure(
        self, connection_id: int, channel_id: int, link: LinkId, time: float
    ) -> None:
        """Count a multiplexing failure on ``link``."""
        self.mux_failures += 1
        self._c_mux_failures.inc()
        self._record(connection_id).mux_failures += 1

    def note_unrecoverable(
        self, connection_id: int, time: float, node: NodeId
    ) -> None:
        """Record that an end-node ran out of backups."""
        record = self._record(connection_id)
        if not record.unrecoverable:
            record.unrecoverable = True
            self.unrecoverable += 1
            self._c_unrecoverable.inc()

    def note_reestablished(
        self, connection_id: int, time: float, hops: int
    ) -> None:
        """Record slow-path re-establishment completing."""
        record = self._record(connection_id)
        if record.reestablished_at is None:
            record.reestablished_at = time
            record.reestablished_hops = hops
            self.reestablished += 1
            self._c_reestablished.inc()
            slow = record.slow_recovery_disruption
            if slow is not None:
                self._h_slow_delay.record(slow)

    def note_preemption(
        self, connection_id: int, channel_id: int, time: float
    ) -> None:
        """Count a lower-priority backup losing its spare."""
        self.preemptions += 1
        self._c_preemptions.inc()

    def note_rejoined(
        self, connection_id: int, channel_id: int, time: float
    ) -> None:
        """Count a channel healing via the rejoin machinery."""
        self.rejoins += 1
        self._c_rejoins.inc()

    # -- summaries --------------------------------------------------------
    def service_disruptions(self) -> dict[int, float]:
        """Connection id -> measured service-disruption time, for every
        connection that recovered via a backup."""
        result = {}
        for connection_id, record in self.recoveries.items():
            disruption = record.service_disruption
            if disruption is not None:
                result[connection_id] = disruption
        return result

    def recovered_count(self) -> int:
        """Number of connections recovered via a backup."""
        return sum(1 for record in self.recoveries.values() if record.recovered)

    def max_service_disruption(self) -> float | None:
        """Worst measured disruption, or ``None`` if none recovered."""
        disruptions = self.service_disruptions()
        return max(disruptions.values()) if disruptions else None


class ProtocolSimulation:
    """A running BCP network: daemons + RCC links over an event kernel."""

    def __init__(
        self,
        network: BCPNetwork,
        config: ProtocolConfig | None = None,
        seed: "int | None" = 0,
        trace: bool = False,
        metrics: "MetricsRegistry | None" = None,
        trace_log: "TraceLog | None" = None,
    ) -> None:
        self.network = network
        self.config = config or ProtocolConfig()
        #: Metrics registry every layer of this runtime records into
        #: (session default unless one is passed explicitly).
        self.obs = metrics if metrics is not None else get_registry()
        self.engine = EventEngine(metrics=self.obs)
        self.metrics = ProtocolMetrics(self.obs)
        # When the session has a shared trace sink (e.g. the CLI's
        # --trace-out), record straight into it so the whole run exports
        # as one timeline; otherwise keep a private per-run log.  An
        # explicitly passed ``trace_log`` wins over both.
        if trace_log is not None:
            self.trace = trace_log
        else:
            sink = get_trace_sink()
            self.trace = sink if sink is not None else TraceLog(enabled=trace)
        #: Causal span log shared with the trace log; recovery episodes
        #: and their child spans land here (see repro.obs.spans).
        self.spans = self.trace.spans
        #: connection id -> open ``episode`` span id.
        self._episode_spans: dict[int, int] = {}
        self.failed_components: set = set()

        rng = make_rng(seed)
        self.daemons: dict[NodeId, BCPDaemon] = {
            node: BCPDaemon(node, self) for node in network.topology.nodes()
        }
        self._rcc: dict[LinkId, RCCLink] = {}
        for link in network.topology.links():
            self._rcc[link] = RCCLink(
                engine=self.engine,
                link=link,
                config=self.config,
                link_up=self.link_up,
                deliver=self._make_deliver(link.dst),
                seed=rng.getrandbits(64),
                metrics=self.obs,
                spans=self.spans,
            )
        for link, rcc in self._rcc.items():
            reverse = self._rcc.get(link.reversed())
            rcc.reverse = reverse

        # Spare pools and draw bookkeeping.
        self._spare_pools = network.ledger.snapshot_spares()
        self._draws: dict[LinkId, dict[int, float]] = {}
        self._drawn_links: dict[int, set[LinkId]] = {}
        #: channel id -> (connection id, serial, bandwidth, hops, mux degree)
        self._channel_meta: dict[int, tuple[int, int, float, int, int]] = {}
        #: Links where a channel holds a *dedicated* reservation (its
        #: original primary reservation, or spare converted by a completed
        #: activation, Section 4.4).  Activating over an owned link needs
        #: no spare draw — this is what lets a repaired-and-rejoined
        #: channel be re-activated without new resources.
        self._owned_links: dict[int, set[LinkId]] = {}

        self._install_channels()

        self.heartbeats = None
        #: Links already declared failed via RCC give-up (one declaration
        #: per outage; cleared on repair).
        self._suspected_links: set[LinkId] = set()
        # Sender-side liveness is always on: an RCC frame exhausting its
        # retransmission budget means the link is not delivering, and the
        # owning daemon must treat the link as failed (same path as
        # heartbeat detection) rather than silently dropping the messages.
        for rcc in self._rcc.values():
            rcc.on_give_up = self._on_rcc_give_up
        if self.config.heartbeat_detection:
            from repro.protocol.detection import HeartbeatService

            self.heartbeats = HeartbeatService(self)
            self.heartbeats.start()

    def _on_rcc_give_up(self, link: LinkId) -> None:
        """Sender-side liveness verdict; note that an ack-path failure is
        indistinguishable from a forward failure here, so a single simplex
        failure makes *both* directions suspected — a real limitation of
        ack-based detection (the affected healthy channels just switch to
        their backups unnecessarily, which is safe)."""
        if not self.node_up(link.src) or link in self._suspected_links:
            return
        self._suspected_links.add(link)
        self.trace.record(
            self.engine.now, "hb-detect", link.src,
            f"RCC gave up on {link}: declaring it failed",
        )
        self.daemons[link.src].on_component_failure(link)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_deliver(self, node: NodeId):
        daemon = None

        def deliver(message: ControlMessage) -> None:
            nonlocal daemon
            link = getattr(message, "link", None)
            if link is not None and self.heartbeats is not None:
                # Link-level heartbeat, not channel control traffic.
                self.heartbeats.on_heartbeat(link)
                return
            if daemon is None:
                daemon = self.daemons[node]
            daemon.receive(message)

        return deliver

    def _install_channels(self) -> None:
        for connection in self.network.connections():
            for channel in connection.channels:
                state = (
                    LocalChannelState.PRIMARY
                    if channel.role is ChannelRole.PRIMARY
                    else LocalChannelState.BACKUP
                )
                self._channel_meta[channel.channel_id] = (
                    connection.connection_id,
                    channel.serial,
                    channel.bandwidth,
                    channel.path.hops,
                    channel.mux_degree,
                )
                if channel.role is ChannelRole.PRIMARY:
                    self._owned_links[channel.channel_id] = set(
                        channel.path.links
                    )
                for node in channel.path.nodes:
                    self.daemons[node].register_channel(
                        channel_id=channel.channel_id,
                        connection_id=connection.connection_id,
                        serial=channel.serial,
                        path=channel.path,
                        mux_degree=channel.mux_degree,
                        state=state,
                    )
            backups = [
                BackupInfo(
                    channel_id=backup.channel_id,
                    serial=backup.serial,
                    path=backup.path,
                    mux_degree=backup.mux_degree,
                )
                for backup in connection.backups_in_serial_order()
            ]
            for node, role in (
                (connection.source, "source"),
                (connection.destination, "destination"),
            ):
                self.daemons[node].register_endpoint(
                    EndpointView(
                        connection_id=connection.connection_id,
                        source=connection.source,
                        destination=connection.destination,
                        role=role,
                        current_channel=connection.primary.channel_id,
                        current_serial=connection.primary.serial,
                        backups=[
                            BackupInfo(
                                channel_id=info.channel_id,
                                serial=info.serial,
                                path=info.path,
                                mux_degree=info.mux_degree,
                            )
                            for info in backups
                        ],
                    )
                )

    # ------------------------------------------------------------------
    # health model
    # ------------------------------------------------------------------
    def node_up(self, node: NodeId) -> bool:
        """Whether ``node`` is currently healthy."""
        return node not in self.failed_components

    def link_up(self, link: LinkId) -> bool:
        """Whether ``link`` and both its endpoints are healthy."""
        return (
            link not in self.failed_components
            and link.src not in self.failed_components
            and link.dst not in self.failed_components
        )

    # ------------------------------------------------------------------
    # RCC transport entry point for daemons
    # ------------------------------------------------------------------
    def rcc_send(self, src: NodeId, next_hop: NodeId, message: ControlMessage) -> None:
        """Hand a control message to the RCC toward ``next_hop``."""
        try:
            link = self.network.topology.link(src, next_hop)
        except KeyError:  # pragma: no cover - paths always follow links
            return
        self._rcc[link].send(message)

    def rcc_link(self, src: NodeId, dst: NodeId) -> RCCLink:
        """The RCC over a physical link (tests and diagnostics)."""
        return self._rcc[self.network.topology.link(src, dst)]

    # ------------------------------------------------------------------
    # spare-pool draws
    # ------------------------------------------------------------------
    def spare_remaining(self, link: LinkId) -> float:
        """Undrawn spare currently left on ``link``."""
        drawn = sum(self._draws.get(link, {}).values())
        return self._spare_pools.get(link, 0.0) - drawn

    def try_draw(
        self,
        link: LinkId,
        channel_id: int,
        mux_degree: int,
        allow_preemption: "bool | None" = None,
    ) -> tuple[bool, list[int]]:
        """Draw the channel's bandwidth from ``link``'s spare pool.

        Returns ``(drawn, preempted_channel_ids)``.  With preemption
        enabled, activated backups of strictly lower priority (larger mux
        degree) are evicted one by one until the draw fits or no victims
        remain (Section 4.3).
        """
        bandwidth = self._channel_meta[channel_id][2]
        owned = self._owned_links.get(channel_id)
        if owned is not None and link in owned:
            # The channel still holds its dedicated reservation here (an
            # original primary that was repaired and rejoined): no spare
            # draw needed.
            self._note_link_active(channel_id, link)
            return True, []
        draws_here = self._draws.setdefault(link, {})
        if channel_id in draws_here:
            return True, []
        preempt = self.config.preemption if allow_preemption is None else (
            allow_preemption and self.config.preemption
        )
        victims: list[int] = []
        while self.spare_remaining(link) + 1e-9 < bandwidth:
            if not preempt:
                return False, victims
            victim = self._pick_victim(link, mux_degree)
            if victim is None:
                return False, victims
            victims.append(victim)
            self.release_draw(link, victim)
        draws_here[channel_id] = bandwidth
        self._note_link_active(channel_id, link)
        return True, victims

    def _note_link_active(self, channel_id: int, link: LinkId) -> None:
        drawn_links = self._drawn_links.setdefault(channel_id, set())
        drawn_links.add(link)
        connection_id, serial, _, hops, _ = self._channel_meta[channel_id]
        if len(drawn_links) == hops:
            self.metrics.note_completed(connection_id, serial, self.engine.now)
            self.trace.record(
                self.engine.now, "recovered", link.src,
                f"connection {connection_id} fully active on backup "
                f"serial {serial}",
            )
            if self.spans.enabled:
                record = self.metrics.recoveries.get(connection_id)
                if record is not None and record.recovered_serial == serial:
                    # The episode ends when the *source* resumed service
                    # (the paper's Γ endpoint), which precedes the final
                    # hop's draw completing here.
                    resumed = record.attempts.get(serial, self.engine.now)
                    self.end_episode(
                        connection_id, resumed,
                        outcome="recovered", serial=serial,
                        completed=self.engine.now,
                    )
            # The activated channel's bandwidth is now dedicated to it
            # (spare converted to primary, Section 4.4).
            self._owned_links.setdefault(channel_id, set()).update(drawn_links)

    def _pick_victim(self, link: LinkId, degree: int) -> "int | None":
        """Lowest-priority (largest mux degree) channel drawing on ``link``
        whose priority is strictly below ``degree`` — the preemption victim
        of Section 4.3, or ``None``."""
        best: "int | None" = None
        best_degree = degree
        for cid in self._draws.get(link, ()):
            cid_degree = self._channel_meta[cid][4]
            if cid_degree > best_degree:
                best = cid
                best_degree = cid_degree
        return best

    def release_draw(self, link: LinkId, channel_id: int) -> None:
        """Return a channel's draw on ``link`` to the pool."""
        draws_here = self._draws.get(link)
        if draws_here is not None:
            released = draws_here.pop(channel_id, None)
            if released is not None and self.config.debug_double_release:
                # Planted bug (see ProtocolConfig.debug_double_release):
                # the draw is returned implicitly by leaving the pool
                # untouched, so also crediting the pool releases twice.
                self._spare_pools[link] = (
                    self._spare_pools.get(link, 0.0) + released
                )
        drawn_links = self._drawn_links.get(channel_id)
        if drawn_links is not None:
            drawn_links.discard(link)

    def release_channel_at_node(self, channel_id: int, node: NodeId) -> None:
        """Soft-state teardown hook: release this node's outgoing draw and
        dedicated reservation for the channel (rejoin-timer expiry or
        closure)."""
        drawn_links = self._drawn_links.get(channel_id)
        if drawn_links:
            for link in list(drawn_links):
                if link.src == node:
                    self.release_draw(link, channel_id)
        owned = self._owned_links.get(channel_id)
        if owned:
            for link in list(owned):
                if link.src == node:
                    owned.discard(link)

    # ------------------------------------------------------------------
    # control-plane accounting (Section 5.2's overhead view)
    # ------------------------------------------------------------------
    def rcc_totals(self) -> dict[str, int]:
        """Network-wide RCC transport counters, summed over all links."""
        totals = {
            "messages_sent": 0,
            "messages_delivered": 0,
            "frames_sent": 0,
            "frames_delivered": 0,
            "frames_lost": 0,
            "retransmissions": 0,
            "duplicates_dropped": 0,
            "gave_up": 0,
        }
        for rcc in self._rcc.values():
            stats = rcc.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        return totals

    def worst_control_delay(self) -> float:
        """Largest per-hop control-message delay observed anywhere — the
        quantity Section 5.2's sizing rule bounds by D_max."""
        return max(
            (rcc.stats.max_message_delay for rcc in self._rcc.values()),
            default=0.0,
        )

    # ------------------------------------------------------------------
    # client-initiated teardown
    # ------------------------------------------------------------------
    def close_connection(self, connection_id: int, at: float) -> None:
        """Schedule a client teardown of every channel of a connection:
        the source sends closure messages down each path at time ``at``."""
        connection = self.network.connection(connection_id)
        for channel in connection.channels:
            self.engine.schedule_at(
                at,
                self.daemons[connection.source].initiate_closure,
                channel.channel_id,
            )

    # ------------------------------------------------------------------
    # slow-path re-establishment (Section 4.4)
    # ------------------------------------------------------------------
    def request_reestablishment(self, connection_id: int) -> None:
        """Route a replacement primary in the residual network and pay the
        two-pass establishment latency; no-op unless enabled in config."""
        if not self.config.reestablish_unrecoverable:
            return
        connection = self.network.connection(connection_id)
        topology = self.network.topology
        failed_nodes = [c for c in self.failed_components
                        if not isinstance(c, LinkId)]
        failed_links = [c for c in self.failed_components
                        if isinstance(c, LinkId)]
        residual = topology.subgraph_without(failed_nodes, failed_links)
        bandwidth = connection.traffic.bandwidth
        try:
            shortest_possible = hop_distance(
                topology, connection.source, connection.destination
            )
            path = shortest_path(
                residual,
                connection.source,
                connection.destination,
                RouteConstraints(
                    # The live ledger gates links of the *residual* topology;
                    # the flat core handles the cross-topology ledger sync.
                    link_admissible=self.network.ledger.capacity_floor(bandwidth),
                    max_hops=connection.delay_qos.max_hops(shortest_possible),
                ),
            )
        except NoPathError:
            self.trace.record(
                self.engine.now, "no-route", connection.source,
                f"connection {connection_id}: no QoS-feasible replacement "
                f"path in the residual network",
            )
            return
        latency = establishment_latency(path.hops)
        self.trace.record(
            self.engine.now, "reestablish", connection.source,
            f"connection {connection_id}: building a {path.hops}-hop "
            f"replacement (ready in {latency:g})",
        )
        self.engine.schedule(
            latency,
            lambda: self.metrics.note_reestablished(
                connection_id, self.engine.now, path.hops
            ),
        )

    # ------------------------------------------------------------------
    # recovery-episode spans
    # ------------------------------------------------------------------
    def _begin_episode(self, connection_id: int, component, now: float) -> None:
        """Open the connection's ``episode`` span (first failure wins).

        The span carries the connection's (K, b, D_max) configuration so
        an offline reader can check the episode against the analytic Γ
        bound without the network object.
        """
        if not self.spans.enabled or connection_id in self._episode_spans:
            return
        connection = self.network.connection(connection_id)
        self._episode_spans[connection_id] = self.spans.begin(
            "episode", now,
            connection=connection_id,
            component=str(component),
            k_hops=max(ch.path.hops for ch in connection.channels),
            num_backups=max(1, connection.num_backups),
            d_max=self.config.rcc.max_delay,
            detection_delay=self.config.detection_delay,
        )

    def episode_parent(self, connection_id: int) -> "int | None":
        """The open episode span id for a connection, if any — daemons
        attach their detect/report/activate spans under it."""
        return self._episode_spans.get(connection_id)

    def end_episode(self, connection_id: int, t_end: float,
                    **attrs: object) -> None:
        """Close the connection's open episode span (no-op when none)."""
        span_id = self._episode_spans.pop(connection_id, None)
        if span_id is not None:
            self.spans.end(span_id, t_end, **attrs)

    # ------------------------------------------------------------------
    # failure and repair injection
    # ------------------------------------------------------------------
    def fail(self, component, at: float) -> None:
        """Schedule a component crash at absolute time ``at``."""
        self.engine.schedule_at(at, self._apply_failure, component)

    def repair(self, component, at: float) -> None:
        """Schedule a component repair at absolute time ``at``."""
        self.engine.schedule_at(at, self._apply_repair, component)

    def _apply_repair(self, component) -> None:
        self.failed_components.discard(component)
        if isinstance(component, LinkId):
            self._suspected_links.discard(component)
            self._suspected_links.discard(component.reversed())
        else:
            for link in self.network.topology.incident_links(component):
                self._suspected_links.discard(link)
            daemon = self.daemons.get(component)
            if daemon is not None:
                daemon.on_repaired()
            if self.heartbeats is not None:
                self.heartbeats.on_node_repaired(component)
        self.trace.record(self.engine.now, "repair", component,
                          "component repaired")
        if self.spans.enabled:
            self.spans.point("repair", self.engine.now,
                             component=str(component))

    def inject_scenario(self, scenario: FailureScenario, at: float) -> None:
        """Crash every component of ``scenario`` at time ``at``."""
        for node in scenario.failed_nodes:
            self.fail(node, at)
        for link in scenario.failed_links:
            self.fail(link, at)

    def _apply_failure(self, component) -> None:
        if component in self.failed_components:
            return
        self.failed_components.add(component)
        now = self.engine.now
        self.trace.record(now, "failure", component, "component crashed")
        if self.spans.enabled:
            self.spans.point("failure", now, component=str(component))
        if not isinstance(component, LinkId):
            # A dead node holds no timers and transmits nothing: disarm its
            # rejoin/probe timers and halt every outgoing RCC so events
            # armed before the crash cannot fire callbacks after it.
            daemon = self.daemons.get(component)
            if daemon is not None:
                daemon.on_crashed()
            for link in self.network.topology.incident_links(component):
                if link.src == component:
                    self._rcc[link].halt()
            if self.heartbeats is not None:
                self.heartbeats.on_node_failed(component)
        # Metrics: which connections lost their primary to this component?
        for channel in self.network.registry.on_component(component):
            if channel.role is not ChannelRole.PRIMARY:
                continue
            connection = self.network.connection(channel.connection_id)
            endpoint_failed = (
                connection.source in self.failed_components
                or connection.destination in self.failed_components
            )
            self.metrics.note_primary_failed(
                channel.connection_id, now, endpoint_failed
            )
            self._begin_episode(channel.connection_id, component, now)
            if self.spans.enabled:
                # A failure landing while recovery is already in flight
                # shows up as a child of the open episode, so the offline
                # Γ check can date its clock from the *latest* triggering
                # failure rather than the first.
                self.spans.point(
                    "primary-failed", now,
                    parent=self.episode_parent(channel.connection_id),
                    connection=channel.connection_id,
                    component=str(component),
                )
        # Detection: with heartbeats it is emergent (missed beats); the
        # paper's default assumes an external detector informing the
        # neighbours after `detection_delay`.
        if self.config.heartbeat_detection:
            return
        for neighbour in self._neighbours_of(component):
            self.engine.schedule(
                self.config.detection_delay,
                self.daemons[neighbour].on_component_failure,
                component,
            )

    def _neighbours_of(self, component) -> list[NodeId]:
        topology = self.network.topology
        if isinstance(component, LinkId):
            return [node for node in component.endpoints() if self.node_up(node)]
        neighbours = set(topology.successors(component)) | set(
            topology.predecessors(component)
        )
        return [node for node in neighbours if self.node_up(node)]

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the event loop; returns the final simulation time."""
        if not self.spans.enabled:
            return self.engine.run(until=until)
        span = self.spans.begin("run", self.engine.now, until=until)
        final = self.engine.run(until=until)
        self.spans.end(span, final, events=self.engine.events_processed)
        return final


def simulate_scenario(
    network: BCPNetwork,
    scenario: FailureScenario,
    config: ProtocolConfig | None = None,
    failure_time: float = 1.0,
    horizon: float = 500.0,
    seed: "int | None" = 0,
    metrics: "MetricsRegistry | None" = None,
) -> ProtocolMetrics:
    """Convenience wrapper: inject one scenario into a fresh runtime, run
    to ``horizon``, return the metrics."""
    simulation = ProtocolSimulation(network, config, seed, metrics=metrics)
    simulation.inject_scenario(scenario, failure_time)
    simulation.run(until=horizon)
    return simulation.metrics
