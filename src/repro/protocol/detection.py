"""Heartbeat-based failure detection (the [HAN97a] substitute).

The paper assumes a failure-detection layer exists and reports component
failures to neighbour nodes; its companion paper [HAN97a] studies such
detectors experimentally.  This module provides a concrete one so the
whole recovery pipeline can run without any oracle: every node sends a
heartbeat over each outgoing link's RCC at a fixed period, and the
receiving neighbour declares the link failed after missing
``miss_threshold`` consecutive beats.

A crashed *node* simply stops heartbeating on every incident link, so its
neighbours each detect their adjacent link — which is exactly the
information a real neighbour has, and exactly what the BCP daemon's
failure handling consumes (a channel's upstream/downstream link dying).
Repaired components resume beating and the detector re-arms silently;
channel-level healing is the rejoin machinery's job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.components import LinkId
from repro.protocol.messages import ControlMessage
from repro.sim.timers import Timeout

#: Channel-id value marking link-level (not channel-level) control traffic.
HEARTBEAT_CHANNEL = -1


@dataclass(frozen=True, slots=True)
class Heartbeat(ControlMessage):
    """One link heartbeat (rides the RCC like any control message)."""

    link: "LinkId | None" = None


class HeartbeatDetector:
    """Link-failure detection for one *incoming* link of a node."""

    def __init__(self, runtime, link: LinkId) -> None:
        self.runtime = runtime
        self.link = link
        self.config = runtime.config
        timeout = (
            self.config.heartbeat_miss_threshold * self.config.heartbeat_period
            + self.config.rcc.max_delay
        )
        self._timer = Timeout(runtime.engine, timeout, self._declare_failed)
        self._declared = False

    def start(self) -> None:
        """Arm the detector (called once at simulation start)."""
        self._timer.start()

    def on_heartbeat(self) -> None:
        """A beat arrived: the link is (again) considered healthy."""
        self._declared = False
        self._timer.start()

    def _declare_failed(self) -> None:
        if self._declared:
            return
        self._declared = True
        receiver = self.link.dst
        if not self.runtime.node_up(receiver):
            return  # a dead node detects nothing
        self.runtime.trace.record(
            self.runtime.engine.now, "hb-detect", receiver,
            f"missed heartbeats: declaring {self.link} failed",
        )
        self.runtime.daemons[receiver].on_component_failure(self.link)
        # One declaration per outage; the timer re-arms when beats resume.


class HeartbeatService:
    """Heartbeat emission and detection across a whole runtime."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.detectors: dict[LinkId, HeartbeatDetector] = {
            link: HeartbeatDetector(runtime, link)
            for link in runtime.network.topology.links()
        }

    def start(self) -> None:
        """Arm every detector and schedule the periodic beats."""
        period = self.runtime.config.heartbeat_period
        for detector in self.detectors.values():
            detector.start()
        for link in self.runtime.network.topology.links():
            # Stagger nothing: determinism beats phase-spreading here.
            self.runtime.engine.schedule(period, self._beat, link)

    def _beat(self, link: LinkId) -> None:
        runtime = self.runtime
        if runtime.node_up(link.src):
            runtime.rcc_send(link.src, link.dst, Heartbeat(
                channel_id=HEARTBEAT_CHANNEL, link=link
            ))
        runtime.engine.schedule(runtime.config.heartbeat_period,
                                self._beat, link)

    def on_heartbeat(self, link: LinkId) -> None:
        """Route a received beat to its link's detector."""
        detector = self.detectors.get(link)
        if detector is not None:
            detector.on_heartbeat()

    def on_node_failed(self, node) -> None:
        """Disarm the dead node's own detectors (a crashed node detects
        nothing); detectors *at its neighbours* stay armed — their missed
        beats are exactly how the crash is discovered."""
        for link, detector in self.detectors.items():
            if link.dst == node:
                detector._timer.cancel()

    def on_node_repaired(self, node) -> None:
        """Re-arm the repaired node's detectors for its incoming links."""
        for link, detector in self.detectors.items():
            if link.dst == node:
                detector._declared = False
                detector._timer.start()
