"""The BCP runtime protocol over the discrete-event kernel (Sections 4-5).

This package implements the *dynamic* side of the Backup Channel Protocol:

* per-node BCP daemons with the N/P/B/U channel state machine (Fig. 4),
* failure detection hand-off, failure reporting along healthy channel
  segments, and the three channel-switching schemes (Fig. 5),
* bi-directional backup activation with serial-number consistency and
  spare-pool draws (multiplexing failures included),
* priority-based activation — activation-delay and preemption variants
  (Section 4.3),
* soft-state resource reconfiguration: rejoin timers, rejoin-request /
  rejoin / channel-closure messages (Section 4.4, Fig. 6),
* the RCC network: per-link real-time control channels with eligibility
  spacing, fragmentation/assembly, sequence numbers, and hop-by-hop
  acknowledgement with retransmission (Section 5.1).

The entry point is :class:`~repro.protocol.runtime.ProtocolSimulation`,
which wires daemons and RCC links up from a loaded
:class:`~repro.core.bcp.BCPNetwork`.
"""

from repro.protocol.config import ProtocolConfig, RCCParams, SwitchingScheme
from repro.protocol.messages import (
    ActivationAck,
    ActivationMessage,
    ChannelClosure,
    Direction,
    FailureReport,
    RejoinConfirm,
    RejoinRequest,
)
from repro.protocol.establishment import (
    DistributedEstablishment,
    EstablishmentOutcome,
)
from repro.protocol.invariants import InvariantAuditor, InvariantViolation
from repro.protocol.runtime import (
    ProtocolMetrics,
    ProtocolSimulation,
    RecoveryRecord,
    simulate_scenario,
)
from repro.protocol.signaling import (
    SignalingParams,
    SignalingSession,
    establishment_latency,
)
from repro.protocol.states import ChannelEvent, LocalChannelState

__all__ = [
    "ProtocolSimulation",
    "ProtocolMetrics",
    "RecoveryRecord",
    "simulate_scenario",
    "DistributedEstablishment",
    "EstablishmentOutcome",
    "SignalingParams",
    "SignalingSession",
    "establishment_latency",
    "ProtocolConfig",
    "RCCParams",
    "SwitchingScheme",
    "LocalChannelState",
    "ChannelEvent",
    "InvariantAuditor",
    "InvariantViolation",
    "Direction",
    "FailureReport",
    "ActivationMessage",
    "ActivationAck",
    "RejoinRequest",
    "RejoinConfirm",
    "ChannelClosure",
]
