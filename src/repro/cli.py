"""Command-line interface: regenerate any of the paper's experiments.

Examples::

    python -m repro table1 --topology torus --backups 1
    python -m repro figure9 --topology mesh --checkpoints 8
    python -m repro table3 --rows 4 --cols 4 --double-samples 30
    python -m repro delay-bound
    python -m repro stats --rows 4 --cols 4     # one scenario + metrics
    python -m repro stats --failures 0 --fail-at "1:link:0->1" \
        --repair-at "40:link:0->1"              # explicit timed injection
    python -m repro chaos --seed 0 --campaign-size 25   # invariant audit
    python -m repro chaos --replay chaos-seed0-run3.json
    python -m repro chaos --trace-out spans.jsonl \
        --slo "protocol.recovery_delay.p99 <= gamma"
    python -m repro obs episodes --input spans.jsonl    # Γ breakdown
    python -m repro obs trajectory                      # perf history
    python -m repro all --rows 4 --cols 4       # quick full sweep

Every subcommand prints the regenerated table (same rows as the paper)
to stdout.  The default 8x8 scale takes seconds-to-minutes per table;
``--rows 4 --cols 4`` gives a fast small-scale pass.

Every subcommand also accepts ``--metrics-out PATH`` (write the run's
``repro.metrics/1`` snapshot as JSON), ``--trace-out PATH`` (write the
run's structured trace as JSONL), and ``--workers N`` (fan scenario
evaluation out over N worker processes, ``auto`` = one per CPU;
results are identical for any worker count); see the Observability and
Parallel execution sections of docs/architecture.md.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.obs import (
    MetricsRegistry,
    format_metrics,
    get_registry,
    obs_session,
    write_metrics,
    write_trace,
)
from repro.sim.trace import TraceLog
from repro.experiments import (
    run_baseline_comparison,
    run_delay_bound,
    run_figure9,
    run_inhomogeneous,
    run_message_loss,
    run_rcc_sizing,
    run_reliability,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.ablations import run_ablations
from repro.experiments.scaling import run_scaling
from repro.experiments.setup import NetworkConfig


def _parse_workers(text: str) -> "int | None":
    """``auto`` -> one worker per CPU (None); else a positive integer."""
    if text == "auto":
        return None
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {value}"
        )
    return value


def _parse_component(kind: str, ident: str):
    """Parse the component half of an injection spec."""
    from repro.network.components import LinkId

    def node(text: str):
        try:
            return int(text)
        except ValueError:
            return text

    if kind == "node":
        return node(ident)
    if kind == "link":
        try:
            src, dst = ident.split("->")
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"link spec must be SRC->DST, got {ident!r}"
            ) from None
        return LinkId(node(src), node(dst))
    raise argparse.ArgumentTypeError(
        f"component kind must be 'node' or 'link', got {kind!r}"
    )


def _parse_injection(text: str) -> tuple[float, object]:
    """``TIME:node:ID`` or ``TIME:link:SRC->DST`` -> (time, component)."""
    parts = text.split(":", 2)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"injection spec must be TIME:node:ID or TIME:link:SRC->DST, "
            f"got {text!r}"
        )
    time_text, kind, ident = parts
    try:
        time = float(time_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"injection time must be a number, got {time_text!r}"
        ) from None
    if time < 0:
        raise argparse.ArgumentTypeError(
            f"injection time must be >= 0, got {time:g}"
        )
    return time, _parse_component(kind, ident)


def _parse_profiles(text: str) -> tuple[str, ...]:
    from repro.chaos import PROFILES

    names = tuple(part for part in text.split(",") if part != "")
    if not names:
        raise argparse.ArgumentTypeError("at least one profile is required")
    unknown = [name for name in names if name not in PROFILES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown profile(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(PROFILES))}"
        )
    return names


def _parse_degrees(text: str) -> tuple[int, ...]:
    try:
        degrees = tuple(int(part) for part in text.split(",") if part != "")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"degrees must be comma-separated integers, got {text!r}"
        ) from None
    if not degrees:
        raise argparse.ArgumentTypeError("at least one degree is required")
    return degrees


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", choices=("torus", "mesh"),
                        default="torus", help="network type (default torus)")
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--cols", type=int, default=8)
    parser.add_argument("--capacity", type=float, default=None,
                        help="simplex link capacity (defaults per topology)")


def _config(args: argparse.Namespace) -> NetworkConfig:
    return NetworkConfig(
        topology=args.topology, rows=args.rows, cols=args.cols,
        capacity=args.capacity,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with one subcommand per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of Han & Shin (SIGCOMM 1997).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure9 = subparsers.add_parser(
        "figure9", help="spare bandwidth vs network load")
    _add_network_arguments(figure9)
    figure9.add_argument("--backups", type=int, default=1)
    figure9.add_argument("--degrees", type=_parse_degrees,
                         default=(0, 1, 3, 5, 6))
    figure9.add_argument("--checkpoints", type=int, default=8)

    for name, helptext in (
        ("table1", "R_fast with uniform multiplexing degrees"),
        ("table3", "R_fast under brute-force multiplexing"),
    ):
        sub = subparsers.add_parser(name, help=helptext)
        _add_network_arguments(sub)
        sub.add_argument("--backups", type=int, default=1)
        sub.add_argument("--degrees", type=_parse_degrees,
                         default=(1, 3, 5, 6))
        sub.add_argument("--double-samples", type=int, default=200)

    table2 = subparsers.add_parser(
        "table2", help="per-connection fault-tolerance control")
    _add_network_arguments(table2)
    table2.add_argument("--backups", type=int, default=1)
    table2.add_argument("--classes", type=_parse_degrees,
                        default=(1, 3, 5, 6))
    table2.add_argument("--double-samples", type=int, default=200)

    delay = subparsers.add_parser(
        "delay-bound", help="measured recovery delay vs the Γ bound")
    _add_network_arguments(delay)
    delay.add_argument("--backups", type=int, default=2)
    delay.add_argument("--connections", type=int, default=6)

    rcc = subparsers.add_parser(
        "rcc-sizing", help="RCC frame sizing and control-delay bound")
    _add_network_arguments(rcc)

    reliability = subparsers.add_parser(
        "reliability", help="Markov vs combinatorial reliability models")
    _add_network_arguments(reliability)

    inhomogeneous = subparsers.add_parser(
        "inhomogeneous", help="hotspot/mixed-bandwidth/topology sensitivity")
    inhomogeneous.add_argument("--rows", type=int, default=8)
    inhomogeneous.add_argument("--cols", type=int, default=8)
    inhomogeneous.add_argument("--mux", type=int, default=5)

    loss = subparsers.add_parser(
        "message-loss", help="data-message loss during recovery (Fig. 8)")
    _add_network_arguments(loss)
    loss.add_argument("--rate", type=float, default=2.0)
    loss.add_argument("--connections", type=int, default=4)

    baselines = subparsers.add_parser(
        "baselines", help="BCP vs reactive vs local-detour trade-offs")
    _add_network_arguments(baselines)
    baselines.add_argument("--mux", type=int, default=3)

    scaling = subparsers.add_parser(
        "scaling", help="multiplexing efficiency vs network size (§6)")
    scaling.add_argument("--mux", type=int, default=5)
    scaling.add_argument("--sizes", type=_parse_degrees, default=(4, 6, 8))

    ablations = subparsers.add_parser(
        "ablations", help="design-choice ablations (see DESIGN.md)")
    _add_network_arguments(ablations)
    ablations.add_argument("--mux", type=int, default=5)

    everything = subparsers.add_parser(
        "all", help="run every experiment at one scale")
    _add_network_arguments(everything)
    everything.add_argument("--double-samples", type=int, default=100)

    report = subparsers.add_parser(
        "report", help="run the full suite and write a markdown report")
    _add_network_arguments(report)
    report.add_argument("--double-samples", type=int, default=100)
    report.add_argument("--output", default="reproduction-report.md")

    stats = subparsers.add_parser(
        "stats", help="re-run one failure scenario and print the run's "
                      "metrics summary")
    _add_network_arguments(stats)
    stats.add_argument("--mux", type=int, default=3)
    stats.add_argument("--backups", type=int, default=1)
    stats.add_argument("--failures", type=int, default=1,
                       help="fail this many links (lexicographically first); "
                            "0 with --fail-at for fully explicit injection")
    stats.add_argument("--horizon", type=float, default=200.0)
    stats.add_argument(
        "--fail-at", metavar="SPEC", type=_parse_injection,
        action="append", default=[],
        help="crash a component at a given time "
             "(TIME:node:ID or TIME:link:SRC->DST; repeatable)")
    stats.add_argument(
        "--repair-at", metavar="SPEC", type=_parse_injection,
        action="append", default=[],
        help="repair a component at a given time (same spec as --fail-at; "
             "repeatable)")

    churn = subparsers.add_parser(
        "churn", help="drive the network through a seeded arrival/"
                      "departure churn process with epoch invariant audits")
    _add_network_arguments(churn)
    churn.add_argument("--arrival-rate", type=float, default=50.0,
                       help="Poisson arrival rate, requests per simulated "
                            "time unit (default 50)")
    churn.add_argument("--holding-time", type=float, default=10.0,
                       help="mean exponential connection holding time "
                            "(default 10)")
    churn.add_argument("--duration", type=float, default=100.0,
                       help="simulated run length (default 100)")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--backups", type=int, default=1)
    churn.add_argument("--mux", type=int, default=3)
    churn.add_argument("--bandwidth", type=float, default=1.0)
    churn.add_argument("--batch-window", type=float, default=0.05,
                       help="arrivals closer than this share one batched "
                            "admission pass (default 0.05)")
    churn.add_argument("--epoch-interval", type=float, default=10.0,
                       help="ledger audit + time-series sampling cadence "
                            "(default 10)")
    churn.add_argument("--eval-scenarios", type=int, default=32,
                       help="single-link failure scenarios evaluated per "
                            "epoch (0 disables; default 32)")
    churn.add_argument("--pairs", type=int, default=64,
                       help="size of the pre-sampled node-pair pool "
                            "(0 = fresh pair per arrival; default 64)")
    churn.add_argument("--stats-out", metavar="PATH", default=None,
                       help="write the deterministic churn stats as JSON")
    churn.add_argument("--slo", metavar="SPEC", action="append", default=[],
                       help="SLO target evaluated at every epoch boundary, "
                            "e.g. 'churn.establish_latency.p99 <= 0.02' "
                            "(repeatable; any breach exits 1)")
    churn.add_argument("--spec", metavar="PATH", default=None,
                       help="drive the run from a one-cell repro.scenario/1 "
                            "spec file instead of the flags above "
                            "(--slo still applies)")

    chaos = subparsers.add_parser(
        "chaos", help="run a seeded chaos campaign with the protocol "
                      "invariant auditor; shrink and export any failures")
    _add_network_arguments(chaos)
    chaos.set_defaults(rows=4, cols=4)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--campaign-size", type=int, default=25,
                       help="number of schedules to run (default 25)")
    chaos.add_argument("--profiles", type=_parse_profiles, default=None,
                       help="comma-separated chaos profiles "
                            "(default: all of them, rotated)")
    chaos.add_argument("--backups", type=int, default=2)
    chaos.add_argument("--mux", type=int, default=1)
    chaos.add_argument("--connections", type=int, default=6,
                       help="connections to establish (default 6)")
    chaos.add_argument("--plant-bug", action="store_true",
                       help="enable the planted spare-pool double-release "
                            "(validates the auditor + shrinker pipeline)")
    chaos.add_argument("--plant-race", action="store_true",
                       help="run switchover unguarded (pre-hardening "
                            "behaviour: no serial/episode staleness check, "
                            "acks, retries, or demotion) so the auditor + "
                            "shrinker must catch the channel-switching race")
    chaos.add_argument("--artifact-dir", metavar="DIR", default=".",
                       help="where shrunk failure artifacts are written "
                            "(default: current directory)")
    chaos.add_argument("--max-artifacts", type=int, default=5,
                       help="shrink and export at most this many failing "
                            "runs (default 5)")
    chaos.add_argument("--replay", metavar="ARTIFACT", default=None,
                       help="re-execute a saved repro.chaos/1 artifact "
                            "instead of running a campaign")
    chaos.add_argument("--slo", metavar="SPEC", action="append", default=[],
                       help="SLO target evaluated against the campaign's "
                            "metrics, e.g. 'protocol.recovery_delay.p99 <= "
                            "gamma' — 'gamma' resolves to the network's "
                            "worst-case analytic recovery bound "
                            "(repeatable; any breach exits 1)")
    chaos.add_argument("--spec", metavar="PATH", default=None,
                       help="drive the campaign from a one-cell grid-family "
                            "repro.scenario/1 spec file instead of the "
                            "flags above (--slo/--plant-bug/--plant-race "
                            "still apply)")

    matrix = subparsers.add_parser(
        "matrix", help="expand, diff, and run declarative scenario "
                       "lattices (repro.scenario/1 / repro.matrix/1)")
    matrix.add_argument("action", choices=("run", "expand", "diff"),
                        help="run: execute every cell of a lattice through "
                             "the churn/chaos/evaluator engines; expand: "
                             "print (or write) the cell lattice a spec "
                             "file describes; diff: compare two lattices "
                             "by cell name")
    matrix.add_argument("paths", nargs="+", metavar="PATH",
                        help="spec file(s): a repro.scenario/1 JSONL "
                             "lattice, a repro.matrix/1 JSON matrix, or a "
                             "single repro.scenario/1 JSON spec "
                             "(diff takes exactly two)")
    matrix.add_argument("--shard", metavar="I/N", default=None,
                        help="run only round-robin shard I of N "
                             "(e.g. 0/2; cell i belongs to shard i %% N)")
    matrix.add_argument("--validate", action="store_true",
                        help="expand: only check the spec file parses and "
                             "expands cleanly, print the cell count")
    matrix.add_argument("--out", metavar="PATH", default=None,
                        help="expand: write the expanded lattice as "
                             "repro.scenario/1 JSONL instead of a table")
    matrix.add_argument("--results-out", metavar="PATH", default=None,
                        help="run: write one deterministic "
                             "repro.scenario-result/1 JSON line per cell "
                             "(byte-identical for any worker count)")
    matrix.add_argument("--trajectory", metavar="PATH",
                        default="benchmarks/TRAJECTORY.jsonl",
                        help="run: append per-cell measure rows to this "
                             "perf-trajectory store (default "
                             "benchmarks/TRAJECTORY.jsonl)")
    matrix.add_argument("--no-trajectory", action="store_true",
                        help="run: skip the trajectory append")
    matrix.add_argument("--label", default="matrix",
                        help="run: label prefix for trajectory rows "
                             "(default 'matrix')")
    matrix.add_argument("--artifact-dir", metavar="DIR", default=None,
                        help="run: write flight recordings of failing "
                             "chaos cells into this directory")

    obs = subparsers.add_parser(
        "obs", help="offline observability: reconstruct recovery episodes "
                    "from a span stream, evaluate SLOs against a metrics "
                    "snapshot, inspect the benchmark trajectory store")
    obs.add_argument("action", choices=("episodes", "slo", "trajectory"),
                     help="episodes: fold a --trace-out JSONL into "
                          "per-failure recovery episodes with the delay "
                          "breakdown and Γ-bound verdicts; slo: evaluate "
                          "--slo targets against a repro.metrics/1 "
                          "snapshot; trajectory: print the benchmark "
                          "perf-trajectory store")
    obs.add_argument("--input", metavar="PATH", default=None,
                     help="input file: span/trace JSONL for 'episodes', "
                          "repro.metrics/1 JSON for 'slo', trajectory "
                          "JSONL for 'trajectory' (default "
                          "benchmarks/TRAJECTORY.jsonl)")
    obs.add_argument("--episodes-out", metavar="PATH", default=None,
                     help="also write the reconstructed episodes as "
                          "deterministic JSON lines (episodes action)")
    obs.add_argument("--slo", metavar="SPEC", action="append", default=[],
                     help="SLO target, e.g. "
                          "'protocol.recovery_delay.p99 <= gamma' "
                          "(repeatable; slo action)")
    obs.add_argument("--gamma", type=float, default=None,
                     help="value for the symbolic 'gamma' threshold "
                          "(slo action)")

    serve = subparsers.add_parser(
        "serve", help="always-on admission service: run the long-lived "
                      "server (start) or drive one remotely (churn/"
                      "snapshot/ping/shutdown)")
    serve.add_argument("action",
                       choices=("start", "churn", "snapshot", "ping",
                                "shutdown"),
                       help="start: serve a warm network on --bind; "
                            "churn: run the churn engine as a remote load "
                            "generator against --connect; snapshot: ask "
                            "the server to write a repro.snapshot/1 file; "
                            "ping/shutdown: liveness check / graceful stop")
    serve.add_argument("--spec", metavar="PATH", default=None,
                       help="start: one-cell scenario spec pinning the "
                            "topology (and the churn workload clients "
                            "inherit via the hello handshake)")
    serve.add_argument("--bind", metavar="ADDR", default=None,
                       help="start: listen address — host:port for TCP, "
                            "anything else a unix socket path")
    serve.add_argument("--connect", metavar="ADDR", default=None,
                       help="client actions: the server's address")
    serve.add_argument("--restore", metavar="PATH", default=None,
                       help="start: restore this repro.snapshot/1 file "
                            "into the warm network before serving — the "
                            "restarted server resumes byte-identically "
                            "without re-admitting the world")
    serve.add_argument("--snapshot-out", metavar="PATH", default=None,
                       help="snapshot: path the *server process* writes "
                            "the snapshot file to")
    serve.add_argument("--stats-out", metavar="PATH", default=None,
                       help="churn: write the client-side churn stats as "
                            "deterministic JSON")
    serve.add_argument("--until", type=float, default=None,
                       help="churn: pause the run at this simulated time "
                            "instead of running to the spec's duration")
    serve.add_argument("--slo", metavar="SPEC", action="append", default=[],
                       help="SLO target (repeatable). start: evaluated "
                            "against the server's serve.* metrics at "
                            "shutdown, e.g. "
                            "'serve.admission_latency.p99 <= 0.05'; "
                            "churn: per-epoch targets as in 'repro churn'")

    # Observability and execution flags are global: every subcommand
    # exports the same way (the whole run records into one session
    # registry/trace sink) and shares the worker-pool setting.
    for sub in subparsers.choices.values():
        sub.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write the run's metrics snapshot as JSON (repro.metrics/1)")
        sub.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write the run's structured trace as JSONL (repro.trace/1)")
        sub.add_argument(
            "--workers", metavar="N", type=_parse_workers, default=None,
            help="worker processes for parallel evaluation (positive "
                 "integer or 'auto' = one per CPU; default auto). Results "
                 "are identical for any worker count.")
        sub.add_argument(
            "--no-route-cache", action="store_true",
            help="disable the version-keyed route cache (escape hatch; "
                 "results are identical either way, only slower)")
        sub.add_argument(
            "--no-mux-kernel", action="store_true",
            help="route backup multiplexing through the per-pair "
                 "reference engine instead of the vectorized "
                 "packed-bitset kernel (escape hatch; results are "
                 "identical either way, only slower)")

    return parser


def _run_stats(args: argparse.Namespace) -> str:
    """Re-run one failure scenario end to end and summarise the metrics."""
    from repro.channels.qos import FaultToleranceQoS
    from repro.experiments.setup import load_network
    from repro.faults.models import FailureScenario
    from repro.protocol import ProtocolConfig, ProtocolSimulation

    config = _config(args)
    qos = FaultToleranceQoS(num_backups=args.backups, mux_degree=args.mux)
    network, _ = load_network(config, qos)
    links = sorted(network.topology.links(), key=str)[:args.failures]
    simulation = ProtocolSimulation(network, ProtocolConfig(), seed=0,
                                    trace=True)
    simulation.inject_scenario(FailureScenario.of_links(links), at=1.0)
    # Explicit timed injections on top of (or instead of, with
    # --failures 0) the default scenario.
    for time, component in args.fail_at:
        simulation.fail(component, at=time)
    for time, component in args.repair_at:
        simulation.repair(component, at=time)
    simulation.run(until=args.horizon)
    recovered = simulation.metrics.recovered_count()
    worst = simulation.metrics.max_service_disruption()
    failed = ", ".join(str(link) for link in links)
    header = (
        f"repro stats — {config.label}, mux={args.mux}, "
        f"{args.backups} backup(s); failed: {failed}\n"
        f"connections recovered via backup: {recovered}"
        + (f"; worst service disruption: {worst:g}" if worst is not None
           else "")
    )
    return (
        header + "\n\n"
        + format_metrics(get_registry().snapshot(), title="Metrics summary")
    )


def _load_single_spec(path: str, kind: str):
    """Load a one-cell spec file for a single-run subcommand."""
    from repro.scenario import load_cells

    try:
        cells = load_cells(path)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if len(cells) != 1:
        raise SystemExit(
            f"{path}: expected exactly one scenario cell, got "
            f"{len(cells)} (run lattices via 'repro matrix run')"
        )
    spec = cells[0]
    if spec.workload.kind != kind:
        raise SystemExit(
            f"{path}: expected a {kind!r} workload, got "
            f"{spec.workload.kind!r}"
        )
    return spec


def _run_churn(args: argparse.Namespace) -> tuple[str, int]:
    """Seeded churn run; exit code 1 on any epoch invariant violation."""
    import dataclasses
    import json

    from repro.core.bcp import BCPNetwork
    from repro.scenario import (
        ProtocolSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
        churn_config_from_spec,
    )
    from repro.workload import ChurnEngine

    if args.spec:
        spec = _load_single_spec(args.spec, "churn")
    else:
        spec = ScenarioSpec(
            name=f"cli/churn/{args.topology}{args.rows}x{args.cols}",
            topology=TopologySpec(
                family=args.topology, rows=args.rows, cols=args.cols,
                capacity=args.capacity,
            ),
            workload=WorkloadSpec(
                kind="churn",
                arrival_rate=args.arrival_rate,
                holding_time=args.holding_time,
                duration=args.duration,
                bandwidth=args.bandwidth,
                batch_window=args.batch_window,
                epoch_interval=args.epoch_interval,
                eval_scenarios=args.eval_scenarios,
                pairs=args.pairs,
            ),
            protocol=ProtocolSpec(
                num_backups=args.backups, mux_degree=args.mux,
            ),
            seed=args.seed,
        )
    # Per-epoch SLO evaluation stays a CLI concern: matrix cells judge
    # their SLOs once against the finished cell's snapshot instead.
    churn_config = dataclasses.replace(
        churn_config_from_spec(spec, workers=args.workers),
        slos=tuple(args.slo),
    )
    network = BCPNetwork(spec.topology.build())
    engine = ChurnEngine(network, churn_config)
    stats = engine.run()
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            json.dump(stats.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    lines = [
        f"repro churn — {spec.topology.label}, "
        f"mux={spec.protocol.mux_degree}, "
        f"{spec.protocol.num_backups} backup(s), seed {spec.seed}, "
        f"rate {spec.workload.arrival_rate:g}/t, "
        f"hold {spec.workload.holding_time:g}, "
        f"duration {spec.workload.duration:g}",
        f"arrivals: {stats.arrivals} in {stats.batches} batches; "
        f"established: {stats.established}; blocked: {stats.blocked} "
        f"(P_block {stats.blocking_probability:.4f}); "
        f"departures: {stats.departures}",
        f"connections: peak {stats.peak_connections}, "
        f"final {stats.final_connections}; epochs audited: {stats.epochs}",
    ]
    if stats.recovery.scenarios:
        r_fast = stats.recovery.r_fast
        lines.append(
            f"recovery under churn: {stats.recovery.scenarios} scenarios, "
            f"R_fast "
            + (f"{r_fast:.4f}" if r_fast is not None else "N/A")
        )
    if stats.clean:
        lines.append("invariants: every epoch boundary clean")
    else:
        lines.append(
            f"invariants VIOLATED ({len(stats.audit_violations)} findings):"
        )
        lines.extend(f"  {finding}" for finding in stats.audit_violations)
    if stats.slo_breaches:
        lines.append(
            f"SLOs BREACHED ({len(stats.slo_breaches)} findings):"
        )
        lines.extend(f"  {finding}" for finding in stats.slo_breaches)
    elif churn_config.slos:
        lines.append(
            f"SLOs: all {len(churn_config.slos)} target(s) met at "
            f"every epoch boundary"
        )
    # Gate on ``healthy`` (invariants AND SLOs), not ``clean`` — gating
    # on clean alone waved breached SLOs through whenever the breach
    # list was populated by a path other than the --slo flags.
    code = 0 if stats.healthy else 1
    lines.append("")
    lines.append(format_metrics(get_registry().snapshot(),
                                title="Churn metrics"))
    return "\n".join(lines), code


def _run_serve(args: argparse.Namespace) -> tuple[str, int]:
    """Always-on admission service: run the server, or drive one as a
    churn client / one-shot management call."""
    import json

    from repro.serve import AdmissionServer, RemoteNetwork, ServeClient

    if args.action == "start":
        if not args.spec or not args.bind:
            raise SystemExit("repro serve start requires --spec and --bind")
        spec = _load_single_spec(args.spec, "churn")
        server = AdmissionServer(spec, workers=args.workers)
        restored = 0
        if args.restore:
            restored = server.restore(args.restore)
        # Blocks until a client sends ``shutdown``; SLOs over the
        # serve.* metrics gate the exit code afterwards.
        server.serve_forever(args.bind)
        breaches = server.slo_breaches(tuple(args.slo))
        lines = [
            f"repro serve — {spec.topology.label} on {args.bind}, "
            f"workers {args.workers}"
            + (f", restored {restored} connection(s)" if args.restore
               else ""),
            f"shut down with {server.network.num_connections} live "
            f"connection(s)",
        ]
        if breaches:
            lines.append(f"SLOs BREACHED ({len(breaches)} findings):")
            lines.extend(f"  {finding}" for finding in breaches)
        elif args.slo:
            lines.append(f"SLOs: all {len(args.slo)} target(s) met")
        lines.append("")
        lines.append(format_metrics(server.registry.snapshot(),
                                    title="Serve metrics"))
        return "\n".join(lines), 1 if breaches else 0

    if not args.connect:
        raise SystemExit(f"repro serve {args.action} requires --connect")

    if args.action == "churn":
        import dataclasses

        from repro.scenario import churn_config_from_spec
        from repro.workload import ChurnEngine

        network = RemoteNetwork(ServeClient(args.connect), retry_window=5.0)
        spec = network.spec
        # The workload comes from the server's hello spec, so both sides
        # agree on every seeded draw without shipping a spec file around.
        churn_config = dataclasses.replace(
            churn_config_from_spec(spec, workers=args.workers),
            slos=tuple(args.slo),
        )
        engine = ChurnEngine(network, churn_config)
        stats = engine.run(until=args.until)
        network.client.close()
        if args.stats_out:
            with open(args.stats_out, "w") as handle:
                json.dump(stats.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        lines = [
            f"repro serve churn — {spec.topology.label} via {args.connect}, "
            f"seed {spec.seed}"
            + (f", paused at t={args.until:g}" if args.until is not None
               else ""),
            f"arrivals: {stats.arrivals} in {stats.batches} batches; "
            f"established: {stats.established}; blocked: {stats.blocked}; "
            f"departures: {stats.departures}; epochs audited: {stats.epochs}",
        ]
        if stats.clean:
            lines.append("invariants: every epoch boundary clean")
        else:
            lines.append(
                f"invariants VIOLATED "
                f"({len(stats.audit_violations)} findings):"
            )
            lines.extend(f"  {finding}" for finding in stats.audit_violations)
        if stats.slo_breaches:
            lines.append(
                f"SLOs BREACHED ({len(stats.slo_breaches)} findings):"
            )
            lines.extend(f"  {finding}" for finding in stats.slo_breaches)
        elif churn_config.slos:
            lines.append(
                f"SLOs: all {len(churn_config.slos)} target(s) met at "
                f"every epoch boundary"
            )
        return "\n".join(lines), 0 if stats.healthy else 1

    client = ServeClient(args.connect)
    hello = client.connect()
    try:
        if args.action == "ping":
            return (
                f"repro serve — {args.connect} alive ({hello['schema']}, "
                f"{hello['connections']} connection(s), "
                f"workers {hello['workers']})"
            ), 0
        if args.action == "snapshot":
            if not args.snapshot_out:
                raise SystemExit(
                    "repro serve snapshot requires --snapshot-out"
                )
            response = client.call("snapshot", path=args.snapshot_out)
            return (
                f"server wrote {response['path']} "
                f"({response['connections']} connection(s))"
            ), 0
        assert args.action == "shutdown"
        response = client.call("shutdown")
        return (
            f"server at {args.connect} shut down "
            f"({response['connections']} connection(s) at exit)"
        ), 0
    finally:
        client.close()


def _format_violations(violations) -> list[str]:
    return [
        f"  [{v.time:10.3f}] {v.invariant} @ {v.subject}: {v.detail}"
        for v in violations
    ]


def _run_chaos(args: argparse.Namespace) -> tuple[str, int]:
    """Chaos campaign / artifact replay; exit code 1 on any violation
    or SLO breach."""
    import json
    import os

    from repro.chaos import (
        artifact_payload,
        build_campaign,
        campaign_summary,
        load_artifact,
        replay_artifact,
        run_campaign,
        shrink_failing_run,
        write_artifact,
    )

    if args.replay:
        payload = load_artifact(args.replay)
        result = replay_artifact(payload)
        lines = [
            f"repro chaos — replay of {args.replay} "
            f"(profile {result.schedule.profile}, "
            f"seed {result.schedule.seed})",
            f"events: {len(result.schedule.events)}; "
            f"final time: {result.final_time:g}; "
            f"drained: {result.drained}",
        ]
        if result.violations:
            lines.append(f"violations reproduced: {len(result.violations)}")
            lines.extend(_format_violations(result.violations))
        else:
            lines.append("no violations: the artifact did not reproduce")
        return "\n".join(lines), (1 if result.violations else 0)

    from repro.scenario import (
        ProtocolSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
        chaos_environment_from_spec,
    )

    if args.spec:
        spec = _load_single_spec(args.spec, "chaos")
    else:
        spec = ScenarioSpec(
            name=f"cli/chaos/{args.topology}{args.rows}x{args.cols}",
            topology=TopologySpec(
                family=args.topology, rows=args.rows, cols=args.cols,
                # The chaos harness has always pinned 200 simplex units
                # regardless of family; keep campaigns replayable.
                capacity=(args.capacity if args.capacity is not None
                          else 200.0),
            ),
            workload=WorkloadSpec(
                kind="chaos",
                campaign_size=args.campaign_size,
                connections=args.connections,
                profiles=args.profiles or (),
            ),
            protocol=ProtocolSpec(
                num_backups=args.backups, mux_degree=args.mux,
            ),
            seed=args.seed,
        )
    environment = chaos_environment_from_spec(spec)
    config = spec.protocol.config(
        debug_double_release=args.plant_bug,
        debug_unguarded_switchover=args.plant_race,
    )
    network = environment.build()
    profiles = spec.workload.profiles or None
    schedules = (
        build_campaign(spec.seed, spec.workload.campaign_size, network,
                       config, profiles=profiles)
        if profiles is not None
        else build_campaign(spec.seed, spec.workload.campaign_size,
                            network, config)
    )
    results = run_campaign(schedules, network, config, workers=args.workers)
    summary = campaign_summary(results)
    profile_list = ", ".join(profiles) if profiles is not None else "all"
    lines = [
        f"repro chaos — {environment.rows}x{environment.cols} "
        f"{environment.topology}, {environment.connections} connections, "
        f"seed {spec.seed}, {summary['runs']} schedules "
        f"(profiles: {profile_list})",
        f"recovered: {summary['recovered']}; "
        f"unrecoverable: {summary['unrecoverable']}; "
        f"rejoins: {summary['rejoins']}; "
        f"undrained: {summary['undrained']}",
    ]
    # Campaign-level SLOs: evaluated against the session registry (all
    # per-run registries are folded into it by the campaign's ordered
    # merge).  The symbolic 'gamma' threshold resolves to the network's
    # worst-case analytic recovery bound.
    slo_lines: list[str] = []
    slo_breaches = []
    if args.slo:
        from repro.analysis.delay import connection_delay_bound
        from repro.obs import SLOEngine, format_results

        gamma = max(
            (connection_delay_bound(connection, config.rcc.max_delay)
             for connection in network.connections()),
            default=0.0,
        )
        slo_results = SLOEngine(args.slo).evaluate(
            get_registry().snapshot(), constants={"gamma": gamma}
        )
        slo_breaches = [r for r in slo_results if r.ok is False]
        slo_lines = ["", format_results(
            slo_results, title=f"Campaign SLOs (gamma = {gamma:g})")]
        if slo_breaches:
            os.makedirs(args.artifact_dir, exist_ok=True)
            flight_path = os.path.join(
                args.artifact_dir, f"flight-seed{spec.seed}-slo.json")
            from repro.obs import FLIGHT_SCHEMA

            with open(flight_path, "w") as handle:
                json.dump({
                    "schema": FLIGHT_SCHEMA,
                    "reason": "slo-breach",
                    "capacity": 0,
                    "events": [],
                    "spans": [],
                    "context": {
                        "seed": spec.seed,
                        "gamma": gamma,
                        "breaches": [r.to_dict() for r in slo_breaches],
                        "summary": summary,
                    },
                }, handle, indent=2, sort_keys=True)
                handle.write("\n")
            slo_lines.append(f"SLO breach artifact -> {flight_path}")

    failing = [
        (index, result)
        for index, result in enumerate(results)
        if result.violations
    ]
    if not failing:
        lines.append("invariants: all runs clean")
        lines.extend(slo_lines)
        return "\n".join(lines), (1 if slo_breaches else 0)
    lines.append(
        f"invariants VIOLATED in {len(failing)}/{summary['runs']} runs: "
        + ", ".join(
            f"{name} x{count}"
            for name, count in sorted(summary["violations"].items())
        )
    )
    os.makedirs(args.artifact_dir, exist_ok=True)
    for index, result in failing[: args.max_artifacts]:
        shrunk = shrink_failing_run(result, network, config)
        path = os.path.join(
            args.artifact_dir, f"chaos-seed{spec.seed}-run{index}.json"
        )
        write_artifact(
            path, artifact_payload(shrunk, config, environment)
        )
        lines.append(
            f"run {index} ({result.schedule.profile}): shrunk "
            f"{shrunk.original_events} -> {shrunk.minimal_events} events "
            f"in {shrunk.runs} replays -> {path}"
        )
        lines.extend(_format_violations(shrunk.violations))
        # The flight recording (last trace events + spans before the
        # violation) rides next to the shrunk schedule.
        if result.flight is not None:
            flight_path = os.path.join(
                args.artifact_dir,
                f"flight-seed{spec.seed}-run{index}.json",
            )
            with open(flight_path, "w") as handle:
                json.dump(result.flight, handle, indent=2, sort_keys=True)
                handle.write("\n")
            lines.append(f"  flight recording -> {flight_path}")
    skipped = len(failing) - min(len(failing), args.max_artifacts)
    if skipped:
        lines.append(f"({skipped} further failing runs not shrunk; "
                     f"raise --max-artifacts to export them)")
    lines.extend(slo_lines)
    return "\n".join(lines), 1


def _parse_shard(text: str) -> tuple[int, int]:
    """``I/N`` -> (index, count); bounds are validated by select_shard."""
    try:
        index_text, count_text = text.split("/")
        return int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(
            f"--shard must be I/N (e.g. 0/2), got {text!r}"
        ) from None


def _run_matrix(args: argparse.Namespace) -> tuple[str, int]:
    """Scenario-matrix actions: expand/diff a lattice, or run its cells."""
    import json
    import os

    from repro.scenario import (
        append_trajectory,
        diff_cells,
        load_cells,
        run_cells,
        select_shard,
        write_lattice,
    )
    from repro.util.tables import format_table

    if args.action == "diff":
        if len(args.paths) != 2:
            raise SystemExit("repro matrix diff takes exactly two PATHs")
        try:
            old = load_cells(args.paths[0])
            new = load_cells(args.paths[1])
        except ValueError as error:
            raise SystemExit(str(error)) from None
        added, removed, changed = diff_cells(old, new)
        lines = [
            f"repro matrix diff — {args.paths[0]} ({len(old)} cells) vs "
            f"{args.paths[1]} ({len(new)} cells)"
        ]
        for title, names in (("added", added), ("removed", removed),
                             ("changed", changed)):
            if names:
                lines.append(f"{title} ({len(names)}):")
                lines.extend(f"  {name}" for name in names)
        if not (added or removed or changed):
            lines.append("lattices are identical")
            return "\n".join(lines), 0
        return "\n".join(lines), 1

    if len(args.paths) != 1:
        raise SystemExit(f"repro matrix {args.action} takes exactly "
                         f"one PATH")
    path = args.paths[0]
    try:
        cells = load_cells(path)
    except ValueError as error:
        raise SystemExit(str(error)) from None

    if args.action == "expand":
        if args.validate:
            return (
                f"repro matrix expand — {path}: "
                f"{len(cells)} cell(s) valid", 0,
            )
        if args.out:
            write_lattice(args.out, cells)
            return (
                f"repro matrix expand — {path}: {len(cells)} cell(s) "
                f"-> {args.out}", 0,
            )
        table = format_table(
            ["cell", "kind", "seed"],
            [[cell.name, cell.workload.kind, str(cell.seed)]
             for cell in cells],
            title=f"Scenario lattice — {path} ({len(cells)} cells)",
        )
        return table, 0

    # action == "run"
    total = len(cells)
    shard_note = ""
    if args.shard:
        index, count = _parse_shard(args.shard)
        try:
            cells = select_shard(cells, index, count)
        except ValueError as error:
            raise SystemExit(str(error)) from None
        shard_note = f", shard {index}/{count}: {len(cells)} cell(s)"
    results = run_cells(cells, workers=args.workers)
    if args.results_out:
        with open(args.results_out, "w") as handle:
            for result in results:
                handle.write(result.to_json() + "\n")
    failing = [result for result in results if not result.ok]
    lines = [
        f"repro matrix run — {path}: {total} cell(s){shard_note}; "
        f"{len(results) - len(failing)} ok, {len(failing)} failing"
    ]
    rows = []
    for result in results:
        measures = " ".join(
            f"{key}={value:.4f}"
            for key, value in sorted(result.measures.items())
        )
        rows.append([
            result.spec.name,
            "ok" if result.ok
            else f"FAIL({len(result.violations)}v/"
                 f"{len(result.slo_breaches)}s)",
            measures or "-",
        ])
    lines.append(format_table(["cell", "status", "measures"], rows))
    for result in failing:
        lines.append(f"{result.spec.name}:")
        lines.extend(f"  {finding}" for finding in result.violations)
        lines.extend(f"  SLO breach: {finding}"
                     for finding in result.slo_breaches)
    # Flight recordings of failing chaos runs are the diagnosis
    # artifacts CI uploads.
    if args.artifact_dir:
        dumped = 0
        os.makedirs(args.artifact_dir, exist_ok=True)
        for result in failing:
            safe = result.spec.name.replace("/", "__")
            for index, flight in enumerate(result.flights):
                flight_path = os.path.join(
                    args.artifact_dir, f"{safe}-flight{index}.json")
                with open(flight_path, "w") as handle:
                    json.dump(flight, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                dumped += 1
            result_path = os.path.join(args.artifact_dir,
                                       f"{safe}-result.json")
            with open(result_path, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        if failing:
            lines.append(
                f"{len(failing)} failing cell dump(s) + {dumped} flight "
                f"recording(s) -> {args.artifact_dir}"
            )
    if not args.no_trajectory:
        appended = append_trajectory(results, args.trajectory, args.label)
        lines.append(
            f"trajectory: appended {appended} row(s) -> {args.trajectory}"
        )
    return "\n".join(lines), (1 if failing else 0)


def _run_obs(args: argparse.Namespace) -> tuple[str, int]:
    """Offline observability actions — no simulation is run."""
    import json

    if args.action == "episodes":
        from repro.obs import EpisodeReconstructor

        if not args.input:
            raise SystemExit("repro obs episodes requires --input "
                             "(a --trace-out JSONL containing spans)")
        reconstructor = EpisodeReconstructor().add_file(args.input)
        summary = reconstructor.summary()
        lines = [
            f"repro obs episodes — {args.input}: "
            f"{summary['episodes']} episode(s); "
            f"{summary['recovered']} recovered, "
            f"{summary['unrecoverable']} unrecoverable, "
            f"{summary['unresolved']} unresolved"
            + (f"; worst disruption {summary['max_total']:.3f}"
               if summary["max_total"] is not None else ""),
            "",
            reconstructor.format_table(),
        ]
        if args.episodes_out:
            with open(args.episodes_out, "w") as handle:
                for episode in reconstructor.episodes:
                    handle.write(
                        json.dumps(episode.to_dict(), sort_keys=True) + "\n"
                    )
            lines.append(f"episodes written to {args.episodes_out}")
        violations = reconstructor.violations()
        if violations:
            lines.append(
                f"Γ BOUND VIOLATED by {len(violations)} episode(s): "
                + ", ".join(
                    f"episode {e.span_id} "
                    f"({e.gamma:.3f} > {e.bound:.3f})"
                    for e in violations
                )
            )
            return "\n".join(lines), 1
        if summary["recovered"]:
            lines.append("Γ bound respected by every recovered episode")
        return "\n".join(lines), 0

    if args.action == "slo":
        from repro.obs import SLOEngine, format_results

        if not args.input:
            raise SystemExit("repro obs slo requires --input "
                             "(a repro.metrics/1 snapshot)")
        if not args.slo:
            raise SystemExit("repro obs slo requires at least one "
                             "--slo SPEC")
        with open(args.input) as handle:
            snapshot = json.load(handle)
        constants = {} if args.gamma is None else {"gamma": args.gamma}
        results = SLOEngine(args.slo).evaluate(snapshot,
                                               constants=constants)
        breached = any(result.ok is False for result in results)
        return (
            format_results(results, title=f"SLOs — {args.input}"),
            1 if breached else 0,
        )

    # action == "trajectory"
    from repro.util.tables import format_table

    path = args.input or "benchmarks/TRAJECTORY.jsonl"
    try:
        with open(path) as handle:
            entries = []
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise SystemExit(
                        f"{path}:{number}: malformed trajectory line: "
                        f"{error}"
                    ) from None
    except FileNotFoundError:
        raise SystemExit(f"trajectory store not found: {path}") from None
    if not entries:
        return f"repro obs trajectory — {path}: empty store", 0
    benches = sorted({
        name for entry in entries for name in entry.get("normalized", {})
    })
    labels = [
        str(entry.get("label", f"entry{index}"))
        for index, entry in enumerate(entries)
    ]
    rows = []
    for bench in benches:
        row: list[str] = [bench]
        for entry in entries:
            value = entry.get("normalized", {}).get(bench)
            row.append(f"{value:.4f}" if value is not None else "-")
        rows.append(row)
    table = format_table(
        ["bench"] + labels, rows,
        title=f"Benchmark trajectory — {path} "
              f"(medians normalised by the calibration anchor)",
    )
    return table, 0


def _run_command(args: argparse.Namespace) -> "str | tuple[str, int]":
    config = _config(args) if hasattr(args, "topology") else None
    if args.command == "figure9":
        return run_figure9(config, num_backups=args.backups,
                           mux_degrees=args.degrees,
                           checkpoints=args.checkpoints).format()
    if args.command == "table1":
        return run_table1(config, num_backups=args.backups,
                          mux_degrees=args.degrees,
                          double_node_samples=args.double_samples,
                          workers=args.workers).format()
    if args.command == "table2":
        return run_table2(config, num_backups=args.backups,
                          classes=args.classes,
                          double_node_samples=args.double_samples,
                          workers=args.workers).format()
    if args.command == "table3":
        return run_table3(config, num_backups=args.backups,
                          mux_degrees=args.degrees,
                          double_node_samples=args.double_samples,
                          workers=args.workers).format()
    if args.command == "delay-bound":
        return run_delay_bound(config, num_backups=args.backups,
                               sample_connections=args.connections,
                               workers=args.workers).format()
    if args.command == "rcc-sizing":
        return run_rcc_sizing(config).format()
    if args.command == "reliability":
        return run_reliability(config, workers=args.workers).format()
    if args.command == "inhomogeneous":
        return run_inhomogeneous(rows=args.rows, cols=args.cols,
                                 mux_degree=args.mux,
                                 workers=args.workers).format()
    if args.command == "message-loss":
        return run_message_loss(config, message_rate=args.rate,
                                sample_connections=args.connections,
                                workers=args.workers).format()
    if args.command == "baselines":
        return run_baseline_comparison(config,
                                       bcp_mux_degree=args.mux).format()
    if args.command == "scaling":
        return run_scaling(mux_degree=args.mux,
                           torus_sizes=args.sizes).format()
    if args.command == "ablations":
        return run_ablations(config, mux_degree=args.mux,
                             workers=args.workers).format()
    if args.command == "report":
        from repro.experiments.report import generate_report

        result = generate_report(
            config, double_node_samples=args.double_samples,
            include_double_backups=(args.topology == "torus"),
            workers=args.workers,
        )
        target = result.save(args.output)
        return (
            f"wrote {target} ({len(result.sections)} sections, "
            f"{len(result.errors)} failures)"
        )
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "churn":
        return _run_churn(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "matrix":
        return _run_matrix(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "all":
        sections = []
        for backups in (1, 2):
            if args.topology == "mesh" and backups == 2:
                continue  # topologically impossible (paper Section 7.1)
            sections.append(
                run_table1(config, num_backups=backups,
                           double_node_samples=args.double_samples,
                           workers=args.workers).format()
            )
        sections.append(
            run_table2(config,
                       double_node_samples=args.double_samples,
                       workers=args.workers).format())
        sections.append(
            run_table3(config,
                       double_node_samples=args.double_samples,
                       workers=args.workers).format())
        sections.append(run_figure9(config).format())
        sections.append(run_delay_bound(config, workers=args.workers).format())
        sections.append(run_rcc_sizing(config).format())
        sections.append(run_reliability(config, workers=args.workers).format())
        return "\n\n".join(sections)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_route_cache:
        from repro.routing import set_route_cache_enabled

        set_route_cache_enabled(False)
    if args.no_mux_kernel:
        from repro.core import set_mux_kernel_enabled

        set_mux_kernel_enabled(False)
    # Each invocation observes itself through a fresh session registry
    # (and, with --trace-out, a shared trace sink), so exported counters
    # reflect exactly this run and are reproducible run-to-run.
    registry = MetricsRegistry()
    sink = TraceLog(enabled=True) if args.trace_out else None
    with obs_session(registry, sink):
        output = _run_command(args)
    # Commands that gate CI (chaos) return (text, exit_code); the rest
    # return plain text and exit 0.
    code = 0
    if isinstance(output, tuple):
        output, code = output
    print(output)
    if args.metrics_out:
        write_metrics(registry, args.metrics_out, command=args.command)
    if sink is not None:
        write_trace(sink, args.trace_out)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
