"""Vectorized multiplexing kernel: packed-bitset Π-set maintenance.

The per-pair hot loop of :class:`~repro.core.multiplexing.LinkMuxState`
performs one Python-level conflict test per backup already on a link for
every admission, teardown, and preview.  Section 6's scalability argument
(O(n) incremental maintenance versus the O(n²) recompute) survives that
constant factor at paper scale, but not at 10⁵–10⁶ live backups.  This
module keeps the same O(n) update contract and replaces the n Python pair
tests with *one vectorized conflict test per link*:

* :class:`ComponentArena` — a process-wide interner mapping components to
  bit positions and each distinct primary component set to one row of a
  shared numpy ``uint64`` arena (grown geometrically in both rows and
  words).  ``sc(M_i, M_j)`` for one candidate against many rows is a
  single ``bitwise_count(words[rows] & words[row]).sum(axis=1)``.
* :class:`VectorLinkMux` — the multiplexing state of one link with
  array-resident per-entry columns (``channel_id``, ``bandwidth``,
  ``mux_degree``, ``requirement``, arena row) plus a per-link
  *distinct-row table*: entries carry a slot into the link's list of
  distinct arena rows, so a conflict test popcounts once per distinct
  primary (bounded by the topology, not the admission count — churn
  re-routes the same pairs) and fans out per entry with one gather.
  ``add`` / ``remove`` /
  ``preview_add`` / ``psi_size`` are bit-for-bit equivalent to the
  per-pair reference implementation: requirement sums use a sequential
  left fold (``np.cumsum``), per-entry increments/decrements are the same
  single IEEE operations the reference applies, and maxima are exact, so
  ``spare_required`` and every Ψ size match the reference byte for byte
  (property-tested over randomized add/remove sequences).

The kernel covers the paper's integer multiplexability test (``sc < α``,
the default :class:`~repro.core.overlap.OverlapPolicy`).  Exact-``S``
policies keep the scalar reference path — their verdicts hinge on libm
``pow`` behaviour that the kernel will not re-derive in float32/float64
array form.  The reference engine remains the validation oracle, exactly
like ``reference_shortest_path`` does for the flat routing kernels.

Process-wide escape hatch: ``--no-mux-kernel`` on the CLI (mirroring
``--no-route-cache``) routes every new engine through the reference
per-pair implementation; results are identical either way, only slower.
"""

from __future__ import annotations

from repro.network.components import LinkId
from repro.obs.registry import get_registry
from repro.util.validation import check_positive

try:  # pragma: no cover - import guard exercised only without numpy
    import numpy as np

    _HAVE_NUMPY = hasattr(np, "bitwise_count")
except Exception:  # pragma: no cover - numpy is baked into the image
    np = None
    _HAVE_NUMPY = False

__all__ = [
    "ComponentArena",
    "VectorLinkMux",
    "kernel_available",
    "mux_kernel_enabled",
    "set_mux_kernel_enabled",
    "reference_link_state",
]

#: Process-wide escape hatch (``--no-mux-kernel`` on the CLI).  Consulted
#: when a :class:`~repro.core.multiplexing.MultiplexingEngine` is built;
#: live engines keep the representation they were built with.
_MUX_KERNEL_ENABLED = True


def set_mux_kernel_enabled(enabled: bool) -> bool:
    """Enable/disable the vectorized kernel for *new* multiplexing
    engines; returns the previous state."""
    global _MUX_KERNEL_ENABLED
    previous = _MUX_KERNEL_ENABLED
    _MUX_KERNEL_ENABLED = bool(enabled)
    return previous


def mux_kernel_enabled() -> bool:
    """Whether new engines default to the vectorized kernel."""
    return _MUX_KERNEL_ENABLED


def kernel_available() -> bool:
    """Whether the numpy backend (with ``bitwise_count``) is importable."""
    return _HAVE_NUMPY


class ComponentArena:
    """Packed-bitset interner over network components.

    Components (nodes/links) are assigned bit positions on first sight;
    each distinct primary-path component *set* is interned to one row of
    a shared 2-D ``uint64`` arena.  Both dimensions grow geometrically,
    so a settled workload stops allocating.  The arena is append-only:
    rows are never evicted, because distinct primary paths are bounded by
    the topology (not by churn volume) and teardown must not invalidate
    the rows other live backups reference.
    """

    __slots__ = ("_bits", "_rows", "_sets", "_words", "_width")

    #: Initial geometry: 64 rows x 4 words (256 component bits).
    _INITIAL_ROWS = 64
    _INITIAL_WORDS = 4

    def __init__(self) -> None:
        if not _HAVE_NUMPY:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy with bitwise_count is required")
        self._bits: dict[object, int] = {}
        self._rows: dict[frozenset, int] = {}
        self._sets: list[frozenset] = []
        self._words = np.zeros(
            (self._INITIAL_ROWS, self._INITIAL_WORDS), dtype=np.uint64
        )
        #: Words in use (<= allocated width); kernels slice to this.
        self._width = 1

    # -- geometry ------------------------------------------------------
    def __len__(self) -> int:
        """Distinct components interned so far (bit positions in use)."""
        return len(self._bits)

    @property
    def rows(self) -> int:
        """Distinct primary component sets interned so far."""
        return len(self._sets)

    @property
    def nbytes(self) -> int:
        """Allocated arena size in bytes."""
        return self._words.nbytes

    def components(self, row: int) -> frozenset:
        """The component set interned at ``row``."""
        return self._sets[row]

    def _grow_rows(self, needed: int) -> None:
        allocated = self._words.shape[0]
        if needed <= allocated:
            return
        grown = np.zeros(
            (max(needed, allocated * 2), self._words.shape[1]),
            dtype=np.uint64,
        )
        grown[:allocated] = self._words
        self._words = grown

    def _grow_width(self, needed_words: int) -> None:
        allocated = self._words.shape[1]
        if needed_words > allocated:
            grown = np.zeros(
                (self._words.shape[0], max(needed_words, allocated * 2)),
                dtype=np.uint64,
            )
            grown[:, :allocated] = self._words
            self._words = grown
        if needed_words > self._width:
            self._width = needed_words

    # -- interning -----------------------------------------------------
    def row(self, components: frozenset) -> int:
        """The arena row of ``components``, interning it if new."""
        cached = self._rows.get(components)
        if cached is not None:
            return cached
        bits = self._bits
        positions = []
        for component in components:
            bit = bits.get(component)
            if bit is None:
                bit = len(bits)
                bits[component] = bit
            positions.append(bit)
        row = len(self._sets)
        self._grow_rows(row + 1)
        if positions:
            self._grow_width((max(positions) >> 6) + 1)
        words = self._words[row]
        for bit in positions:
            words[bit >> 6] |= np.uint64(1 << (bit & 63))
        self._rows[components] = row
        self._sets.append(components)
        return row

    # -- kernels -------------------------------------------------------
    def shared_counts(self, rows, row: int):
        """``sc`` between the set at ``row`` and each set in ``rows`` —
        the one-vectorized-conflict-test-per-link primitive."""
        words = self._words[:, : self._width]
        return np.bitwise_count(words[rows] & words[row]).sum(
            axis=1, dtype=np.int64
        )


def _left_fold_sum(initial: float, values) -> float:
    """``((initial + v0) + v1) + ...`` — the reference engine accumulates
    requirements with a sequential left fold, and byte-identity demands
    the same association (``np.cumsum`` is a sequential accumulate, not a
    pairwise reduction)."""
    if values.size == 0:
        return initial
    acc = np.empty(values.size + 1, dtype=np.float64)
    acc[0] = initial
    acc[1:] = values
    return float(np.cumsum(acc)[-1])


class VectorLinkMux:
    """Multiplexing state of one link, array-resident.

    Drop-in replacement for the per-pair
    :class:`~repro.core.multiplexing.LinkMuxState` under an *integer*
    :class:`~repro.core.overlap.OverlapPolicy` (``exact=False``).  Entries
    live in registration order in parallel numpy columns; every query and
    mutation runs one vectorized pass over them instead of n Python pair
    tests, with IEEE-identical arithmetic (see module docstring).
    """

    __slots__ = (
        "link", "policy", "arena",
        "_ids", "_n",
        "_channel_ids", "_bandwidth", "_degree", "_requirement", "_row",
        "_rowslot", "_slot_of", "_distinct_rows", "_distinct_n",
        "_spare_required",
    )

    _INITIAL_CAPACITY = 8

    def __init__(self, link: LinkId, policy, arena: ComponentArena) -> None:
        if policy.exact:
            raise ValueError(
                "VectorLinkMux implements the integer multiplexability "
                "test only; exact-S policies use the reference "
                "LinkMuxState"
            )
        self.link = link
        self.policy = policy
        self.arena = arena
        self._ids: dict[int, int] = {}
        self._n = 0
        cap = self._INITIAL_CAPACITY
        self._channel_ids = np.zeros(cap, dtype=np.int64)
        self._bandwidth = np.zeros(cap, dtype=np.float64)
        self._degree = np.zeros(cap, dtype=np.int64)
        self._requirement = np.zeros(cap, dtype=np.float64)
        self._row = np.zeros(cap, dtype=np.int64)
        #: Per-entry index into this link's distinct-row table: shared
        #: counts are computed once per *distinct* primary set on the
        #: link, then gathered per entry — entries routinely share
        #: primaries, and distinct primaries through one link are
        #: bounded by the topology, not by the resident population.
        self._rowslot = np.zeros(cap, dtype=np.int64)
        self._slot_of: dict[int, int] = {}
        self._distinct_rows = np.zeros(cap, dtype=np.int64)
        #: Like the arena, the distinct-row table is append-only: a slot
        #: whose last entry left stays (costs one row in the per-link
        #: pass, bounded as above) so surviving slots never renumber.
        self._distinct_n = 0
        self._spare_required = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, channel_id: object) -> bool:
        return channel_id in self._ids

    def entries(self) -> list:
        """All backup entries, materialized in registration order.

        Entry objects are snapshots: the kernel does not maintain the
        per-entry ``conflicts`` sets (removal recomputes the conflict
        mask vectorized instead), so they are returned empty — use
        :meth:`conflict_ids` when the actual Π membership is needed.
        """
        return [self._materialize(pos) for pos in range(self._n)]

    def entry(self, channel_id: int):
        """The entry snapshot for one backup; raises ``KeyError``."""
        return self._materialize(self._ids[channel_id])

    def _materialize(self, pos: int):
        from repro.core.multiplexing import MuxEntry

        components = self.arena.components(int(self._row[pos]))
        entry = MuxEntry(
            channel_id=int(self._channel_ids[pos]),
            bandwidth=float(self._bandwidth[pos]),
            mux_degree=int(self._degree[pos]),
            primary_components=components,
            primary_count=len(components),
        )
        entry.requirement = float(self._requirement[pos])
        return entry

    def spare_required(self) -> float:
        """The pool size required by the current backup set (O(1))."""
        return self._spare_required

    def set_requirements(
        self, requirements: "dict[int, float]", spare_required: float
    ) -> None:
        """Overwrite per-entry requirements and the pool maximum verbatim.

        Same contract as
        :meth:`repro.core.multiplexing.LinkMuxState.set_requirements`:
        the incremental float columns depend on the add/remove history,
        so snapshot restore rebuilds the integer structure via
        :meth:`add` and then transplants the recorded floats here.
        """
        for channel_id, requirement in requirements.items():
            self._requirement[self._ids[channel_id]] = requirement
        self._spare_required = spare_required

    def _shared_with_all(self, row: int):
        """``sc`` between the set at ``row`` and every resident entry:
        one vectorized pass over the link's *distinct* primary sets,
        gathered out per entry."""
        row_shared = self.arena.shared_counts(
            self._distinct_rows[: self._distinct_n], row
        )
        return row_shared[self._rowslot[: self._n]]

    def spare_required_recomputed(self) -> float:
        """From-scratch recomputation — validation oracle and the naive
        baseline of Section 6 (O(n) vectorized passes, one per entry)."""
        n = self._n
        best = 0.0
        rows = self._row[:n]
        degrees = self._degree[:n]
        bandwidths = self._bandwidth[:n]
        for pos in range(n):
            shared = self._shared_with_all(int(rows[pos]))
            in_pi = self._pi_mask(int(degrees[pos]), degrees, shared)
            in_pi[pos] = False
            requirement = _left_fold_sum(
                float(bandwidths[pos]), bandwidths[in_pi]
            )
            best = max(best, requirement)
        return best

    def psi_size(self, channel_id: int) -> int:
        """|Ψ(B_i, ℓ)| — how many backups share spare with ``B_i``."""
        pos = self._ids[channel_id]
        degree = int(self._degree[pos])
        if degree <= 0 or self._n <= 1:
            return 0
        shared = self._shared_with_all(int(self._row[pos]))
        multiplexable = shared < degree
        multiplexable[pos] = False
        return int(multiplexable.sum())

    def psi_sizes_for_candidate(
        self,
        primary_components: frozenset,
        primary_count: int,
        mux_degrees: list[int],
        mask: int = 0,
    ) -> dict[int, int]:
        """|Ψ| a *new* backup would see on this link, per candidate degree
        (the forward-pass computation of the literal scheme)."""
        sizes = dict.fromkeys(mux_degrees, 0)
        if self._n == 0:
            return sizes
        shared = self._shared_with_all(self.arena.row(primary_components))
        for degree in mux_degrees:
            if degree > 0:
                sizes[degree] = int((shared < degree).sum())
        return sizes

    def conflict_ids(self, channel_id: int) -> set[int]:
        """Π(B_i, ℓ) membership, recomputed vectorized — what the
        reference engine maintains as ``MuxEntry.conflicts``."""
        pos = self._ids[channel_id]
        n = self._n
        shared = self._shared_with_all(int(self._row[pos]))
        in_pi = self._pi_mask(
            int(self._degree[pos]), self._degree[:n], shared
        )
        in_pi[pos] = False
        return {int(cid) for cid in self._channel_ids[:n][in_pi]}

    # ------------------------------------------------------------------
    # the vectorized pair tests
    # ------------------------------------------------------------------
    @staticmethod
    def _pi_mask(degree: int, other_degrees, shared):
        """``other ∈ Π(perspective)`` for every entry at once: priority
        filter ``ν_o ≤ ν_p`` and not multiplexable with ``B_p``."""
        if degree <= 0:
            return other_degrees <= degree
        return (other_degrees <= degree) & (shared >= degree)

    @staticmethod
    def _reverse_pi_mask(degree: int, other_degrees, shared):
        """``perspective ∈ Π(other)`` for every entry at once."""
        return (other_degrees >= degree) & (
            (other_degrees <= 0) | (shared >= other_degrees)
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def preview_add(
        self,
        bandwidth: float,
        mux_degree: int,
        primary_components: frozenset,
        primary_count: int,
        mask: int = 0,
    ) -> float:
        """Pool size this link would need if the described backup joined
        (pure query; one vectorized conflict test)."""
        check_positive(bandwidth, "bandwidth")
        n = self._n
        best = self._spare_required
        if n == 0:
            return max(best, bandwidth)
        shared = self._shared_with_all(self.arena.row(primary_components))
        degrees = self._degree[:n]
        in_pi = self._pi_mask(mux_degree, degrees, shared)
        new_requirement = _left_fold_sum(bandwidth, self._bandwidth[:n][in_pi])
        reverse = self._reverse_pi_mask(mux_degree, degrees, shared)
        if reverse.any():
            conflict_peak = float(self._requirement[:n][reverse].max())
            if conflict_peak + bandwidth > best:
                best = conflict_peak + bandwidth
        return max(best, new_requirement)

    def add(
        self,
        channel_id: int,
        bandwidth: float,
        mux_degree: int,
        primary_components: frozenset,
        primary_count: int,
        mask: int = 0,
    ) -> float:
        """Register a backup; returns the new required pool size.

        O(n) like the reference, but as one vectorized conflict test:
        the Π membership of the new entry and the reverse memberships of
        every existing entry come out of a single shared-count pass.
        """
        if channel_id in self._ids:
            raise ValueError(f"backup {channel_id} already on link {self.link}")
        check_positive(bandwidth, "bandwidth")
        row = self.arena.row(primary_components)
        n = self._n
        peak = self._spare_required
        requirement = bandwidth
        if n:
            shared = self._shared_with_all(row)
            degrees = self._degree[:n]
            in_pi = self._pi_mask(mux_degree, degrees, shared)
            requirement = _left_fold_sum(
                bandwidth, self._bandwidth[:n][in_pi]
            )
            reverse = self._reverse_pi_mask(mux_degree, degrees, shared)
            if reverse.any():
                grown = self._requirement[:n]
                grown[reverse] += bandwidth
                peak = max(peak, float(grown[reverse].max()))
        self._append(channel_id, bandwidth, mux_degree, requirement, row)
        self._spare_required = max(peak, requirement)
        return self._spare_required

    def remove(self, channel_id: int) -> float:
        """Deregister a backup; returns the new required pool size."""
        pos = self._ids.pop(channel_id, None)
        if pos is None:
            raise KeyError(f"backup {channel_id} not on link {self.link}")
        self._remove_at(pos)
        n = self._n
        self._spare_required = (
            float(self._requirement[:n].max()) if n else 0.0
        )
        return self._spare_required

    def remove_many(self, channel_ids: list[int]) -> float:
        """Deregister several backups in order; returns the final pool
        size (the bulk-teardown path: one call per touched link)."""
        for channel_id in channel_ids:
            pos = self._ids.pop(channel_id, None)
            if pos is None:
                raise KeyError(
                    f"backup {channel_id} not on link {self.link}"
                )
            self._remove_at(pos)
        n = self._n
        self._spare_required = (
            float(self._requirement[:n].max()) if n else 0.0
        )
        return self._spare_required

    # -- internals -----------------------------------------------------
    def _remove_at(self, pos: int) -> None:
        """Drop the entry at ``pos``, decrementing the survivors whose Π
        sets contained it (recomputed as one vectorized conflict test —
        the kernel stores no per-entry conflict sets)."""
        n = self._n
        row = int(self._row[pos])
        degree = int(self._degree[pos])
        bandwidth = float(self._bandwidth[pos])
        shared = self._shared_with_all(row)
        reverse = self._reverse_pi_mask(degree, self._degree[:n], shared)
        reverse[pos] = False
        if reverse.any():
            self._requirement[:n][reverse] -= bandwidth
        self._n = n - 1
        if pos == n - 1:
            return  # tail removal: nothing shifts (the churn common case)
        for column in (
            self._channel_ids, self._bandwidth, self._degree,
            self._requirement, self._row, self._rowslot,
        ):
            column[pos : n - 1] = column[pos + 1 : n]
        for cid, p in self._ids.items():
            if p > pos:
                self._ids[cid] = p - 1

    def _slot(self, row: int) -> int:
        """The distinct-row slot of ``row``, appending it if new."""
        slot = self._slot_of.get(row)
        if slot is not None:
            return slot
        slot = self._distinct_n
        if slot == self._distinct_rows.shape[0]:
            grown = np.zeros(slot * 2, dtype=np.int64)
            grown[:slot] = self._distinct_rows
            self._distinct_rows = grown
        self._distinct_rows[slot] = row
        self._slot_of[row] = slot
        self._distinct_n = slot + 1
        return slot

    def _append(
        self, channel_id: int, bandwidth: float, mux_degree: int,
        requirement: float, row: int,
    ) -> None:
        n = self._n
        if n == self._channel_ids.shape[0]:
            for name in (
                "_channel_ids", "_bandwidth", "_degree",
                "_requirement", "_row", "_rowslot",
            ):
                old = getattr(self, name)
                grown = np.zeros(old.shape[0] * 2, dtype=old.dtype)
                grown[:n] = old
                setattr(self, name, grown)
        self._channel_ids[n] = channel_id
        self._bandwidth[n] = bandwidth
        self._degree[n] = mux_degree
        self._requirement[n] = requirement
        self._row[n] = row
        self._rowslot[n] = self._slot(row)
        self._ids[channel_id] = n
        self._n = n + 1


def reference_link_state(
    state: VectorLinkMux, overlaps=None, space=None, conflicts: bool = True
):
    """Transplant a :class:`VectorLinkMux` into a per-pair reference
    :class:`~repro.core.multiplexing.LinkMuxState` with identical live
    state (entries, requirements, full conflict sets, spare pool).

    Used by benchmarks to stand up the reference oracle at populations
    where replaying the op history through Python pair tests would take
    minutes, and by tests to prove the transplant itself is faithful.
    ``space`` (a :class:`~repro.core.overlap.ComponentSpace`) pre-resolves
    integer masks so the reference runs its fastest pair test.

    ``conflicts=False`` skips materializing the per-entry Π sets (an
    O(n²) cost at benchmark populations).  The resulting state sizes
    pools and admits *new* backups correctly — integer-mode ``add`` /
    ``preview_add`` never read existing conflict sets — but may only
    ``remove`` backups added *after* the transplant.
    """
    from repro.core.multiplexing import LinkMuxState

    reference = LinkMuxState(state.link, state.policy, overlaps=overlaps)
    for entry in state.entries():
        if space is not None:
            entry.mask = space.mask(entry.primary_components)
        if conflicts:
            entry.conflicts = set(state.conflict_ids(entry.channel_id))
        reference._entries[entry.channel_id] = entry
    reference._spare_required = state.spare_required()
    return reference


class _ObsSync:
    """Registry bindings for the engine's obs export.

    Re-resolved lazily because obs sessions swap the process registry;
    dropped on pickle so engines ship cleanly to worker processes (the
    worker re-baselines against its own registry and publishes only the
    deltas it produces).
    """

    __slots__ = ("registry", "hits_base", "misses_base")

    def __init__(self) -> None:
        self.registry = None
        self.hits_base = 0
        self.misses_base = 0

    def __getstate__(self) -> bool:
        return True

    def __setstate__(self, state) -> None:
        self.__init__()


def publish_engine_obs(engine) -> None:
    """Export the engine's cache/arena health into the session registry.

    Counters: ``overlap_index.hits`` / ``overlap_index.misses`` (synced
    by delta from the :class:`~repro.core.overlap.OverlapIndex` so the
    reference hot loop stays free of registry lookups).  Gauges:
    ``mux.space.components`` (interned bit positions), ``mux.space.rows``
    (interned primary sets), and ``mux.space.bytes`` (allocated arena
    size; 0 for reference engines, whose interner holds Python ints).
    """
    obs = engine._obs
    registry = get_registry()
    overlaps = engine.overlaps
    if registry is not obs.registry:
        # New session (or a worker's first publish): count from here.
        obs.registry = registry
        obs.hits_base = overlaps.hits
        obs.misses_base = overlaps.misses
    delta = overlaps.hits - obs.hits_base
    if delta:
        registry.counter("overlap_index.hits").inc(delta)
        obs.hits_base = overlaps.hits
    delta = overlaps.misses - obs.misses_base
    if delta:
        registry.counter("overlap_index.misses").inc(delta)
        obs.misses_base = overlaps.misses
    arena = engine.arena
    if arena is not None:
        registry.gauge("mux.space.components").set(float(len(arena)))
        registry.gauge("mux.space.rows").set(float(arena.rows))
        registry.gauge("mux.space.bytes").set(float(arena.nbytes))
    else:
        registry.gauge("mux.space.components").set(float(len(engine.space)))
        registry.gauge("mux.space.rows").set(float(engine.space.rows))
