"""The :class:`BCPNetwork` facade — the library's main entry point.

Bundles a topology with the reservation ledger, channel registry,
multiplexing engine, and establishment engine, and exposes the operations
of the Backup Channel Protocol at the network-management level:
establishing and tearing down D-connections, committing a switchover to a
backup after a failure, and reading the utilization metrics the paper
reports (network-load and spare-bandwidth fractions).

The *runtime* side of BCP — failure reporting, activation messages, RCC
transport, rejoin timers — lives in :mod:`repro.protocol` on top of the
discrete-event kernel; steady-state failure coverage evaluation lives in
:mod:`repro.recovery`.  Both operate on a ``BCPNetwork``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.channel import Channel
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.registry import ChannelRegistry
from repro.channels.traffic import TrafficSpec
from repro.core.dconnection import DConnection
from repro.core.establishment import (
    BatchRequest,
    EstablishmentEngine,
    EstablishmentError,
    NegotiationOffer,
    spare_aware_backup_cost,
)
from repro.core.multiplexing import MultiplexingEngine
from repro.core.overlap import OverlapPolicy
from repro.core.reliability import connection_pr
from repro.network.components import LinkId, NodeId
from repro.network.reservations import ReservationLedger
from repro.network.topology import Topology

__all__ = [
    "BCPNetwork",
    "BatchRequest",
    "EstablishmentError",
    "ReconfigurationReport",
    "SPARE_MIRROR_EPSILON",
]

#: Spare mirrored into the ledger may differ from the mux requirement by
#: float round-off only; anything larger is a consistency violation
#: (see :meth:`BCPNetwork.audit_invariants`).
SPARE_MIRROR_EPSILON = 1e-6


@dataclass
class ReconfigurationReport:
    """Outcome of the resource reconfiguration after a switchover
    (Section 4.4).

    Attributes
    ----------
    converted:
        Links where the activated backup's bandwidth moved from the spare
        pool to the primary pool.
    deficits:
        Links whose post-activation spare pool could not be restored to the
        size the remaining backups require, mapped to the missing
        bandwidth.  Backups crossing these links have degraded
        fault-tolerance until they are re-established elsewhere.
    """

    converted: list[LinkId] = field(default_factory=list)
    deficits: dict[LinkId, float] = field(default_factory=dict)

    @property
    def fully_restored(self) -> bool:
        """Whether every remaining backup kept its full spare coverage."""
        return not self.deficits


class BCPNetwork:
    """A multi-hop network managed by the Backup Channel Protocol."""

    def __init__(
        self,
        topology: Topology,
        policy: OverlapPolicy | None = None,
        spare_aware_backup_routing: bool = False,
        mux_kernel: "bool | None" = None,
    ) -> None:
        self.topology = topology
        self.policy = policy or OverlapPolicy()
        self.ledger = ReservationLedger(topology)
        self.registry = ChannelRegistry()
        # mux_kernel=None defers to the process-wide toggle
        # (``--no-mux-kernel``); True/False pins this network's engine.
        self.mux = MultiplexingEngine(self.policy, use_kernel=mux_kernel)
        cost_factory = (
            spare_aware_backup_cost if spare_aware_backup_routing else None
        )
        self.engine = EstablishmentEngine(
            topology, self.ledger, self.registry, self.mux,
            backup_cost_factory=cost_factory,
        )
        self._connections: dict[int, DConnection] = {}

    # ------------------------------------------------------------------
    # establishment / teardown
    # ------------------------------------------------------------------
    def establish(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec | None = None,
        delay_qos: DelayQoS | None = None,
        ft_qos: FaultToleranceQoS | None = None,
    ) -> DConnection:
        """Establish a D-connection; see
        :meth:`~repro.core.establishment.EstablishmentEngine.establish`."""
        connection = self.engine.establish(src, dst, traffic, delay_qos, ft_qos)
        self._connections[connection.connection_id] = connection
        return connection

    def establish_batch(
        self, requests: "list[BatchRequest]"
    ) -> "list[DConnection | EstablishmentError]":
        """Admit a batch of requests through one shared routing pass; see
        :meth:`~repro.core.establishment.EstablishmentEngine.establish_batch`.

        Successes are registered as live connections; failures stay in
        the result list as the blocking :class:`EstablishmentError`.
        """
        results = self.engine.establish_batch(requests)
        for result in results:
            if isinstance(result, DConnection):
                self._connections[result.connection_id] = result
        return results

    def negotiate(
        self,
        src: NodeId,
        dst: NodeId,
        required_pr: float,
        traffic: TrafficSpec | None = None,
        delay_qos: DelayQoS | None = None,
        num_backups: int = 1,
    ) -> NegotiationOffer:
        """Loose QoS negotiation; the returned offer's connection is live."""
        offer = self.engine.negotiate_loose(
            src, dst, required_pr, traffic, delay_qos, num_backups
        )
        self._connections[offer.connection.connection_id] = offer.connection
        return offer

    def teardown(self, connection: "DConnection | int") -> None:
        """Tear down a connection by object or id."""
        if isinstance(connection, int):
            connection = self.connection(connection)
        self.engine.teardown(connection)
        self._connections.pop(connection.connection_id, None)

    # ------------------------------------------------------------------
    # connection access
    # ------------------------------------------------------------------
    def connection(self, connection_id: int) -> DConnection:
        """The live connection with the given id; raises ``KeyError``."""
        try:
            return self._connections[connection_id]
        except KeyError:
            raise KeyError(f"unknown connection id {connection_id}") from None

    def connections(self) -> list[DConnection]:
        """All live connections, in establishment order."""
        return list(self._connections.values())

    @property
    def num_connections(self) -> int:
        return len(self._connections)

    def connection_reliability(self, connection: "DConnection | int") -> float:
        """The resultant ``P_r`` of a live connection (Section 3.3)."""
        if isinstance(connection, int):
            connection = self.connection(connection)
        return connection_pr(connection, self.mux)

    # ------------------------------------------------------------------
    # switchover (channel switching + resource reconfiguration, Section 4)
    # ------------------------------------------------------------------
    def switch_to_backup(
        self, connection: "DConnection | int", backup: Channel | None = None
    ) -> ReconfigurationReport:
        """Promote a backup to primary and reconfigure resources.

        ``backup`` defaults to the lowest-serial backup (the serial-number
        rule that keeps both end-nodes consistent, Section 4.2).  The old
        primary's reservations are released (its teardown after failure —
        in the runtime protocol this happens via rejoin-timer expiry).

        Per Section 4.4, after activation the spare pools are recomputed
        for the remaining backups; links that cannot re-reserve the full
        requirement are reported as deficits.
        """
        if isinstance(connection, int):
            connection = self.connection(connection)
        if not connection.backups:
            raise EstablishmentError(
                f"connection {connection.connection_id} has no backups"
            )
        if backup is None:
            backup = connection.backups_in_serial_order()[0]

        report = ReconfigurationReport()

        # 1. The backup stops being multiplexed: remove it from the mux
        #    state, which shrinks each link's *required* pool.
        requirements = self.mux.remove_backup(backup)

        # 2. Release the failed primary's dedicated bandwidth.
        self.engine.admission.release_primary(
            connection.primary.path, connection.traffic
        )

        # 3. On each link of the activated path, draw the channel's
        #    bandwidth out of the spare pool into the primary pool, then
        #    restore the pool toward the remaining backups' requirement.
        bandwidth = connection.traffic.bandwidth
        for link in backup.path.links:
            entry = self.ledger.ledger(link)
            draw = min(bandwidth, entry.spare)
            if draw > 0:
                self.ledger.convert_spare_to_primary(link, draw)
            if draw < bandwidth:
                # The pool was already drained below this backup's need —
                # the caller should have checked activatability first; we
                # still honour the switch by taking free capacity.
                self.ledger.reserve_primary(link, bandwidth - draw)
            report.converted.append(link)

        # 4. Reconcile every touched link's pool with the new requirement.
        touched = set(requirements) | set(backup.path.links)
        for link in touched:
            required = self.mux.spare_required(link)
            entry = self.ledger.ledger(link)
            affordable = min(required, entry.capacity - entry.primary)
            self.ledger.set_spare(link, affordable)
            if affordable < required:
                report.deficits[link] = required - affordable

        # 5. Flip roles in the connection object; the old primary is gone.
        old_primary = connection.switch_to_backup(backup)
        self.registry.remove(old_primary.channel_id)
        return report

    # ------------------------------------------------------------------
    # metrics (Section 7.1)
    # ------------------------------------------------------------------
    def network_load(self) -> float:
        """Primary bandwidth over total capacity."""
        return self.ledger.network_load()

    def spare_fraction(self) -> float:
        """Spare-pool bandwidth over total capacity."""
        return self.ledger.spare_fraction()

    def audit_invariants(self) -> list[str]:
        """Ledger audit plus the mux-vs-ledger spare consistency check.

        The churn engine's epoch auditor, hoisted onto the network so
        remote network adapters (:mod:`repro.serve`) can run the same
        check server-side with one round trip.  Returns one problem
        string per violation; empty means consistent.
        """
        violations = [str(finding) for finding in self.ledger.audit()]
        for link in self.topology.links():
            required = self.mux.spare_required(link)
            mirrored = self.ledger.spare_reserved(link)
            if abs(required - mirrored) > SPARE_MIRROR_EPSILON:
                violations.append(
                    f"link {link}: mux requires {required!r} spare but "
                    f"ledger mirrors {mirrored!r}"
                )
        return violations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCPNetwork({self.topology.name!r}, "
            f"connections={self.num_connections}, "
            f"load={self.network_load():.1%}, "
            f"spare={self.spare_fraction():.1%})"
        )
