"""Dependable connections (D-connections).

A D-connection bundles one primary channel with zero or more serially
numbered backup channels between the same endpoints (Section 1: "a
dependable real-time connection consists of a primary channel and one or
more backup channels").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.channels.channel import Channel, ChannelRole
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.network.components import NodeId


class ConnectionState(enum.Enum):
    """Lifecycle of a D-connection."""

    #: Primary healthy, backups standing by.
    ACTIVE = "active"
    #: Primary lost, a backup activation or re-establishment in progress.
    RECOVERING = "recovering"
    #: All channels lost; service cannot be restored without full
    #: re-establishment (or at all, if an end-node failed).
    FAILED = "failed"
    #: Torn down by the client.
    CLOSED = "closed"


@dataclass
class DConnection:
    """One dependable real-time connection."""

    connection_id: int
    source: NodeId
    destination: NodeId
    traffic: TrafficSpec
    delay_qos: DelayQoS
    ft_qos: FaultToleranceQoS
    primary: Channel
    backups: list[Channel] = field(default_factory=list)
    state: ConnectionState = ConnectionState.ACTIVE
    #: The resultant reliability reported to the client (Section 3.4);
    #: filled in by establishment when a λ-based policy is in use.
    achieved_pr: float | None = None

    def __post_init__(self) -> None:
        if self.primary.role is not ChannelRole.PRIMARY:
            raise ValueError("the primary channel must have PRIMARY role")
        for backup in self.backups:
            if backup.role is not ChannelRole.BACKUP:
                raise ValueError(
                    f"channel {backup.channel_id} listed as backup but has "
                    f"role {backup.role}"
                )

    # ------------------------------------------------------------------
    @property
    def num_backups(self) -> int:
        return len(self.backups)

    @property
    def channels(self) -> list[Channel]:
        """All channels, primary first, then backups in serial order."""
        return [self.primary, *self.backups]

    @property
    def total_hops(self) -> int:
        """Hop count summed over every channel (primary + backups).

        The churn engine's modelled establishment latency is
        ``per_hop_latency * total_hops``; remote connection handles
        (:mod:`repro.serve`) carry the same number so client-side stats
        stay byte-identical to a local run.
        """
        return sum(channel.path.hops for channel in self.channels)

    @property
    def mux_degree(self) -> int:
        """The connection's multiplexing degree (the paper keeps one ν per
        connection: "each backup is required to have the same multiplexing
        degree on all of its links")."""
        return self.ft_qos.mux_degree

    def backups_in_serial_order(self) -> list[Channel]:
        """Backups sorted by serial number — the activation try order that
        keeps both end-nodes consistent (Section 4.2)."""
        return sorted(self.backups, key=lambda channel: channel.serial)

    def switch_to_backup(self, backup: Channel) -> Channel:
        """Promote ``backup`` to primary; the old primary is returned for
        teardown/repair bookkeeping and removed from the connection."""
        if backup not in self.backups:
            raise ValueError(
                f"channel {backup.channel_id} is not a backup of connection "
                f"{self.connection_id}"
            )
        old_primary = self.primary
        self.backups.remove(backup)
        backup.promote()
        self.primary = backup
        self.state = ConnectionState.ACTIVE
        return old_primary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DConnection(id={self.connection_id}, "
            f"{self.source}->{self.destination}, backups={self.num_backups}, "
            f"mux={self.mux_degree}, {self.state.value})"
        )
