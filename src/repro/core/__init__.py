"""BCP core: the paper's primary contribution.

* :mod:`repro.core.overlap` — the simultaneous-activation probability
  ``S(B_i, B_j)`` and the multiplexability test (Section 3.2).
* :mod:`repro.core.multiplexing` — per-link backup multiplexing state,
  Π/Ψ sets, spare-pool sizing with O(n) incremental maintenance
  (Sections 3.2, 6).
* :mod:`repro.core.muxkernel` — the vectorized packed-bitset kernel the
  multiplexing engine routes through by default; the per-pair
  implementation is retained as the validation oracle.
* :mod:`repro.core.reliability` — the combinatorial ``P_r`` model and the
  multiplexing-failure bound (Sections 3.1, 3.3).
* :mod:`repro.core.dconnection` — dependable-connection objects.
* :mod:`repro.core.establishment` — D-connection establishment with both
  QoS-negotiation schemes (Section 3.4).
* :mod:`repro.core.bcp` — the :class:`~repro.core.bcp.BCPNetwork` facade,
  the library's main entry point.
"""

from repro.core.bcp import BCPNetwork, EstablishmentError
from repro.core.dconnection import ConnectionState, DConnection
from repro.core.establishment import (
    BatchRequest,
    EstablishmentEngine,
    NegotiationOffer,
)
from repro.core.multiplexing import LinkMuxState, MultiplexingEngine
from repro.core.muxkernel import (
    ComponentArena,
    VectorLinkMux,
    kernel_available,
    mux_kernel_enabled,
    set_mux_kernel_enabled,
)
from repro.core.overlap import (
    OverlapPolicy,
    simultaneous_activation_probability,
    simultaneous_activation_probability_heterogeneous,
)
from repro.core.reliability import (
    channel_reliability,
    connection_pr,
    p_muxf_upper_bound,
)

__all__ = [
    "BCPNetwork",
    "BatchRequest",
    "EstablishmentError",
    "DConnection",
    "ConnectionState",
    "EstablishmentEngine",
    "NegotiationOffer",
    "MultiplexingEngine",
    "LinkMuxState",
    "ComponentArena",
    "VectorLinkMux",
    "kernel_available",
    "mux_kernel_enabled",
    "set_mux_kernel_enabled",
    "OverlapPolicy",
    "simultaneous_activation_probability",
    "simultaneous_activation_probability_heterogeneous",
    "channel_reliability",
    "connection_pr",
    "p_muxf_upper_bound",
]
