"""Fault-tolerance QoS: the combinatorial ``P_r`` model (Sections 3.1, 3.3).

``P_r`` is the probability that a D-connection survives one *time unit*
under the paper's combinatorial model: each component fails independently
with probability λ within the unit, and the system resets at the start of
each unit (justified because channel repair is orders of magnitude faster
than MTBF).  With backup multiplexing, a surviving backup can still be lost
to a *multiplexing failure* — its spare pool drained by other activations —
which the model folds in through the upper bound ``P_muxf``:

    P_muxf(B_i) ≤ Σ_ℓ [ 1 - (1-ν)^{|Ψ(B_i,ℓ)|} ]

The continuous-time Markov models of Fig. 3 live in
:mod:`repro.analysis.markov`; this module is the client-interface model.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.validation import check_probability


def channel_reliability(component_count: int, failure_probability: float) -> float:
    """Probability a channel of ``component_count`` components survives one
    time unit: ``(1-λ)^c``."""
    if component_count < 0:
        raise ValueError(f"component_count must be >= 0, got {component_count}")
    check_probability(failure_probability, "failure_probability")
    return (1.0 - failure_probability) ** component_count


def p_muxf_upper_bound(psi_sizes: Sequence[int], nu: float) -> float:
    """Upper bound on the multiplexing-failure probability of one backup.

    ``psi_sizes`` holds |Ψ(B_i, ℓ)| for each link ℓ of the backup's path;
    ``nu`` is the backup's threshold ν.  The per-link terms are summed (a
    union bound) and the result clipped to 1.
    """
    check_probability(nu, "nu")
    total = 0.0
    for size in psi_sizes:
        if size < 0:
            raise ValueError(f"psi size must be >= 0, got {size}")
        total += 1.0 - (1.0 - nu) ** size
    return min(1.0, total)


def pr_single_backup(
    primary_components: int,
    backup_components: int,
    failure_probability: float,
    p_muxf: float = 0.0,
) -> float:
    """``P_r`` of a D-connection with one disjointly-routed backup.

    Section 3.3:  ``P_r = P(M ok) + P(M fails)·P(B ok)·(1 - P_muxf)``.
    """
    check_probability(p_muxf, "p_muxf")
    primary_ok = channel_reliability(primary_components, failure_probability)
    backup_ok = channel_reliability(backup_components, failure_probability)
    return primary_ok + (1.0 - primary_ok) * backup_ok * (1.0 - p_muxf)


def pr_multiple_backups(
    primary_components: int,
    backup_components: Sequence[int],
    failure_probability: float,
    p_muxfs: Sequence[float] | None = None,
) -> float:
    """``P_r`` of a D-connection with any number of disjoint backups.

    Generalises the single-backup formula ("P_r with more backups can be
    derived in a similar way"): the connection fails the time unit only if
    the primary fails *and* every backup is unavailable, where backup ``b``
    is unavailable with probability ``1 - (1-λ)^{c_b}·(1 - P_muxf_b)``.
    Disjoint routing makes the channel failures independent.
    """
    if p_muxfs is None:
        p_muxfs = [0.0] * len(backup_components)
    if len(p_muxfs) != len(backup_components):
        raise ValueError(
            f"{len(backup_components)} backups but {len(p_muxfs)} P_muxf values"
        )
    primary_ok = channel_reliability(primary_components, failure_probability)
    all_backups_unavailable = 1.0
    for components, p_muxf in zip(backup_components, p_muxfs):
        check_probability(p_muxf, "p_muxf")
        available = channel_reliability(components, failure_probability) * (
            1.0 - p_muxf
        )
        all_backups_unavailable *= 1.0 - available
    return 1.0 - (1.0 - primary_ok) * all_backups_unavailable


def connection_pr(connection, engine, failure_probability: float | None = None) -> float:
    """``P_r`` of a live :class:`~repro.core.dconnection.DConnection`.

    Reads each backup's |Ψ| sets from the multiplexing ``engine`` and its
    ν from the backup's mux degree.  ``failure_probability`` defaults to
    the engine policy's λ.

    This is the number BCP reports back to the client after establishment
    (the "resultant P_r" of the loose negotiation scheme, Section 3.4).
    """
    lam = (
        engine.policy.failure_probability
        if failure_probability is None
        else failure_probability
    )
    policy = engine.policy
    primary_count = policy.component_count(connection.primary.path)
    backup_counts = []
    p_muxfs = []
    for backup in connection.backups:
        backup_counts.append(policy.component_count(backup.path))
        psi = engine.psi_sizes(backup).values()
        p_muxfs.append(p_muxf_upper_bound(list(psi), policy.nu(backup.mux_degree)))
    return pr_multiple_backups(primary_count, backup_counts, lam, p_muxfs)
