"""Simultaneous-activation probability and the multiplexability test.

Section 3.2 of the paper: two backups ``B_i`` and ``B_j`` may share spare
resources on a link iff the probability ``S(B_i, B_j)`` that both are
activated (near-)simultaneously — bounded by the probability that both
primaries ``M_i``, ``M_j`` fail in the same time unit — is below the
multiplexing threshold ``ν``.  With per-component failure probability λ:

    S = 1 - [ (1-λ)^c(M_i) + (1-λ)^c(M_j) - (1-λ)^(c(M_i)+c(M_j)-sc) ]

where ``c(M)`` counts the components of a primary path and ``sc`` counts
the components shared by both.  For small λ, ``S ≈ sc·λ``, so the paper's
``mux=α`` configurations (ν = α·λ) reduce to the integer test
``sc(M_i, M_j) < α``.  Both the exact and the integer form are
implemented; they agree for realistic λ (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.paths import Path, shared_component_count
from repro.util.validation import check_probability

#: Default per-component failure probability per time unit.  The paper
#: quotes component MTBFs around 1000 hours against repair times of
#: seconds-to-minutes; any small λ gives the same integer behaviour.
DEFAULT_FAILURE_PROBABILITY = 1e-6


def simultaneous_activation_probability(
    components_i: int, components_j: int, shared: int, failure_probability: float
) -> float:
    """Exact ``S(B_i, B_j)`` from the paper's closed form.

    Parameters are the component counts ``c(M_i)``, ``c(M_j)`` of the two
    primaries, their shared count ``sc``, and the per-component failure
    probability λ.
    """
    if shared < 0 or shared > min(components_i, components_j):
        raise ValueError(
            f"shared count {shared} inconsistent with component counts "
            f"{components_i}, {components_j}"
        )
    check_probability(failure_probability, "failure_probability")
    survive = 1.0 - failure_probability
    return 1.0 - (
        survive**components_i
        + survive**components_j
        - survive ** (components_i + components_j - shared)
    )


def simultaneous_activation_probability_heterogeneous(
    nodes_i: int,
    links_i: int,
    nodes_j: int,
    links_j: int,
    shared_nodes: int,
    shared_links: int,
    node_failure_probability: float,
    link_failure_probability: float,
) -> float:
    """``S(B_i, B_j)`` with distinct node and link failure rates.

    The paper's footnote to the S formula: "One can use different failure
    rates for nodes and links by slightly modifying the equation."  With
    per-unit survival probabilities ``p_n = 1-λ_n`` and ``p_l = 1-λ_l``:

        P(channel M survives) = p_n^{nodes(M)} · p_l^{links(M)}

    and S keeps its inclusion-exclusion shape with the shared part
    factored out by component kind.
    """
    for name, count in (("nodes_i", nodes_i), ("links_i", links_i),
                        ("nodes_j", nodes_j), ("links_j", links_j),
                        ("shared_nodes", shared_nodes),
                        ("shared_links", shared_links)):
        if count < 0:
            raise ValueError(f"{name} must be >= 0, got {count}")
    if shared_nodes > min(nodes_i, nodes_j) or shared_links > min(
        links_i, links_j
    ):
        raise ValueError("shared counts exceed a channel's component counts")
    check_probability(node_failure_probability, "node_failure_probability")
    check_probability(link_failure_probability, "link_failure_probability")
    p_node = 1.0 - node_failure_probability
    p_link = 1.0 - link_failure_probability
    survive_i = p_node**nodes_i * p_link**links_i
    survive_j = p_node**nodes_j * p_link**links_j
    survive_union = (
        p_node ** (nodes_i + nodes_j - shared_nodes)
        * p_link ** (links_i + links_j - shared_links)
    )
    return 1.0 - (survive_i + survive_j - survive_union)


class ComponentSpace:
    """Interner from components (nodes/links) to bit positions.

    The multiplexing engine's hot loop compares primary-path component
    sets pairwise (``sc(M_i, M_j)``).  Interning every component to a bit
    and every component *set* to an integer mask turns each comparison
    into ``(mask_a & mask_b).bit_count()`` — one machine-word-ish
    operation instead of a hashed frozenset intersection.  Masks are
    memoised per frozenset, so each distinct primary path is interned
    once no matter how many links its backups land on.
    """

    __slots__ = ("_bits", "_set_masks")

    def __init__(self) -> None:
        self._bits: dict[object, int] = {}
        self._set_masks: dict[frozenset, int] = {}

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def rows(self) -> int:
        """Distinct component sets interned so far."""
        return len(self._set_masks)

    def mask(self, components: frozenset) -> int:
        """The integer bitset of ``components``, interning new ones."""
        cached = self._set_masks.get(components)
        if cached is not None:
            return cached
        bits = self._bits
        mask = 0
        for component in components:
            bit = bits.get(component)
            if bit is None:
                bit = 1 << len(bits)
                bits[component] = bit
            mask |= bit
        self._set_masks[components] = mask
        return mask


class OverlapIndex:
    """Cache of pairwise shared-component counts between primary paths.

    The multiplexing engine evaluates ``sc(M_i, M_j)`` — the size of the
    intersection of two primaries' component sets — once per *pair of
    backups per link*.  Backups routinely share many links, so the same
    intersection is recomputed O(path length) times; across a scenario
    sweep this is the dominant establishment-side cost.  The index
    memoises the count per unordered pair of registered keys (backup
    channel ids) and evicts all of a key's pairs when it unregisters, so
    the cache never outlives the backups it describes.

    The index is pure bookkeeping and deliberately has no notion of
    policy: callers hand it the component sets to intersect, and the
    :class:`OverlapPolicy` decides what those sets contain.
    """

    __slots__ = ("_shared", "_pairs_of", "hits", "misses")

    def __init__(self) -> None:
        self._shared: dict[tuple[int, int], int] = {}
        #: key -> the cached pair keys involving it (for O(deg) eviction).
        self._pairs_of: dict[int, set[tuple[int, int]]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._shared)

    def register(self, key: int) -> None:
        """Start tracking ``key`` (idempotent)."""
        self._pairs_of.setdefault(key, set())

    def unregister(self, key: int) -> None:
        """Drop ``key`` and every cached pair involving it (idempotent)."""
        for pair in self._pairs_of.pop(key, ()):
            self._shared.pop(pair, None)
            other = pair[0] if pair[1] == key else pair[1]
            others = self._pairs_of.get(other)
            if others is not None:
                others.discard(pair)

    def shared_count(
        self, key_a: int, components_a: frozenset,
        key_b: int, components_b: frozenset,
    ) -> int:
        """``len(components_a & components_b)``, cached per key pair.

        Both keys must be registered; unregistered callers should compute
        the intersection directly (candidate previews do).
        """
        pair = (key_a, key_b) if key_a < key_b else (key_b, key_a)
        cached = self._shared.get(pair)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        count = len(components_a & components_b)
        self._shared[pair] = count
        self._pairs_of[key_a].add(pair)
        self._pairs_of[key_b].add(pair)
        return count


@dataclass(frozen=True)
class OverlapPolicy:
    """How primary-path overlap is measured and compared against ν.

    Attributes
    ----------
    failure_probability:
        λ, the per-component failure probability per time unit.
    count_endpoints:
        Whether endpoint nodes count as components of a primary path.  The
        paper's formula counts every node; excluding endpoints is a
        documented variant (endpoint failures make a connection
        unrecoverable regardless, so some deployments ignore them).
    exact:
        ``True`` compares the exact ``S`` against ``α·λ``;
        ``False`` (default) uses the integer shortcut ``sc < α``, which the
        paper itself derives and which makes results λ-independent.  The
        two agree except exactly at the boundary ``sc == α``, where
        ``S = sc·λ - D·λ² + O(λ³)`` with
        ``D = C(c_i,2) + C(c_j,2) - C(c_i+c_j-sc,2)`` and the sign of D
        (hence the exact verdict) depends on the primaries' lengths.
    """

    failure_probability: float = DEFAULT_FAILURE_PROBABILITY
    count_endpoints: bool = True
    exact: bool = False

    def __post_init__(self) -> None:
        check_probability(self.failure_probability, "failure_probability")

    # ------------------------------------------------------------------
    def component_count(self, primary_path: Path) -> int:
        """``c(M)`` under this policy."""
        return primary_path.component_count(self.count_endpoints)

    def component_set(self, primary_path: Path) -> frozenset:
        """The component set of a primary under this policy (cached on the
        path object)."""
        if self.count_endpoints:
            return primary_path.components
        return primary_path.transit_components

    def shared_count(self, primary_i: Path, primary_j: Path) -> int:
        """``sc(M_i, M_j)`` under this policy."""
        return shared_component_count(primary_i, primary_j, self.count_endpoints)

    # ------------------------------------------------------------------
    def activation_probability(self, primary_i: Path, primary_j: Path) -> float:
        """Exact ``S`` for two primary paths."""
        return simultaneous_activation_probability(
            self.component_count(primary_i),
            self.component_count(primary_j),
            self.shared_count(primary_i, primary_j),
            self.failure_probability,
        )

    def nu(self, mux_degree: int) -> float:
        """The threshold ν = α·λ for an integer mux degree α."""
        if mux_degree < 0:
            raise ValueError(f"mux_degree must be >= 0, got {mux_degree}")
        return mux_degree * self.failure_probability

    def multiplexable_counts(
        self, components_i: int, components_j: int, shared: int, mux_degree: int
    ) -> bool:
        """Multiplexability test from pre-computed counts.

        The hot path of the multiplexing engine: entries cache their
        component sets, so only ``shared`` varies per pair.
        """
        if mux_degree <= 0:
            return False
        if not self.exact:
            return shared < mux_degree
        s = simultaneous_activation_probability(
            components_i, components_j, shared, self.failure_probability
        )
        return s < self.nu(mux_degree)

    def multiplexable(self, primary_i: Path, primary_j: Path, mux_degree: int) -> bool:
        """Whether backups of these primaries may share spare resources
        under threshold ν = ``mux_degree``·λ."""
        return self.multiplexable_counts(
            self.component_count(primary_i),
            self.component_count(primary_j),
            self.shared_count(primary_i, primary_j),
            mux_degree,
        )
