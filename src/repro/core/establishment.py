"""D-connection establishment (Section 3).

Implements the paper's establishment procedure:

1. route the primary over a shortest feasible path (admission-checked,
   delay QoS respected),
2. route each backup over a shortest feasible path avoiding the components
   of all channels established so far ("sequential shortest-path search",
   Section 7), where a link is feasible for a backup iff the spare-pool
   growth computed by backup multiplexing fits its remaining capacity,
3. size spare pools via :class:`~repro.core.multiplexing.MultiplexingEngine`
   and mirror them into the reservation ledger.

Both QoS-negotiation schemes of Section 3.4 are provided:

* **prescriptive / loose** — the client (or BCP heuristically) fixes the
  backup count and multiplexing degree; the resultant ``P_r`` is computed
  and offered back (:meth:`EstablishmentEngine.negotiate_loose`).
* **literal** — the client gives a required ``P_r``; a forward-pass
  computation of |Ψ| per candidate ν lets the destination pick the largest
  (cheapest) degree that meets it, adding backups incrementally when one
  is not enough (:meth:`EstablishmentEngine.establish_literal`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.channels.admission import AdmissionController, AdmissionError
from repro.channels.channel import Channel, ChannelRole
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.registry import ChannelRegistry
from repro.channels.traffic import TrafficSpec
from repro.core.dconnection import ConnectionState, DConnection
from repro.core.multiplexing import MultiplexingEngine
from repro.core.reliability import (
    connection_pr,
    p_muxf_upper_bound,
    pr_multiple_backups,
)
from repro.network.components import LinkId, NodeId
from repro.network.reservations import ReservationLedger
from repro.network.topology import Topology
from repro.routing.paths import Path
from repro.routing.shortest import (
    NoPathError,
    RouteConstraints,
    hop_distance,
    shortest_path,
)


class EstablishmentError(Exception):
    """Raised when a D-connection (or one of its channels) cannot be
    established; establishment is all-or-nothing, so the network state is
    unchanged when this propagates."""


@dataclass(frozen=True)
class BatchRequest:
    """One establishment request in a batched admission pass.

    Requests with equal :meth:`group_key` (same endpoints, bandwidth, and
    QoS) are admitted through one shared routing pass by
    :meth:`EstablishmentEngine.establish_batch`.
    """

    src: NodeId
    dst: NodeId
    traffic: TrafficSpec = TrafficSpec()
    delay_qos: DelayQoS = DelayQoS()
    ft_qos: FaultToleranceQoS = FaultToleranceQoS()

    def group_key(self) -> tuple:
        """Requests sharing this key can reuse one primary route."""
        return (self.src, self.dst, self.traffic.bandwidth,
                self.delay_qos, self.ft_qos)


@dataclass
class NegotiationOffer:
    """Result of the loose negotiation scheme (Section 3.4, scheme 1).

    The connection is *live* when the offer is produced; a dissatisfied
    client calls :meth:`reject`, which tears it down.
    """

    connection: DConnection
    required_pr: float
    achieved_pr: float
    _engine: "EstablishmentEngine"

    @property
    def satisfied(self) -> bool:
        """Whether the offered reliability meets the client's request."""
        return self.achieved_pr >= self.required_pr

    def reject(self) -> None:
        """Decline the offer and tear the connection down."""
        self._engine.teardown(self.connection)


def spare_aware_backup_cost(engine: "EstablishmentEngine",
                            connection: DConnection, mux_degree: int):
    """Link-cost function biasing backup routes toward links where the
    backup multiplexes for free.

    This is the direction of the paper's [HAN97b] follow-up ("a backup
    routing algorithm which can reduce the spare bandwidth up to 40%,
    compared to the shortest path routing method"): instead of a pure
    shortest path, each link costs a small constant plus the spare-pool
    *growth* the backup would cause there, so routes prefer links whose
    existing pools already cover the new backup.
    """
    policy = engine.mux.policy
    components = policy.component_set(connection.primary.path)
    count = len(components)
    mask = engine.mux.space.mask(components)
    bandwidth = connection.traffic.bandwidth

    def cost(link: LinkId) -> float:
        required = engine.mux.link_state(link).preview_add(
            bandwidth, mux_degree, components, count, mask
        )
        growth = max(0.0, required - engine.ledger.spare_reserved(link))
        # The per-hop base (2x the channel bandwidth) keeps routes short —
        # stretching one hop must save at least two hops' worth of new
        # spare — and the growth term steers ties toward links whose pools
        # already cover the backup.  A smaller base reduces spare further
        # but starts rejecting connections on the paper's workload.
        return 2.0 * bandwidth + growth

    return cost


class EstablishmentEngine:
    """Routes, admits, and reserves the channels of D-connections.

    ``backup_cost_factory`` switches backup routing from pure shortest-path
    (the paper's evaluation setting) to a cost-biased search; see
    :func:`spare_aware_backup_cost`.
    """

    #: Bound on the exclude-and-retry loop of backup routing; each retry
    #: excludes at least one violating link, so the loop terminates anyway —
    #: this just caps pathological cases early.
    MAX_ROUTE_RETRIES = 64

    def __init__(
        self,
        topology: Topology,
        ledger: ReservationLedger,
        registry: ChannelRegistry,
        mux_engine: MultiplexingEngine,
        backup_cost_factory=None,
    ) -> None:
        self.topology = topology
        self.ledger = ledger
        self.registry = registry
        self.mux = mux_engine
        self.admission = AdmissionController(ledger)
        self.backup_cost_factory = backup_cost_factory
        self._next_connection_id = 0

    @property
    def next_connection_id(self) -> int:
        """The id the next established D-connection will get.

        Settable so snapshot restore (:mod:`repro.serve.state`) resumes
        the id sequence where the snapshotted engine stopped.
        """
        return self._next_connection_id

    @next_connection_id.setter
    def next_connection_id(self, value: int) -> None:
        if value < self._next_connection_id:
            raise ValueError(
                f"next_connection_id may only move forward "
                f"({self._next_connection_id} -> {value})"
            )
        self._next_connection_id = value

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def establish(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec | None = None,
        delay_qos: DelayQoS | None = None,
        ft_qos: FaultToleranceQoS | None = None,
    ) -> DConnection:
        """Establish a D-connection with a prescriptive fault-tolerance QoS.

        All-or-nothing: on any routing or admission failure every partial
        reservation is rolled back and :class:`EstablishmentError` raised.
        """
        traffic = traffic or TrafficSpec()
        delay_qos = delay_qos or DelayQoS()
        ft_qos = ft_qos or FaultToleranceQoS()
        if ft_qos.is_declarative:
            return self.establish_literal(src, dst, traffic, delay_qos, ft_qos)

        connection = self._establish_primary_only(src, dst, traffic, delay_qos, ft_qos)
        return self._attach_backups(connection, ft_qos)

    def establish_batch(
        self, requests: "list[BatchRequest]"
    ) -> "list[DConnection | EstablishmentError]":
        """Admit a batch of requests through shared routing work.

        Requests are grouped by :meth:`BatchRequest.group_key`; within a
        group the primary is routed once and the path *reused* for the
        following requests as long as every link still passes the
        admission test (``can_reserve_primary``), re-routing only on
        saturation.  Because establishment is all-or-nothing, a fresh
        route that fails leaves the network unchanged — so the same
        failure is propagated to the group's remaining members without
        re-running the search.  Declarative (literal-``P_r``) requests
        re-route per connection anyway and are admitted individually.

        Returns a list aligned with ``requests``: each entry is the
        established :class:`DConnection` or the
        :class:`EstablishmentError` that blocked it.  The outcome for
        every request is identical to sequential one-at-a-time
        establishment, except that a reused path may be a different
        (equal-length, still shortest feasible) member of the same
        shortest-path equivalence class.
        """
        results: "list[DConnection | EstablishmentError]" = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append(index)
        for indices in groups.values():
            cached_path: Path | None = None
            blocked: EstablishmentError | None = None
            for index in indices:
                request = requests[index]
                if request.ft_qos.is_declarative:
                    try:
                        results[index] = self.establish_literal(
                            request.src, request.dst, request.traffic,
                            request.delay_qos, request.ft_qos,
                        )
                    except EstablishmentError as error:
                        results[index] = error
                    continue
                if blocked is not None:
                    results[index] = blocked
                    continue
                bandwidth = request.traffic.bandwidth
                reuse = cached_path is not None and all(
                    self.ledger.can_reserve_primary(link, bandwidth)
                    for link in cached_path.links
                )
                while True:
                    try:
                        if reuse:
                            connection = self._commit_primary(
                                request.src, request.dst, request.traffic,
                                request.delay_qos, request.ft_qos, cached_path,
                            )
                        else:
                            connection = self._establish_primary_only(
                                request.src, request.dst, request.traffic,
                                request.delay_qos, request.ft_qos,
                            )
                        connection = self._attach_backups(connection, request.ft_qos)
                    except EstablishmentError as error:
                        if reuse:
                            # All-or-nothing rolled everything back; retry
                            # this request with a fresh route before giving
                            # up on it (the reused path may simply have
                            # poor backup prospects now).
                            reuse = False
                            cached_path = None
                            continue
                        results[index] = error
                        blocked = error
                        cached_path = None
                        break
                    results[index] = connection
                    cached_path = connection.primary.path
                    break
        return results

    def _attach_backups(
        self, connection: DConnection, ft_qos: FaultToleranceQoS
    ) -> DConnection:
        """Add the prescriptive backups to a freshly admitted primary
        (all-or-nothing: failure tears the connection down)."""
        try:
            for _ in range(ft_qos.num_backups):
                self.add_backup(connection, ft_qos.mux_degree)
        except EstablishmentError:
            self.teardown(connection)
            raise
        connection.achieved_pr = connection_pr(connection, self.mux)
        return connection

    def establish_literal(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec | None = None,
        delay_qos: DelayQoS | None = None,
        ft_qos: FaultToleranceQoS | None = None,
    ) -> DConnection:
        """Establish meeting a required ``P_r`` *literally* (Section 3.4,
        scheme 2).

        Backups are added one at a time.  For each backup the forward pass
        collects |Ψ(B, ℓ)| for every candidate multiplexing degree; the
        largest degree whose resulting ``P_r`` (via the P_muxf bound) meets
        the requirement is selected — i.e. the cheapest admissible spare
        reservation.  If no degree suffices, the backup is kept at the
        degree maximising ``P_r`` (degree 0: no sharing) and another backup
        is attempted, up to ``ft_qos.max_backups``.
        """
        traffic = traffic or TrafficSpec()
        delay_qos = delay_qos or DelayQoS()
        ft_qos = ft_qos or FaultToleranceQoS(required_pr=0.999999)
        if not ft_qos.is_declarative:
            raise ValueError("establish_literal needs ft_qos.required_pr set")
        required = ft_qos.required_pr

        connection = self._establish_primary_only(src, dst, traffic, delay_qos, ft_qos)
        try:
            while connection_pr(connection, self.mux) < required:
                if connection.num_backups >= ft_qos.max_backups:
                    raise EstablishmentError(
                        f"required P_r={required} unreachable with "
                        f"{ft_qos.max_backups} backups "
                        f"(achieved {connection_pr(connection, self.mux):.9f}); "
                        f"renegotiate"
                    )
                try:
                    self._add_backup_literal(connection, required)
                except EstablishmentError:
                    # Section 3.4: "The multiplexing degree of the backups
                    # set up previously can be adjusted (further relaxed),
                    # if necessary" — free some spare and retry once.
                    if not self._relax_existing_backups(connection):
                        raise
                    self._add_backup_literal(connection, required)
        except EstablishmentError:
            self.teardown(connection)
            raise
        connection.achieved_pr = connection_pr(connection, self.mux)
        return connection

    def negotiate_loose(
        self,
        src: NodeId,
        dst: NodeId,
        required_pr: float,
        traffic: TrafficSpec | None = None,
        delay_qos: DelayQoS | None = None,
        num_backups: int = 1,
        candidate_degrees: tuple[int, ...] = (6, 5, 3, 1, 0),
    ) -> NegotiationOffer:
        """Loose negotiation (Section 3.4, scheme 1).

        BCP starts from the cheapest candidate degree and tightens until the
        requirement is met or candidates are exhausted; the *resultant*
        ``P_r`` is returned as an offer the client may accept or reject.
        """
        traffic = traffic or TrafficSpec()
        delay_qos = delay_qos or DelayQoS()
        degrees = sorted(set(candidate_degrees), reverse=True)
        if not degrees:
            raise ValueError("candidate_degrees must not be empty")
        # Establish once at the cheapest candidate, then tighten the live
        # backups in place (Section 3.4's degree adjustment) until the
        # requirement is met or capacity runs out.
        connection = self.establish(
            src,
            dst,
            traffic,
            delay_qos,
            FaultToleranceQoS(num_backups=num_backups, mux_degree=degrees[0]),
        )
        for degree in degrees[1:]:
            if connection_pr(connection, self.mux) >= required_pr:
                break
            try:
                for backup in connection.backups:
                    self.adjust_backup_degree(connection, backup, degree)
            except EstablishmentError:
                break  # keep the tightest feasible configuration
        connection.achieved_pr = connection_pr(connection, self.mux)
        return NegotiationOffer(
            connection=connection,
            required_pr=required_pr,
            achieved_pr=connection.achieved_pr,
            _engine=self,
        )

    def add_backup(self, connection: DConnection, mux_degree: int) -> Channel:
        """Route and commit one more backup for ``connection``."""
        path = self._route_backup(connection, mux_degree)
        return self._commit_backup(connection, path, mux_degree)

    def adjust_backup_degree(
        self, connection: DConnection, backup: Channel, new_degree: int
    ) -> Channel:
        """Change a live backup's multiplexing degree in place.

        Section 3.4: "The multiplexing degree of the backups set up
        previously can be adjusted (further relaxed), if necessary."  The
        path is kept; the backup is re-registered with the new ν and every
        spare pool resized.  Tightening (a smaller degree) can fail for
        lack of capacity, in which case the original degree is restored
        and :class:`EstablishmentError` raised.
        """
        if backup not in connection.backups:
            raise ValueError(
                f"channel {backup.channel_id} is not a backup of "
                f"connection {connection.connection_id}"
            )
        if new_degree < 0:
            raise ValueError(f"new_degree must be >= 0, got {new_degree}")
        old_degree = backup.mux_degree
        if new_degree == old_degree:
            return backup

        def register_at(degree: int) -> bool:
            backup.mux_degree = degree
            requirements = self.mux.add_backup(backup, connection.primary)
            if all(
                self.ledger.can_set_spare(link, required)
                for link, required in requirements.items()
            ):
                for link, required in requirements.items():
                    self.ledger.set_spare(link, required)
                return True
            rollback = self.mux.remove_backup(backup)
            for link, required in rollback.items():
                self.ledger.set_spare(link, required)
            return False

        shrunk = self.mux.remove_backup(backup)
        for link, required in shrunk.items():
            self.ledger.set_spare(link, required)
        if register_at(new_degree):
            if all(b.mux_degree == new_degree for b in connection.backups):
                # Keep the connection-level QoS (and with it the activation
                # priority) in step with its backups.
                connection.ft_qos = dataclasses.replace(
                    connection.ft_qos, mux_degree=new_degree
                )
            return backup
        if not register_at(old_degree):  # pragma: no cover - was feasible
            raise EstablishmentError(
                f"could not restore backup {backup.channel_id} after a "
                f"failed degree adjustment"
            )
        raise EstablishmentError(
            f"insufficient capacity to tighten backup {backup.channel_id} "
            f"from mux={old_degree} to mux={new_degree}"
        )

    def remove_backup(self, connection: DConnection, backup: Channel) -> None:
        """Tear down one backup channel, shrinking spare pools."""
        if backup not in connection.backups:
            raise ValueError(
                f"channel {backup.channel_id} is not a backup of "
                f"connection {connection.connection_id}"
            )
        requirements = self.mux.remove_backup(backup)
        for link, required in requirements.items():
            self.ledger.set_spare(link, required)
        self.registry.remove(backup.channel_id)
        connection.backups.remove(backup)

    def teardown(self, connection: DConnection) -> None:
        """Tear down the whole D-connection, releasing every reservation.

        Incremental: the backups leave the multiplexing state first and
        only the links they crossed get their spare pools re-mirrored, in
        one bulk ledger update (a single version bump); the primary's
        bandwidth is then released along its path in a second bulk update.
        Links the connection never touched keep their pools untouched.
        """
        backups = list(connection.backups)
        if backups:
            requirements = self.mux.remove_backups(backups)
            self.ledger.set_spares(requirements)
            for backup in backups:
                self.registry.remove(backup.channel_id)
            connection.backups.clear()
        if connection.primary.channel_id in self.registry:
            self.admission.release_primary(connection.primary.path, connection.traffic)
            self.registry.remove(connection.primary.channel_id)
        connection.state = ConnectionState.CLOSED

    # ------------------------------------------------------------------
    # primary establishment
    # ------------------------------------------------------------------
    def _establish_primary_only(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec,
        delay_qos: DelayQoS,
        ft_qos: FaultToleranceQoS,
    ) -> DConnection:
        path = self._route_primary(src, dst, traffic, delay_qos)
        return self._commit_primary(src, dst, traffic, delay_qos, ft_qos, path)

    def _route_primary(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec,
        delay_qos: DelayQoS,
    ) -> Path:
        """Shortest admissible primary path — the routing half of
        establishment, separated so batched admission can reuse it."""
        if src == dst:
            raise EstablishmentError(f"source equals destination: {src!r}")
        try:
            shortest_possible = hop_distance(self.topology, src, dst)
        except NoPathError as error:
            raise EstablishmentError(str(error)) from error
        constraints = RouteConstraints(
            link_admissible=self.admission.primary_link_predicate(traffic),
            max_hops=delay_qos.max_hops(shortest_possible),
        )
        try:
            return shortest_path(self.topology, src, dst, constraints)
        except NoPathError as error:
            raise EstablishmentError(
                f"no admissible primary path {src!r}->{dst!r}: {error}"
            ) from error

    def _commit_primary(
        self,
        src: NodeId,
        dst: NodeId,
        traffic: TrafficSpec,
        delay_qos: DelayQoS,
        ft_qos: FaultToleranceQoS,
        path: Path,
    ) -> DConnection:
        """Reserve ``path`` and mint the primary channel + connection —
        the commitment half of establishment."""
        try:
            self.admission.reserve_primary(path, traffic)
        except AdmissionError as error:  # pragma: no cover - predicate guards
            raise EstablishmentError(str(error)) from error
        except Exception as error:
            raise EstablishmentError(
                f"primary reservation failed {src!r}->{dst!r}: {error}"
            ) from error

        primary = Channel(
            channel_id=self.registry.allocate_id(),
            connection_id=self._next_connection_id,
            role=ChannelRole.PRIMARY,
            serial=0,
            path=path,
            traffic=traffic,
            mux_degree=ft_qos.mux_degree,
        )
        self.registry.add(primary)
        connection = DConnection(
            connection_id=self._next_connection_id,
            source=src,
            destination=dst,
            traffic=traffic,
            delay_qos=delay_qos,
            ft_qos=ft_qos,
            primary=primary,
        )
        self._next_connection_id += 1
        return connection

    # ------------------------------------------------------------------
    # backup routing and commitment
    # ------------------------------------------------------------------
    def _disjointness_constraints(self, connection: DConnection) -> tuple[set, set]:
        """Interior nodes and links of every existing channel of the
        connection — the components a new backup must avoid."""
        excluded_nodes: set = set()
        excluded_links: set = set()
        for channel in connection.channels:
            excluded_nodes.update(channel.path.interior_nodes)
            excluded_links.update(channel.path.links)
        return excluded_nodes, excluded_links

    def _route_backup(self, connection: DConnection, mux_degree: int) -> Path:
        """Shortest feasible disjoint backup path.

        Routing runs a fast unconstrained-by-spare search first, then
        verifies the multiplexing admission (spare-pool growth must fit
        each link) on the found path; violating links are excluded and the
        search retried.  Each retry removes at least one link, so the loop
        terminates.
        """
        src, dst = connection.source, connection.destination
        traffic = connection.traffic
        excluded_nodes, excluded_links = self._disjointness_constraints(connection)
        if connection.delay_qos.per_channel_baseline:
            # The backup's delay budget is relative to the shortest path
            # *it* could take given disjointness (see DelayQoS).
            try:
                baseline = shortest_path(
                    self.topology,
                    src,
                    dst,
                    RouteConstraints(
                        excluded_nodes=frozenset(excluded_nodes),
                        excluded_links=frozenset(excluded_links),
                    ),
                ).hops
            except NoPathError as error:
                raise EstablishmentError(
                    f"no disjoint backup route exists {src!r}->{dst!r} "
                    f"(serial {connection.num_backups + 1}): {error}"
                ) from error
        else:
            baseline = hop_distance(self.topology, src, dst)
        max_hops = connection.delay_qos.max_hops(baseline)
        primary = connection.primary
        components = self.mux.policy.component_set(primary.path)
        count = len(components)
        mask = self.mux.space.mask(components)
        bandwidth = traffic.bandwidth

        cost = None
        if self.backup_cost_factory is not None:
            cost = self.backup_cost_factory(self, connection, mux_degree)

        extra_excluded: set[LinkId] = set()
        for _ in range(self.MAX_ROUTE_RETRIES):
            constraints = RouteConstraints(
                excluded_nodes=frozenset(excluded_nodes),
                excluded_links=frozenset(excluded_links | extra_excluded),
                max_hops=max_hops,
            )
            try:
                path = shortest_path(self.topology, src, dst, constraints, cost)
            except NoPathError as error:
                raise EstablishmentError(
                    f"no feasible backup path {src!r}->{dst!r} "
                    f"(serial {connection.num_backups + 1}): {error}"
                ) from error
            violations = [
                link
                for link in path.links
                if not self.ledger.can_set_spare(
                    link,
                    self.mux.link_state(link).preview_add(
                        bandwidth, mux_degree, components, count, mask
                    ),
                )
            ]
            if not violations:
                return path
            extra_excluded.update(violations)
        raise EstablishmentError(
            f"backup routing for {src!r}->{dst!r} exceeded "
            f"{self.MAX_ROUTE_RETRIES} retries"
        )

    def _commit_backup(
        self, connection: DConnection, path: Path, mux_degree: int
    ) -> Channel:
        backup = Channel(
            channel_id=self.registry.allocate_id(),
            connection_id=connection.connection_id,
            role=ChannelRole.BACKUP,
            serial=connection.num_backups + 1,
            path=path,
            traffic=connection.traffic,
            mux_degree=mux_degree,
        )
        requirements = self.mux.add_backup(backup, connection.primary)
        try:
            # Bulk mirror: validate-then-apply, so a failure leaves every
            # pool untouched and only the mux registration needs undoing.
            self.ledger.set_spares(requirements)
        except Exception as error:
            self.mux.remove_backup(backup)
            raise EstablishmentError(
                f"spare reservation failed for backup of connection "
                f"{connection.connection_id}: {error}"
            ) from error
        self.registry.add(backup)
        connection.backups.append(backup)
        return backup

    def _relax_existing_backups(self, connection: DConnection,
                                step: int = 2) -> bool:
        """Loosen every existing backup's multiplexing degree by ``step``
        (capped at the point where everything multiplexes), freeing spare
        for an additional backup.  Returns whether anything changed."""
        policy = self.mux.policy
        cap = policy.component_count(connection.primary.path) + 1
        relaxed = False
        for backup in connection.backups:
            target = min(cap, backup.mux_degree + step)
            if target > backup.mux_degree:
                self.adjust_backup_degree(connection, backup, target)
                relaxed = True
        return relaxed

    def _add_backup_literal(self, connection: DConnection, required_pr: float) -> None:
        """One literal-scheme backup: forward-pass |Ψ| collection, then
        degree selection at the destination (Section 3.4, scheme 2)."""
        # Route conservatively at degree 0 (no sharing) — any selected
        # degree only shrinks the spare requirement, so the path stays
        # admissible (this mirrors "reserves spare resources for the backup
        # without multiplexing" in the forward pass).
        path = self._route_backup(connection, mux_degree=0)

        # Candidate degrees: S ≈ sc·λ clusters at integer multiples of λ,
        # and sc is at most the component count of the primary path, so
        # degrees beyond that are all equivalent (Section 3.4).
        policy = self.mux.policy
        components = policy.component_set(connection.primary.path)
        max_degree = len(components) + 1
        candidates = list(range(max_degree, -1, -1))

        chosen: int | None = None
        best_degree = 0  # degree 0 maximises P_r when nothing suffices
        for degree in candidates:  # largest (cheapest) first
            if self._pr_with_backup_at(connection, path, degree) >= required_pr:
                chosen = degree
                break
        self._commit_backup(connection, path, chosen if chosen is not None else best_degree)

    def _pr_with_backup_at(
        self, connection: DConnection, path: Path, degree: int
    ) -> float:
        """``P_r`` the connection would achieve if a backup were added on
        ``path`` at the given degree — evaluated without mutating state,
        from the per-link |Ψ| counts a reservation message would collect."""
        policy = self.mux.policy
        primary_components = policy.component_set(connection.primary.path)
        primary_count = len(primary_components)
        primary_mask = self.mux.space.mask(primary_components)

        backup_counts = []
        p_muxfs = []
        for existing in connection.backups:
            backup_counts.append(policy.component_count(existing.path))
            psi = list(self.mux.psi_sizes(existing).values())
            p_muxfs.append(p_muxf_upper_bound(psi, policy.nu(existing.mux_degree)))

        psi_new = [
            self.mux.link_state(link).psi_sizes_for_candidate(
                primary_components, primary_count, [degree], primary_mask
            )[degree]
            for link in path.links
        ]
        backup_counts.append(policy.component_count(path))
        p_muxfs.append(p_muxf_upper_bound(psi_new, policy.nu(degree)))
        return pr_multiple_backups(
            primary_count, backup_counts, policy.failure_probability, p_muxfs
        )
