"""Backup multiplexing: per-link spare-pool sizing (Sections 3.2 and 6).

At each link ℓ, the spare pool must be large enough to activate any backup
``B_i`` together with every *conflicting* backup that would draw from the
pool before it.  Following Section 3.2:

* ``Π(B_i, ℓ)`` — the backups **not multiplexable** with ``B_i`` — contains
  every backup ``B_j`` on ℓ with ``ν_j ≤ ν_i`` (the paper's refinement:
  "we consider only backups with no greater multiplexing degrees") whose
  simultaneous-activation probability satisfies ``S(B_i, B_j) ≥ ν_i``.
* the pool is sized ``spare(ℓ) = max_i [ bw(B_i) + Σ_{B_j ∈ Π(B_i,ℓ)} bw(B_j) ]``.

The ``ν_j ≤ ν_i`` filter is sound because activation is priority-ordered
by multiplexing degree (Section 4.3): when spare is contended, backups
with smaller ν draw first, so ``B_i`` only needs headroom for conflicting
backups of equal or higher priority.  This is exactly what makes the
paper's guarantees hold (mux=1 ⇒ all single failures covered, mux=3 ⇒ all
single *link* failures covered), and the recovery evaluator activates in
the same order.

``Ψ(B_i, ℓ)`` — the backups *multiplexed with* ``B_i`` (sharing its spare)
— feeds the multiplexing-failure bound of Section 3.3.

Complexity (Section 6): adding or removing a backup updates a link in
O(n) pairwise tests by maintaining each entry's requirement incrementally;
recomputing from scratch would be O(n²).  Both paths exist (the scratch
recompute doubles as a validation oracle) and the benchmarks
``bench_scalability`` / ``bench_mux`` measure the gap.

At scale the engine routes per-link state through the vectorized
packed-bitset kernel (:mod:`repro.core.muxkernel`), which keeps the same
O(n) contract but performs the n pair tests of an admission or teardown
as one numpy conflict test per link, bit-identically.  The per-pair
:class:`LinkMuxState` below is retained as the golden reference oracle
(the ``reference_shortest_path`` pattern) and serves exact-``S`` policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.channel import Channel, ChannelRole
from repro.core.muxkernel import (
    ComponentArena,
    VectorLinkMux,
    kernel_available,
    mux_kernel_enabled,
    publish_engine_obs,
    _ObsSync,
)
from repro.core.overlap import ComponentSpace, OverlapIndex, OverlapPolicy
from repro.network.components import LinkId
from repro.obs.registry import get_registry
from repro.routing.paths import Path
from repro.util.validation import check_positive


@dataclass(slots=True)
class MuxEntry:
    """Multiplexing bookkeeping for one backup on one link."""

    channel_id: int
    bandwidth: float
    mux_degree: int
    primary_components: frozenset
    primary_count: int
    #: Integer bitset of ``primary_components`` under the engine's
    #: :class:`~repro.core.overlap.ComponentSpace` (0 when the caller did
    #: not pre-resolve one; pair tests then fall back to set intersection).
    mask: int = 0
    #: ids of the backups in Π(B_i, ℓ) — non-multiplexable, priority ≤ ours.
    conflicts: set[int] = field(default_factory=set)
    #: bw(B_i) + Σ bw over `conflicts`; maintained incrementally.
    requirement: float = 0.0


class LinkMuxState:
    """Multiplexing state of the backups on one simplex link."""

    def __init__(
        self,
        link: LinkId,
        policy: OverlapPolicy,
        overlaps: "OverlapIndex | None" = None,
    ) -> None:
        self.link = link
        self.policy = policy
        #: Shared-count cache, usually shared across every link of an
        #: engine (the same backup pair meets on many links).
        self.overlaps = overlaps
        self._entries: dict[int, MuxEntry] = {}
        self._spare_required = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, channel_id: object) -> bool:
        return channel_id in self._entries

    def entries(self) -> list[MuxEntry]:
        """All backup entries on this link, in registration order."""
        return list(self._entries.values())

    def entry(self, channel_id: int) -> MuxEntry:
        """The entry for one backup; raises ``KeyError`` if absent."""
        return self._entries[channel_id]

    def set_requirements(
        self, requirements: "dict[int, float]", spare_required: float
    ) -> None:
        """Overwrite per-entry requirements and the pool maximum verbatim.

        Requirement values are maintained *incrementally* by :meth:`add` /
        :meth:`remove`, so in IEEE arithmetic they depend on the full
        add/remove history, not just the resident entry set.  Snapshot
        restore therefore re-adds entries to rebuild the integer
        structure (Π conflict sets) and then calls this to transplant the
        float state recorded at snapshot time, making post-restore pool
        sizing bit-identical to the uninterrupted run.
        """
        for channel_id, requirement in requirements.items():
            self._entries[channel_id].requirement = requirement
        self._spare_required = spare_required

    def spare_required(self) -> float:
        """The pool size required by the current backup set.

        O(1): the maximum is maintained incrementally by :meth:`add` /
        :meth:`remove` instead of being recomputed per query.
        """
        return self._spare_required

    def spare_required_recomputed(self) -> float:
        """O(n²) from-scratch recomputation — validation oracle for the
        incremental bookkeeping, and the naive baseline of Section 6."""
        entries = list(self._entries.values())
        best = 0.0
        for entry in entries:
            requirement = entry.bandwidth
            for other in entries:
                if other.channel_id != entry.channel_id and self._in_pi(entry, other):
                    requirement += other.bandwidth
            best = max(best, requirement)
        return best

    def psi_size(self, channel_id: int) -> int:
        """|Ψ(B_i, ℓ)| — how many backups share spare with ``B_i``
        (Section 3.3's multiplexing-failure bound input)."""
        entry = self._entries[channel_id]
        if not self.policy.exact:
            # Integer mode: multiplexable ⇔ sc < ν, with sc a popcount
            # when both entries carry pre-resolved bitset masks.
            degree = entry.mux_degree
            if degree <= 0:
                return 0
            mask = entry.mask
            components = entry.primary_components
            count = 0
            for other in self._entries.values():
                if other.channel_id == channel_id:
                    continue
                other_mask = other.mask
                shared = (
                    (mask & other_mask).bit_count()
                    if mask and other_mask
                    else len(components & other.primary_components)
                )
                if shared < degree:
                    count += 1
            return count
        return sum(
            1
            for other in self._entries.values()
            if other.channel_id != channel_id and self._multiplexable(entry, other)
        )

    def psi_sizes_for_candidate(
        self,
        primary_components: frozenset,
        primary_count: int,
        mux_degrees: list[int],
        mask: int = 0,
    ) -> dict[int, int]:
        """|Ψ| a *new* backup would see on this link, per candidate degree.

        This is the forward-pass computation of the literal negotiation
        scheme (Section 3.4): the reservation message collects these counts
        so the destination can pick the largest admissible ν.  ``mask`` is
        the candidate primary's pre-resolved component bitset (optional).
        """
        sizes = dict.fromkeys(mux_degrees, 0)
        for other in self._entries.values():
            other_mask = other.mask
            shared = (
                (mask & other_mask).bit_count()
                if mask and other_mask
                else len(primary_components & other.primary_components)
            )
            for degree in mux_degrees:
                if self.policy.multiplexable_counts(
                    primary_count, other.primary_count, shared, degree
                ):
                    sizes[degree] += 1
        return sizes

    # ------------------------------------------------------------------
    # pair tests
    # ------------------------------------------------------------------
    def _shared(self, a: MuxEntry, b: MuxEntry) -> int:
        if a.mask and b.mask:
            return (a.mask & b.mask).bit_count()
        if self.overlaps is not None and a.channel_id >= 0 and b.channel_id >= 0:
            return self.overlaps.shared_count(
                a.channel_id, a.primary_components,
                b.channel_id, b.primary_components,
            )
        return len(a.primary_components & b.primary_components)

    def _multiplexable(self, perspective: MuxEntry, other: MuxEntry) -> bool:
        """Whether ``other`` may share ``perspective``'s spare, judged by
        ``perspective``'s own threshold ν."""
        return self.policy.multiplexable_counts(
            perspective.primary_count,
            other.primary_count,
            self._shared(perspective, other),
            perspective.mux_degree,
        )

    def _in_pi(self, perspective: MuxEntry, other: MuxEntry) -> bool:
        """Whether ``other`` belongs to Π(perspective, ℓ)."""
        return other.mux_degree <= perspective.mux_degree and not self._multiplexable(
            perspective, other
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def preview_add(
        self,
        bandwidth: float,
        mux_degree: int,
        primary_components: frozenset,
        primary_count: int,
        mask: int = 0,
    ) -> float:
        """Pool size this link would need if the described backup joined.

        Pure query — used by establishment to test admission before
        committing, without mutating any state.  ``mask`` is the candidate
        primary's pre-resolved component bitset (optional; enables the
        popcount pair test in integer mode).
        """
        check_positive(bandwidth, "bandwidth")
        if not self.policy.exact:
            # Integer mode, inlined: in_pi(p, o) ⇔ o.ν ≤ p.ν and not
            # (p.ν > 0 and sc < p.ν), with sc a popcount where possible.
            # Entries the candidate does not conflict with keep their
            # current requirement, whose maximum is already maintained in
            # ``_spare_required`` — only conflicting entries need a look.
            degree = mux_degree
            new_requirement = bandwidth
            conflict_peak = -1.0
            for other in self._entries.values():
                other_mask = other.mask
                shared = (
                    (mask & other_mask).bit_count()
                    if mask and other_mask
                    else len(primary_components & other.primary_components)
                )
                other_degree = other.mux_degree
                if other_degree <= degree and (degree <= 0 or shared >= degree):
                    new_requirement += other.bandwidth
                if degree <= other_degree and (
                    other_degree <= 0 or shared >= other_degree
                ):
                    if other.requirement > conflict_peak:
                        conflict_peak = other.requirement
            best = self._spare_required
            if conflict_peak >= 0.0 and conflict_peak + bandwidth > best:
                best = conflict_peak + bandwidth
            return max(best, new_requirement)
        candidate = MuxEntry(
            channel_id=-1,
            bandwidth=bandwidth,
            mux_degree=mux_degree,
            primary_components=primary_components,
            primary_count=primary_count,
            mask=mask,
        )
        new_requirement = bandwidth
        best = 0.0
        for other in self._entries.values():
            if self._in_pi(candidate, other):
                new_requirement += other.bandwidth
            if self._in_pi(other, candidate):
                best = max(best, other.requirement + bandwidth)
            else:
                best = max(best, other.requirement)
        return max(best, new_requirement)

    def add(
        self,
        channel_id: int,
        bandwidth: float,
        mux_degree: int,
        primary_components: frozenset,
        primary_count: int,
        mask: int = 0,
    ) -> float:
        """Register a backup; returns the new required pool size.

        O(n) in the number of backups already on the link: one pairwise
        test per existing entry, updating requirements incrementally.
        ``mask`` is the primary's pre-resolved component bitset (optional).
        """
        if channel_id in self._entries:
            raise ValueError(f"backup {channel_id} already on link {self.link}")
        check_positive(bandwidth, "bandwidth")
        entry = MuxEntry(
            channel_id=channel_id,
            bandwidth=bandwidth,
            mux_degree=mux_degree,
            primary_components=primary_components,
            primary_count=primary_count,
            mask=mask,
        )
        entry.requirement = bandwidth
        # Requirements only grow on add, so the cached maximum needs at
        # most the new entry's requirement and the ones that just grew.
        peak = self._spare_required
        if not self.policy.exact:
            # Integer mode, inlined (see preview_add).
            degree = mux_degree
            for other in self._entries.values():
                other_mask = other.mask
                shared = (
                    (mask & other_mask).bit_count()
                    if mask and other_mask
                    else len(primary_components & other.primary_components)
                )
                other_degree = other.mux_degree
                if other_degree <= degree and (degree <= 0 or shared >= degree):
                    entry.conflicts.add(other.channel_id)
                    entry.requirement += other.bandwidth
                if degree <= other_degree and (
                    other_degree <= 0 or shared >= other_degree
                ):
                    other.conflicts.add(channel_id)
                    other.requirement += bandwidth
                    if other.requirement > peak:
                        peak = other.requirement
        else:
            for other in self._entries.values():
                if self._in_pi(entry, other):
                    entry.conflicts.add(other.channel_id)
                    entry.requirement += other.bandwidth
                if self._in_pi(other, entry):
                    other.conflicts.add(channel_id)
                    other.requirement += bandwidth
                    if other.requirement > peak:
                        peak = other.requirement
        self._entries[channel_id] = entry
        self._spare_required = max(peak, entry.requirement)
        return self._spare_required

    def remove(self, channel_id: int) -> float:
        """Deregister a backup; returns the new required pool size."""
        entry = self._entries.pop(channel_id, None)
        if entry is None:
            raise KeyError(f"backup {channel_id} not on link {self.link}")
        for other in self._entries.values():
            if channel_id in other.conflicts:
                other.conflicts.discard(channel_id)
                other.requirement -= entry.bandwidth
        # Requirements only shrink on remove; the old maximum may be gone.
        self._spare_required = max(
            (other.requirement for other in self._entries.values()),
            default=0.0,
        )
        return self._spare_required


class MultiplexingEngine:
    """Backup-multiplexing state across all links of a network.

    Owns one :class:`LinkMuxState` per link (created lazily), keyed by the
    channels' paths.  The engine is pure bookkeeping: the establishment
    machinery is responsible for mirroring pool sizes into the reservation
    ledger.
    """

    def __init__(
        self,
        policy: OverlapPolicy | None = None,
        use_kernel: "bool | None" = None,
    ) -> None:
        self.policy = policy or OverlapPolicy()
        #: Engine-wide shared-count cache: a backup pair sharing k links
        #: costs one set intersection instead of k.  Only consulted for
        #: entry pairs without pre-resolved bitset masks (see ``space``).
        self.overlaps = OverlapIndex()
        #: Engine-wide component interner: primaries' component sets are
        #: resolved to integer bitsets once, turning every pairwise
        #: shared-count in the mux hot loops into a popcount.
        self.space = ComponentSpace()
        #: Whether links use the vectorized packed-bitset kernel
        #: (:mod:`repro.core.muxkernel`).  Resolved at construction from
        #: the process-wide toggle; the kernel implements the integer
        #: multiplexability test only, so exact-``S`` policies always
        #: keep the per-pair reference path.
        if use_kernel is None:
            use_kernel = mux_kernel_enabled()
        self.use_kernel = (
            bool(use_kernel) and kernel_available() and not self.policy.exact
        )
        #: Shared packed-bitset arena (kernel engines only).
        self.arena = ComponentArena() if self.use_kernel else None
        self._links: "dict[LinkId, LinkMuxState | VectorLinkMux]" = {}
        self._obs = _ObsSync()

    def link_state(self, link: LinkId) -> "LinkMuxState | VectorLinkMux":
        """The (lazily created) multiplexing state of ``link``."""
        state = self._links.get(link)
        if state is None:
            if self.use_kernel:
                state = VectorLinkMux(link, self.policy, self.arena)
            else:
                state = LinkMuxState(link, self.policy, overlaps=self.overlaps)
            self._links[link] = state
        return state

    def spare_required(self, link: LinkId) -> float:
        """Required pool size of ``link`` (0 for untouched links)."""
        state = self._links.get(link)
        return state.spare_required() if state else 0.0

    def link_states(self) -> "dict[LinkId, LinkMuxState | VectorLinkMux]":
        """Live per-link states — only links that ever saw a backup.

        Read-only view for the snapshot codec; an empty state is
        indistinguishable from an untouched link (its pool requirement
        is exactly ``0.0``), so snapshots skip both.
        """
        return self._links

    # ------------------------------------------------------------------
    def component_mask(self, primary_path: Path) -> int:
        """The primary's component set as an interned integer bitset."""
        return self.space.mask(self.policy.component_set(primary_path))

    def _describe(
        self, backup: Channel, primary: Channel
    ) -> tuple[frozenset, int, int]:
        components = self.policy.component_set(primary.path)
        # Kernel links resolve components to arena rows themselves; the
        # integer mask would be dead weight there.
        mask = 0 if self.use_kernel else self.space.mask(components)
        return components, len(components), mask

    def describe_backup(
        self, backup: Channel, primary: Channel
    ) -> tuple[frozenset, int, int]:
        """``(components, count, mask)`` of ``primary`` as the per-link
        states consume it — the arguments their ``add`` takes after the
        channel identity and QoS numbers.  Public for the snapshot codec
        (:mod:`repro.serve.state`), which replays ``add`` per link to
        rebuild mux structure without re-routing anything."""
        return self._describe(backup, primary)

    def preview_backup(
        self, backup_path: Path, bandwidth: float, mux_degree: int, primary: Channel
    ) -> dict[LinkId, float]:
        """Required pool size per link of ``backup_path`` if the backup
        were added — the establishment admission query."""
        components = self.policy.component_set(primary.path)
        count = len(components)
        mask = 0 if self.use_kernel else self.space.mask(components)
        requirements = {
            link: self.link_state(link).preview_add(
                bandwidth, mux_degree, components, count, mask
            )
            for link in backup_path.links
        }
        if self.use_kernel:
            get_registry().counter("mux.kernel.previews").inc()
        publish_engine_obs(self)
        return requirements

    def add_backup(self, backup: Channel, primary: Channel) -> dict[LinkId, float]:
        """Register ``backup`` on every link of its path; returns the new
        required pool size per link.

        With the kernel, the admission touches only the rows of the links
        on the backup's path — one vectorized conflict test per link."""
        if backup.role is not ChannelRole.BACKUP:
            raise ValueError(f"channel {backup.channel_id} is not a backup")
        components, count, mask = self._describe(backup, primary)
        self.overlaps.register(backup.channel_id)
        requirements = {
            link: self.link_state(link).add(
                backup.channel_id,
                backup.bandwidth,
                backup.mux_degree,
                components,
                count,
                mask,
            )
            for link in backup.path.links
        }
        if self.use_kernel:
            get_registry().counter("mux.kernel.adds").inc()
        publish_engine_obs(self)
        return requirements

    def remove_backup(self, backup: Channel) -> dict[LinkId, float]:
        """Deregister ``backup`` from every link of its path; returns the
        new required pool size per link."""
        requirements = {
            link: self.link_state(link).remove(backup.channel_id)
            for link in backup.path.links
        }
        self.overlaps.unregister(backup.channel_id)
        if self.use_kernel:
            get_registry().counter("mux.kernel.removes").inc()
        publish_engine_obs(self)
        return requirements

    def remove_backups(self, backups: "list[Channel]") -> dict[LinkId, float]:
        """Deregister several backups at once; returns the new required
        pool size per *affected* link.

        The returned mapping holds each link's final requirement —
        suitable for one bulk :meth:`ReservationLedger.set_spares` mirror
        (the incremental-teardown path: only links some removed backup
        crossed are touched, everything else keeps its pool untouched).

        Kernel engines group the removals by link first and tear each
        link down in one :meth:`~repro.core.muxkernel.VectorLinkMux.remove_many`
        call (same per-removal order as the sequential path, so the final
        state is bit-identical); reference engines fall back to
        backup-by-backup removal."""
        if not self.use_kernel:
            requirements: dict[LinkId, float] = {}
            for backup in backups:
                requirements.update(self.remove_backup(backup))
            return requirements
        per_link: dict[LinkId, list[int]] = {}
        for backup in backups:
            for link in backup.path.links:
                per_link.setdefault(link, []).append(backup.channel_id)
        requirements = {
            link: self.link_state(link).remove_many(channel_ids)
            for link, channel_ids in per_link.items()
        }
        for backup in backups:
            self.overlaps.unregister(backup.channel_id)
        registry = get_registry()
        registry.counter("mux.kernel.removes").inc(len(backups))
        registry.counter("mux.kernel.batched_teardowns").inc()
        publish_engine_obs(self)
        return requirements

    def psi_sizes(self, backup: Channel) -> dict[LinkId, int]:
        """|Ψ(B_i, ℓ)| for every link of the backup's path — the inputs of
        the P_muxf upper bound (Section 3.3)."""
        return {
            link: self.link_state(link).psi_size(backup.channel_id)
            for link in backup.path.links
        }
