"""Per-link bandwidth bookkeeping.

Every simplex link tracks two reservation pools:

* ``primary`` — bandwidth dedicated to active (primary) channels, exactly
  as in a conventional real-time channel scheme, and
* ``spare`` — the shared pool sized by backup multiplexing (Section 3.2),
  from which activated backups draw.

The admission rule everywhere is ``primary + spare <= capacity``.  The
ledger enforces it and exposes the two network-wide percentages the paper
reports: *network-load* (primary bandwidth over total capacity) and
*spare bandwidth* (spare reservation over total capacity).

Topology mutation contract
--------------------------

A ledger observes its topology through ``topology.version``.  Links (and
nodes) may be **added** after the ledger is constructed — the runtime
re-establishes over grown graphs, and churn workloads mutate topologies
between establishment rounds.  The ledger extends itself lazily: any
accessor that misses a link, and every bulk/network-wide operation,
first reconciles ``_links`` against ``topology.links()``.  Two
guarantees follow:

* ``ledger()`` / ``free()`` / the reserve/release/spare operations work
  for links added after construction (no ``KeyError``), and
* :meth:`free_values` stays in ``topology.links()`` order and length —
  the flat routing core's bulk free-capacity mirror indexes it
  positionally against the CSR edge table, so order drift would
  silently route on stale capacities.

Reconciliation bumps :attr:`version` so every version-keyed consumer
(route-cache floor tables, the flat view's free mirror, spare-pool
snapshots) refreshes.  Link *removal* is not supported — failures are
modelled as state on top of a static link set, never as deletion.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.network.components import LinkId
from repro.network.topology import Topology
from repro.util.validation import check_non_negative

#: Reservations within this absolute bandwidth tolerance of capacity are
#: accepted, absorbing float round-off from repeated reserve/release cycles.
_EPSILON = 1e-9

#: Public alias of the admission tolerance, for callers (the flat routing
#: core) that reimplement ``can_reserve_primary`` over raw arrays and must
#: agree bit-for-bit with the ledger's decision.
CAPACITY_EPSILON = _EPSILON


class CapacityFloor:
    """The standard "enough free bandwidth" link predicate, reified.

    Behaves exactly like ``lambda link: ledger.can_reserve_primary(link,
    bandwidth)`` but carries its parameters openly, so the flat routing
    core can recognise it, skip the per-link Python call, and test
    admissibility as an array compare (``free + epsilon >= bandwidth``)
    — and so the route cache can key on ``(ledger, bandwidth)`` instead
    of refusing to cache behind an opaque closure.
    """

    __slots__ = ("ledger", "bandwidth")

    def __init__(self, ledger: "ReservationLedger", bandwidth: float) -> None:
        self.ledger = ledger
        self.bandwidth = bandwidth

    def __call__(self, link: LinkId) -> bool:
        return self.ledger.can_reserve_primary(link, self.bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CapacityFloor(bandwidth={self.bandwidth:g})"


class InsufficientCapacityError(Exception):
    """Raised when a reservation would exceed a link's capacity."""

    def __init__(self, link: LinkId, requested: float, available: float) -> None:
        super().__init__(
            f"link {link}: requested {requested:g} but only {available:g} available"
        )
        self.link = link
        self.requested = requested
        self.available = available


@dataclass(slots=True)
class LinkLedger:
    """Reservation state of one simplex link."""

    capacity: float
    primary: float = 0.0
    spare: float = 0.0

    @property
    def reserved(self) -> float:
        """Total committed bandwidth (primary + spare)."""
        return self.primary + self.spare

    @property
    def free(self) -> float:
        """Uncommitted bandwidth available for new reservations."""
        return self.capacity - self.reserved


@dataclass
class ReservationLedger:
    """Bandwidth reservations for every link of a topology.

    The ledger is deliberately policy-free: it only enforces capacity.  The
    multiplexing engine decides *how much* spare each link needs and calls
    :meth:`set_spare`; the establishment machinery decides *whether* a path
    is admissible via :meth:`can_reserve_primary` / :meth:`can_set_spare`.
    """

    topology: Topology
    _links: dict[LinkId, LinkLedger] = field(init=False)
    _version: int = field(init=False, default=0)
    _topology_version: int = field(init=False, default=-1)
    _spares_cache: "tuple[int, dict[LinkId, float]] | None" = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        self._links = {
            link: LinkLedger(capacity=self.topology.capacity(link))
            for link in self.topology.links()
        }
        self._topology_version = self.topology.version

    def _sync_topology(self) -> None:
        """Extend ``_links`` with links added to the topology since the
        last reconciliation (see the module docstring's mutation contract).

        Existing entries keep their reservations; new links start empty.
        ``topology.links()`` is insertion-ordered and existing entries were
        inserted in that same order, so appending the missing tail keeps
        ``free_values()`` aligned with the flat view's positional mapping.
        Bumps :attr:`version` when anything was added, invalidating every
        version-keyed derived view.
        """
        if self._topology_version == self.topology.version:
            return
        links = self._links
        grew = False
        for link in self.topology.links():
            if link not in links:
                links[link] = LinkLedger(capacity=self.topology.capacity(link))
                grew = True
        self._topology_version = self.topology.version
        if grew:
            self._version += 1

    def _entry(self, link: LinkId) -> LinkLedger:
        """``_links[link]``, reconciling with the topology on a miss."""
        entry = self._links.get(link)
        if entry is None:
            self._sync_topology()
            entry = self._links[link]
        return entry

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Bumped by every reservation change; snapshot consumers (the
        recovery evaluator, parallel shard workers) use it to reuse
        spare-pool snapshots for as long as no connection changed.
        """
        return self._version

    # ------------------------------------------------------------------
    # per-link accessors
    # ------------------------------------------------------------------
    def ledger(self, link: LinkId) -> LinkLedger:
        """The :class:`LinkLedger` for ``link``."""
        return self._entry(link)

    def free(self, link: LinkId) -> float:
        """Uncommitted bandwidth on ``link``."""
        return self._entry(link).free

    def primary_reserved(self, link: LinkId) -> float:
        """Primary-pool reservation on ``link``."""
        return self._entry(link).primary

    def spare_reserved(self, link: LinkId) -> float:
        """Spare-pool reservation on ``link``."""
        return self._entry(link).spare

    # ------------------------------------------------------------------
    # primary-pool operations
    # ------------------------------------------------------------------
    def can_reserve_primary(self, link: LinkId, bandwidth: float) -> bool:
        """Whether ``bandwidth`` more primary reservation fits on ``link``."""
        return self._entry(link).free + _EPSILON >= bandwidth

    def capacity_floor(self, bandwidth: float) -> CapacityFloor:
        """A :class:`CapacityFloor` predicate bound to this ledger.

        Use this instead of a lambda over :meth:`can_reserve_primary` when
        building :class:`~repro.routing.shortest.RouteConstraints` — the
        flat routing core fast-paths and caches searches whose predicate
        is a recognised capacity floor.
        """
        return CapacityFloor(self, bandwidth)

    def free_values(self) -> list[float]:
        """Per-link free bandwidth, in ``topology.links()`` order.

        Bulk accessor for the flat routing core's free-capacity mirror;
        one list build here replaces a dict lookup per link per search.
        Reconciles with the topology first so order *and length* match
        the current ``topology.links()`` (see the mutation contract).
        """
        self._sync_topology()
        return [entry.free for entry in self._links.values()]

    def reserve_primary(self, link: LinkId, bandwidth: float) -> None:
        """Commit primary bandwidth; raises on capacity overflow."""
        check_non_negative(bandwidth, "bandwidth")
        entry = self._entry(link)
        if entry.free + _EPSILON < bandwidth:
            raise InsufficientCapacityError(link, bandwidth, entry.free)
        entry.primary += bandwidth
        self._version += 1

    def release_primary(self, link: LinkId, bandwidth: float) -> None:
        """Return primary bandwidth to the free pool."""
        check_non_negative(bandwidth, "bandwidth")
        entry = self._entry(link)
        if entry.primary + _EPSILON < bandwidth:
            raise ValueError(
                f"link {link}: releasing {bandwidth:g} primary but only "
                f"{entry.primary:g} reserved"
            )
        entry.primary = max(0.0, entry.primary - bandwidth)
        self._version += 1

    def reserve_primary_path(
        self, links: Iterable[LinkId], bandwidth: float
    ) -> None:
        """Commit primary bandwidth on every link of a path, atomically.

        Validate-then-apply: either every link had room and all are
        reserved under **one** version bump, or nothing changed and
        :class:`InsufficientCapacityError` names the first violating
        link.  ``links`` must not repeat a link (paths are simple).
        """
        check_non_negative(bandwidth, "bandwidth")
        entries = [(link, self._entry(link)) for link in links]
        for link, entry in entries:
            if entry.free + _EPSILON < bandwidth:
                raise InsufficientCapacityError(link, bandwidth, entry.free)
        for _, entry in entries:
            entry.primary += bandwidth
        self._version += 1

    def release_primary_path(
        self, links: Iterable[LinkId], bandwidth: float
    ) -> None:
        """Release primary bandwidth on every link of a path, atomically.

        The bulk twin of :meth:`release_primary` (teardown's hot path):
        validate-then-apply with a single version bump.
        """
        check_non_negative(bandwidth, "bandwidth")
        entries = [(link, self._entry(link)) for link in links]
        for link, entry in entries:
            if entry.primary + _EPSILON < bandwidth:
                raise ValueError(
                    f"link {link}: releasing {bandwidth:g} primary but only "
                    f"{entry.primary:g} reserved"
                )
        for _, entry in entries:
            entry.primary = max(0.0, entry.primary - bandwidth)
        self._version += 1

    # ------------------------------------------------------------------
    # spare-pool operations
    # ------------------------------------------------------------------
    def can_set_spare(self, link: LinkId, amount: float) -> bool:
        """Whether the spare pool of ``link`` can be resized to ``amount``."""
        entry = self._entry(link)
        return entry.primary + amount <= entry.capacity + _EPSILON

    def set_spare(self, link: LinkId, amount: float) -> None:
        """Resize the spare pool of ``link`` to exactly ``amount``.

        Multiplexing recomputes the required spare from scratch (or
        incrementally) and installs the result here, so the operation is an
        absolute set rather than a relative reserve/release.
        """
        check_non_negative(amount, "amount")
        entry = self._entry(link)
        if entry.primary + amount > entry.capacity + _EPSILON:
            raise InsufficientCapacityError(
                link, amount, entry.capacity - entry.primary
            )
        entry.spare = amount
        self._version += 1

    def set_spares(self, amounts: "Mapping[LinkId, float]") -> None:
        """Resize many links' spare pools at once, atomically.

        Validate-then-apply over the whole mapping: either every resize
        fits (and everything is installed under **one** version bump) or
        nothing changed and :class:`InsufficientCapacityError` names the
        first violating link.  This is the establishment/teardown bulk
        path — a backup commit or a connection teardown touches every
        link of a path, and per-link :meth:`set_spare` calls would both
        bump the version per link (defeating floor-table reuse) and need
        manual rollback on mid-path failure.
        """
        resolved = []
        for link, amount in amounts.items():
            check_non_negative(amount, "amount")
            entry = self._entry(link)
            if entry.primary + amount > entry.capacity + _EPSILON:
                raise InsufficientCapacityError(
                    link, amount, entry.capacity - entry.primary
                )
            resolved.append((entry, amount))
        if not resolved:
            return
        for entry, amount in resolved:
            entry.spare = amount
        self._version += 1

    def convert_spare_to_primary(self, link: LinkId, bandwidth: float) -> None:
        """Move ``bandwidth`` from the spare pool into the primary pool.

        This is the resource-reconfiguration step after a backup activation
        (Section 4.4): the activated channel's bandwidth is no longer
        shareable spare but dedicated primary reservation.
        """
        check_non_negative(bandwidth, "bandwidth")
        entry = self._entry(link)
        if entry.spare + _EPSILON < bandwidth:
            raise InsufficientCapacityError(link, bandwidth, entry.spare)
        entry.spare -= bandwidth
        entry.primary += bandwidth
        self._version += 1

    # ------------------------------------------------------------------
    # network-wide metrics (paper Section 7.1)
    # ------------------------------------------------------------------
    def network_load(self) -> float:
        """Primary bandwidth over total capacity — the paper's *network-load*."""
        self._sync_topology()
        total = self.topology.total_capacity()
        return sum(entry.primary for entry in self._links.values()) / total

    def spare_fraction(self) -> float:
        """Spare reservation over total capacity — the paper's
        *average spare bandwidth*."""
        self._sync_topology()
        total = self.topology.total_capacity()
        return sum(entry.spare for entry in self._links.values()) / total

    def total_spare(self) -> float:
        """Absolute spare bandwidth summed over all links."""
        self._sync_topology()
        return sum(entry.spare for entry in self._links.values())

    def max_link_utilization(self) -> float:
        """Highest ``reserved / capacity`` ratio over all links."""
        self._sync_topology()
        return max(
            (entry.reserved / entry.capacity for entry in self._links.values()),
            default=0.0,
        )

    def audit(self) -> list[str]:
        """Conservation check over every link: both pools non-negative and
        ``primary + spare <= capacity`` (within the admission tolerance).
        Returns one human-readable problem string per violating link —
        empty means the ledger is internally consistent.  Used by the
        protocol invariant auditor; cheap enough to run per sweep."""
        self._sync_topology()
        problems: list[str] = []
        for link, entry in self._links.items():
            if entry.primary < -_EPSILON:
                problems.append(
                    f"link {link}: negative primary pool {entry.primary:g}"
                )
            if entry.spare < -_EPSILON:
                problems.append(
                    f"link {link}: negative spare pool {entry.spare:g}"
                )
            if entry.reserved > entry.capacity + _EPSILON:
                problems.append(
                    f"link {link}: reserved {entry.reserved:g} exceeds "
                    f"capacity {entry.capacity:g}"
                )
        return problems

    def snapshot_pools(self) -> list[tuple[float, float]]:
        """``(primary, spare)`` per link, in ``topology.links()`` order.

        The full-ledger twin of :meth:`snapshot_spares`, used by the
        snapshot codec (:mod:`repro.serve.state`).  Values are the raw
        floats — restore writes them back verbatim so admission decisions
        after a restore are bit-identical to the uninterrupted run.
        """
        self._sync_topology()
        return [(entry.primary, entry.spare) for entry in self._links.values()]

    def restore_pools(self, pools: "Iterable[tuple[float, float]]") -> None:
        """Overwrite every link's pools from a :meth:`snapshot_pools` row
        list (same order and length as ``topology.links()``).

        Validate-then-apply: pool values must be non-negative and fit the
        link's capacity (admission tolerance applies), or nothing changes.
        On success the ledger :attr:`version` is bumped and the spare
        cache dropped, so every version-keyed consumer — route-cache
        floor tables, the flat view's free-capacity mirror, spare-pool
        snapshots — recompiles instead of serving pre-restore state.
        """
        self._sync_topology()
        rows = list(pools)
        if len(rows) != len(self._links):
            raise ValueError(
                f"restore_pools: snapshot has {len(rows)} links but the "
                f"topology has {len(self._links)}"
            )
        resolved = []
        for (link, entry), (primary, spare) in zip(self._links.items(), rows):
            if primary < -_EPSILON or spare < -_EPSILON:
                raise ValueError(
                    f"link {link}: negative restored pool "
                    f"(primary {primary:g}, spare {spare:g})"
                )
            if primary + spare > entry.capacity + _EPSILON:
                raise InsufficientCapacityError(
                    link, primary + spare, entry.capacity
                )
            resolved.append((entry, primary, spare))
        for entry, primary, spare in resolved:
            entry.primary = primary
            entry.spare = spare
        self._version += 1
        self._spares_cache = None

    def snapshot_spares(self) -> dict[LinkId, float]:
        """Copy of every link's current spare reservation.

        The recovery evaluator works on scenario-local copies so that
        evaluating one failure scenario never mutates the network.  The
        copy is rebuilt only when :attr:`version` changed since the last
        call; repeated snapshots of an unchanged ledger are free.
        """
        self._sync_topology()
        cache = self._spares_cache
        if cache is not None and cache[0] == self._version:
            return dict(cache[1])
        spares = {link: entry.spare for link, entry in self._links.items()}
        self._spares_cache = (self._version, spares)
        return dict(spares)

    def shared_spares(self) -> dict[LinkId, float]:
        """Read-only view of the current spare pools (cached by version).

        Unlike :meth:`snapshot_spares` the returned mapping is shared
        between callers and **must not be mutated**; it exists for hot
        paths (evaluator construction per shard) where even the O(links)
        copy matters.
        """
        self._sync_topology()
        cache = self._spares_cache
        if cache is None or cache[0] != self._version:
            self._spares_cache = (
                self._version,
                {link: entry.spare for link, entry in self._links.items()},
            )
        return self._spares_cache[1]
