"""Identities for network components (nodes and simplex links).

The paper counts both nodes and links as failure-prone *components*
(Section 3.2: "components include both nodes and links"), so the two kinds
must share one identity space without collisions.  Nodes are arbitrary
hashable values (the generators use ``int``); links are frozen
:class:`LinkId` instances, which can never compare equal to a node id even
when node ids are tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

# A node is identified by any hashable value; generators produce ints.
NodeId = Hashable


@dataclass(frozen=True, slots=True)
class LinkId:
    """Identity of one simplex (uni-directional) link.

    A duplex connection between neighbours is modelled as two independent
    ``LinkId`` instances, one per direction, matching the paper's network
    model ("neighbor nodes are connected by two simplex links").  Each
    direction fails, and is reserved, independently.
    """

    src: NodeId
    dst: NodeId

    def reversed(self) -> "LinkId":
        """The companion simplex link in the opposite direction."""
        return LinkId(self.dst, self.src)

    def endpoints(self) -> tuple[NodeId, NodeId]:
        """Both endpoint nodes, source first."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}"


# A component is either a node id or a link id.  Type alias for signatures.
Component = "NodeId | LinkId"


def link_between(src: NodeId, dst: NodeId) -> LinkId:
    """Convenience constructor mirroring ``LinkId(src, dst)``."""
    return LinkId(src, dst)
