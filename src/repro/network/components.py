"""Identities for network components (nodes and simplex links).

The paper counts both nodes and links as failure-prone *components*
(Section 3.2: "components include both nodes and links"), so the two kinds
must share one identity space without collisions.  Nodes are arbitrary
hashable values (the generators use ``int``); links are frozen
:class:`LinkId` instances, which can never compare equal to a node id even
when node ids are tuples.
"""

from __future__ import annotations

from typing import Hashable

# A node is identified by any hashable value; generators produce ints.
NodeId = Hashable


class LinkId:
    """Identity of one simplex (uni-directional) link.

    A duplex connection between neighbours is modelled as two independent
    ``LinkId`` instances, one per direction, matching the paper's network
    model ("neighbor nodes are connected by two simplex links").  Each
    direction fails, and is reserved, independently.

    Immutable and hashable like the frozen dataclass it replaces, but
    with the hash computed once at construction: link ids key every hot
    dict in the system (ledgers, mux states, spare snapshots), so the
    per-lookup tuple hash showed up in establishment profiles.
    """

    __slots__ = ("src", "dst", "_hash")

    def __init__(self, src: NodeId, dst: NodeId) -> None:
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "_hash", hash((src, dst)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"LinkId is immutable; cannot set {name!r}")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is LinkId:
            return self.src == other.src and self.dst == other.dst
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (LinkId, (self.src, self.dst))

    def reversed(self) -> "LinkId":
        """The companion simplex link in the opposite direction."""
        return LinkId(self.dst, self.src)

    def endpoints(self) -> tuple[NodeId, NodeId]:
        """Both endpoint nodes, source first."""
        return (self.src, self.dst)

    def __repr__(self) -> str:
        return f"LinkId(src={self.src!r}, dst={self.dst!r})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}"


# A component is either a node id or a link id.  Type alias for signatures.
Component = "NodeId | LinkId"


def link_between(src: NodeId, dst: NodeId) -> LinkId:
    """Convenience constructor mirroring ``LinkId(src, dst)``."""
    return LinkId(src, dst)
