"""Topology generators.

The paper evaluates on an 8x8 torus (wrapped mesh, 200 Mbps simplex links)
and an 8x8 mesh (300 Mbps simplex links); :func:`torus` and :func:`mesh`
reproduce those.  The remaining generators support the topology-sensitivity
experiments (Section 7.1 notes multiplexing is "less effective in
sparsely-connected networks") and general library use.

All generators label nodes with consecutive integers starting at 0 and
create *duplex* connections (two simplex links) between neighbours, per the
paper's network model.
"""

from __future__ import annotations

import networkx as nx

from repro.network.components import NodeId
from repro.network.topology import Topology
from repro.util.rng import make_rng
from repro.util.validation import check_positive


def _grid_node(row: int, col: int, cols: int) -> int:
    return row * cols + col


def torus(rows: int, cols: int, capacity: float = 200.0) -> Topology:
    """A ``rows x cols`` torus (wrapped mesh) with duplex neighbour links.

    Default capacity 200 Mbps matches the paper's 8x8 torus configuration.
    """
    if rows < 2 or cols < 2:
        raise ValueError(f"torus needs at least 2x2 nodes, got {rows}x{cols}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{rows}x{cols} torus")
    for row in range(rows):
        for col in range(cols):
            topology.add_node(_grid_node(row, col, cols))
    for row in range(rows):
        for col in range(cols):
            node = _grid_node(row, col, cols)
            right = _grid_node(row, (col + 1) % cols, cols)
            down = _grid_node((row + 1) % rows, col, cols)
            # A 2-wide ring would otherwise create duplicate right/left links.
            if cols > 2 or col == 0:
                topology.add_duplex_link(node, right, capacity)
            if rows > 2 or row == 0:
                topology.add_duplex_link(node, down, capacity)
    return topology


def mesh(rows: int, cols: int, capacity: float = 300.0) -> Topology:
    """A ``rows x cols`` mesh (grid without wraparound links).

    Default capacity 300 Mbps matches the paper's 8x8 mesh configuration,
    chosen so total capacity is comparable to the 200 Mbps torus.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError(f"mesh needs at least 2 nodes, got {rows}x{cols}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{rows}x{cols} mesh")
    for row in range(rows):
        for col in range(cols):
            topology.add_node(_grid_node(row, col, cols))
    for row in range(rows):
        for col in range(cols):
            node = _grid_node(row, col, cols)
            if col + 1 < cols:
                topology.add_duplex_link(node, _grid_node(row, col + 1, cols), capacity)
            if row + 1 < rows:
                topology.add_duplex_link(node, _grid_node(row + 1, col, cols), capacity)
    return topology


def ring(num_nodes: int, capacity: float = 200.0) -> Topology:
    """A bidirectional ring — the sparsest 2-connected topology."""
    if num_nodes < 3:
        raise ValueError(f"ring needs at least 3 nodes, got {num_nodes}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{num_nodes}-ring")
    for node in range(num_nodes):
        topology.add_node(node)
    for node in range(num_nodes):
        topology.add_duplex_link(node, (node + 1) % num_nodes, capacity)
    return topology


def line(num_nodes: int, capacity: float = 200.0) -> Topology:
    """A linear chain of nodes; useful in protocol unit tests."""
    if num_nodes < 2:
        raise ValueError(f"line needs at least 2 nodes, got {num_nodes}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{num_nodes}-line")
    for node in range(num_nodes):
        topology.add_node(node)
    for node in range(num_nodes - 1):
        topology.add_duplex_link(node, node + 1, capacity)
    return topology


def star(num_leaves: int, capacity: float = 200.0) -> Topology:
    """A hub (node 0) with ``num_leaves`` spokes; 1-connected by design."""
    if num_leaves < 1:
        raise ValueError(f"star needs at least 1 leaf, got {num_leaves}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{num_leaves}-star")
    topology.add_node(0)
    for leaf in range(1, num_leaves + 1):
        topology.add_duplex_link(0, leaf, capacity)
    return topology


def hypercube(dimension: int, capacity: float = 200.0) -> Topology:
    """A binary hypercube of the given dimension (2**d nodes)."""
    if dimension < 1:
        raise ValueError(f"hypercube dimension must be >= 1, got {dimension}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"{dimension}-cube")
    size = 1 << dimension
    for node in range(size):
        topology.add_node(node)
    for node in range(size):
        for bit in range(dimension):
            neighbour = node ^ (1 << bit)
            if neighbour > node:
                topology.add_duplex_link(node, neighbour, capacity)
    return topology


def complete_graph(num_nodes: int, capacity: float = 200.0) -> Topology:
    """A fully-connected topology — the densest extreme for sensitivity runs."""
    if num_nodes < 2:
        raise ValueError(f"complete graph needs at least 2 nodes, got {num_nodes}")
    check_positive(capacity, "capacity")
    topology = Topology(name=f"K{num_nodes}")
    for node in range(num_nodes):
        topology.add_node(node)
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            topology.add_duplex_link(a, b, capacity)
    return topology


def random_regular(num_nodes: int, degree: int, capacity: float = 200.0,
                   seed: int | None = 0) -> Topology:
    """A random ``degree``-regular topology (duplex links).

    Uses ``networkx.random_regular_graph``; the default seed keeps
    experiment scripts reproducible.
    """
    check_positive(capacity, "capacity")
    rng = make_rng(seed)
    graph = nx.random_regular_graph(degree, num_nodes, seed=rng.getrandbits(32))
    topology = Topology(name=f"random {degree}-regular n={num_nodes}")
    for node in range(num_nodes):
        topology.add_node(node)
    for a, b in graph.edges:
        topology.add_duplex_link(a, b, capacity)
    return topology


def tree(branching: int, depth: int, capacity: float = 200.0) -> Topology:
    """A balanced tree — 1-connected, the worst case for disjoint backups."""
    if branching < 1 or depth < 1:
        raise ValueError(
            f"tree needs branching >= 1 and depth >= 1, got {branching}, {depth}"
        )
    check_positive(capacity, "capacity")
    topology = Topology(name=f"tree b={branching} d={depth}")
    topology.add_node(0)
    next_id = 1
    frontier: list[NodeId] = [0]
    for _ in range(depth):
        new_frontier: list[NodeId] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                topology.add_duplex_link(parent, child, capacity)
                new_frontier.append(child)
        frontier = new_frontier
    return topology
