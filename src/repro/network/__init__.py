"""Network substrate: topologies, components, and reservation ledgers.

This package models the physical multi-hop network of the paper: nodes
joined by pairs of *simplex* (uni-directional) links, each link with a
fixed bandwidth capacity.  Topologies are static; runtime health and
bandwidth bookkeeping live in :class:`~repro.network.reservations.ReservationLedger`
and in the fault-injection layer.
"""

from repro.network.components import LinkId, NodeId, link_between
from repro.network.generators import (
    complete_graph,
    hypercube,
    line,
    mesh,
    random_regular,
    ring,
    star,
    torus,
    tree,
)
from repro.network.io import (
    from_edge_list,
    load_edge_list,
    save_edge_list,
    to_dot,
    to_edge_list,
)
from repro.network.reservations import LinkLedger, ReservationLedger
from repro.network.topology import Topology

__all__ = [
    "NodeId",
    "LinkId",
    "link_between",
    "Topology",
    "LinkLedger",
    "ReservationLedger",
    "torus",
    "mesh",
    "ring",
    "line",
    "star",
    "hypercube",
    "complete_graph",
    "random_regular",
    "tree",
    "to_edge_list",
    "from_edge_list",
    "save_edge_list",
    "load_edge_list",
    "to_dot",
]
