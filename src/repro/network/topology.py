"""Static network topology: nodes and capacitated simplex links.

A :class:`Topology` is the immutable substrate under everything else —
routing, reservation ledgers, the BCP establishment machinery, the
discrete-event protocol runtime, and fault injection all take one.  It is
mutable while being built (``add_node`` / ``add_link``) and is typically
produced by a generator in :mod:`repro.network.generators`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.network.components import LinkId, NodeId
from repro.util.validation import check_positive


class Topology:
    """A directed graph of nodes and capacitated simplex links.

    Parameters
    ----------
    name:
        Human-readable label used in experiment reports (e.g. ``"8x8 torus"``).
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._out: dict[NodeId, dict[NodeId, LinkId]] = {}
        self._in: dict[NodeId, dict[NodeId, LinkId]] = {}
        self._capacity: dict[LinkId, float] = {}
        #: Monotonic structure counter; bumped by every actual node/link
        #: insertion.  Derived views (the flat routing core's CSR arrays,
        #: the cached total capacity) key their caches on it.
        self._version = 0
        #: Compiled flat view (see :mod:`repro.routing.flatgraph`), built
        #: lazily and discarded whenever :attr:`version` moves on.
        self._flat = None
        self._total_capacity_cache: "tuple[int, float] | None" = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped on ``add_node``/``add_link``."""
        return self._version

    def add_node(self, node: NodeId) -> NodeId:
        """Add ``node`` if absent; returns the node id for chaining."""
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}
            self._version += 1
        return node

    def add_link(self, src: NodeId, dst: NodeId, capacity: float) -> LinkId:
        """Add one simplex link from ``src`` to ``dst``.

        Endpoints are created implicitly.  Re-adding an existing link is an
        error: the network model has at most one simplex link per ordered
        node pair.
        """
        if src == dst:
            raise ValueError(f"self-loop links are not allowed (node {src!r})")
        check_positive(capacity, "capacity")
        self.add_node(src)
        self.add_node(dst)
        if dst in self._out[src]:
            raise ValueError(f"link {src!r}->{dst!r} already exists")
        link = LinkId(src, dst)
        self._out[src][dst] = link
        self._in[dst][src] = link
        self._capacity[link] = float(capacity)
        self._version += 1
        return link

    def add_duplex_link(self, a: NodeId, b: NodeId, capacity: float) -> tuple[LinkId, LinkId]:
        """Add the two simplex links between ``a`` and ``b`` (paper's model)."""
        return (self.add_link(a, b, capacity), self.add_link(b, a, capacity))

    def invalidate(self) -> int:
        """Force every derived view to recompile: bump :attr:`version` and
        drop the compiled flat view and capacity cache.

        Snapshot *restore* rewrites reservation state out from under
        anything keyed on this topology; restoring through this method
        guarantees no consumer — flat-view CSR arrays, route-cache floor
        tables, mux-kernel arena rows — can keep serving pre-restore
        state.  Returns the new version.
        """
        self._version += 1
        self._flat = None
        self._total_capacity_cache = None
        return self._version

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_links(self) -> int:
        return len(self._capacity)

    def nodes(self) -> Iterator[NodeId]:
        """All node ids, in insertion order."""
        return iter(self._out)

    def links(self) -> Iterator[LinkId]:
        """All simplex link ids, in insertion order."""
        return iter(self._capacity)

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` exists."""
        return node in self._out

    def has_link(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the simplex link ``src``->``dst`` exists."""
        return src in self._out and dst in self._out[src]

    def link(self, src: NodeId, dst: NodeId) -> LinkId:
        """The simplex link from ``src`` to ``dst``; raises ``KeyError`` if absent."""
        try:
            return self._out[src][dst]
        except KeyError:
            raise KeyError(f"no link {src!r}->{dst!r} in {self.name}") from None

    def capacity(self, link: LinkId) -> float:
        """Bandwidth capacity of ``link``."""
        return self._capacity[link]

    def total_capacity(self) -> float:
        """Sum of all simplex-link capacities (denominator of the paper's
        *network-load* and *spare-bandwidth* percentages).

        Cached per :attr:`version`, so repeated metric reads on a settled
        topology don't re-walk the capacity table.
        """
        cached = self._total_capacity_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        total = sum(self._capacity.values())
        self._total_capacity_cache = (self._version, total)
        return total

    def successors(self, node: NodeId) -> Iterator[NodeId]:
        """Nodes reachable from ``node`` over one outgoing link."""
        return iter(self._out[node])

    def predecessors(self, node: NodeId) -> Iterator[NodeId]:
        """Nodes with a link into ``node``."""
        return iter(self._in[node])

    def out_edges(self, node: NodeId) -> Iterator[tuple[NodeId, LinkId]]:
        """``(neighbour, link)`` pairs for ``node``'s outgoing links,
        in insertion order (the deterministic tie-break order)."""
        return iter(self._out[node].items())

    def out_links(self, node: NodeId) -> Iterator[LinkId]:
        """Outgoing simplex links of ``node``."""
        return iter(self._out[node].values())

    def in_links(self, node: NodeId) -> Iterator[LinkId]:
        """Incoming simplex links of ``node``."""
        return iter(self._in[node].values())

    def incident_links(self, node: NodeId) -> list[LinkId]:
        """All simplex links touching ``node`` (both directions).

        A node crash implicitly disables every link in this list, which is
        how the fault models expand node failures.
        """
        return list(self._out[node].values()) + list(self._in[node].values())

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing simplex links of ``node``."""
        return len(self._out[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming simplex links of ``node``."""
        return len(self._in[node])

    # ------------------------------------------------------------------
    # interop / dunder
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export as a ``networkx.DiGraph`` with ``capacity`` link attributes."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self._out)
        for link, cap in self._capacity.items():
            graph.add_edge(link.src, link.dst, capacity=cap)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, default_capacity: float = 1.0,
                      name: str | None = None) -> "Topology":
        """Build a topology from a ``networkx`` directed graph.

        Edge attribute ``capacity`` is used when present, else
        ``default_capacity``.
        """
        topology = cls(name=name or (graph.name or "network"))
        for node in graph.nodes:
            topology.add_node(node)
        for src, dst, data in graph.edges(data=True):
            topology.add_link(src, dst, data.get("capacity", default_capacity))
        return topology

    def subgraph_without(self, failed_nodes: Iterable[NodeId] = (),
                         failed_links: Iterable[LinkId] = ()) -> "Topology":
        """A copy of this topology with the given components removed.

        Used by the reactive re-establishment baseline, which routes in the
        residual network after a failure.
        """
        dead_nodes = set(failed_nodes)
        dead_links = set(failed_links)
        residual = Topology(name=f"{self.name} (residual)")
        for node in self._out:
            if node not in dead_nodes:
                residual.add_node(node)
        for link, cap in self._capacity.items():
            if (link in dead_links or link.src in dead_nodes
                    or link.dst in dead_nodes):
                continue
            residual.add_link(link.src, link.dst, cap)
        return residual

    def __getstate__(self) -> dict:
        # The flat view holds array buffers and a route cache that are
        # cheap to rebuild but expensive to ship to worker processes —
        # drop it from pickles (workers recompile lazily on first search).
        state = self.__dict__.copy()
        state["_flat"] = None
        return state

    def __contains__(self, item: object) -> bool:
        if isinstance(item, LinkId):
            return item in self._capacity
        return item in self._out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Topology({self.name!r}, nodes={self.num_nodes}, "
                f"links={self.num_links})")
