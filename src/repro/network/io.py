"""Topology import/export.

Operators bring their own networks; these helpers move topologies in and
out of the library: plain edge-list text (one link per line) and Graphviz
DOT for visualisation.  ``networkx`` interop lives on
:class:`~repro.network.topology.Topology` itself.

Edge-list format::

    # comment lines and blanks are ignored
    a b 200          # duplex pair a<->b at capacity 200
    b c 100 simplex  # one simplex link b->c only
"""

from __future__ import annotations

from pathlib import Path as FilePath

from repro.network.topology import Topology


def to_edge_list(topology: Topology) -> str:
    """Serialise to edge-list text.

    Duplex pairs with equal capacities collapse to one line; odd simplex
    links get the ``simplex`` marker.
    """
    lines = [f"# {topology.name}"]
    emitted = set()
    for link in topology.links():
        if link in emitted:
            continue
        reverse = link.reversed()
        capacity = topology.capacity(link)
        if (
            reverse in topology
            and topology.capacity(reverse) == capacity
            and reverse not in emitted
        ):
            lines.append(f"{link.src} {link.dst} {capacity:g}")
            emitted.add(link)
            emitted.add(reverse)
        else:
            lines.append(f"{link.src} {link.dst} {capacity:g} simplex")
            emitted.add(link)
    return "\n".join(lines) + "\n"


def from_edge_list(text: str, name: str = "imported") -> Topology:
    """Parse edge-list text into a topology.

    Node labels are read as integers when possible, else kept as strings.
    """
    def parse_node(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    topology = Topology(name=name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise ValueError(
                f"line {line_number}: expected 'src dst capacity [simplex]', "
                f"got {raw!r}"
            )
        src, dst = parse_node(parts[0]), parse_node(parts[1])
        try:
            capacity = float(parts[2])
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad capacity {parts[2]!r}"
            ) from None
        if len(parts) == 4:
            if parts[3] != "simplex":
                raise ValueError(
                    f"line {line_number}: unknown marker {parts[3]!r}"
                )
            topology.add_link(src, dst, capacity)
        else:
            topology.add_duplex_link(src, dst, capacity)
    return topology


def save_edge_list(topology: Topology, path: "FilePath | str") -> None:
    """Write :func:`to_edge_list` output to a file."""
    FilePath(path).write_text(to_edge_list(topology))


def load_edge_list(path: "FilePath | str", name: "str | None" = None) -> Topology:
    """Read a topology from an edge-list file."""
    file_path = FilePath(path)
    return from_edge_list(
        file_path.read_text(), name=name or file_path.stem
    )


def to_dot(topology: Topology) -> str:
    """Graphviz DOT export (duplex pairs render as one undirected edge)."""
    lines = [f'digraph "{topology.name}" {{']
    emitted = set()
    for link in topology.links():
        if link in emitted:
            continue
        reverse = link.reversed()
        capacity = topology.capacity(link)
        if reverse in topology and topology.capacity(reverse) == capacity:
            lines.append(
                f'  "{link.src}" -> "{link.dst}" '
                f'[label="{capacity:g}", dir=both];'
            )
            emitted.add(link)
            emitted.add(reverse)
        else:
            lines.append(
                f'  "{link.src}" -> "{link.dst}" [label="{capacity:g}"];'
            )
            emitted.add(link)
    lines.append("}")
    return "\n".join(lines) + "\n"
