"""Structured event tracing for simulations.

A :class:`TraceLog` collects timestamped, categorised events.  The
protocol runtime records every externally meaningful action (detections,
reports, activations, rejoins, preemptions) when tracing is enabled,
which makes protocol runs debuggable and lets tests assert on causal
orderings rather than only on end states.

Tracing is off by default; a disabled log's :meth:`record` is a cheap
no-op so instrumented code needs no guards.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    node: object
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.3f}] {self.category:<12} @{self.node}: " \
               f"{self.description}"


@dataclass
class TraceLog:
    """An append-only, filterable event log."""

    enabled: bool = True
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, category: str, node: object,
               description: str) -> None:
        """Append an event (no-op when disabled)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, category, node, description))

    # ------------------------------------------------------------------
    def filter(
        self,
        category: "str | None" = None,
        node: object = None,
        since: "float | None" = None,
        until: "float | None" = None,
    ) -> list[TraceEvent]:
        """Events matching all given criteria, in recording order."""
        selected: Iterable[TraceEvent] = self.events
        if category is not None:
            selected = (e for e in selected if e.category == category)
        if node is not None:
            selected = (e for e in selected if e.node == node)
        if since is not None:
            selected = (e for e in selected if e.time >= since)
        if until is not None:
            selected = (e for e in selected if e.time <= until)
        return list(selected)

    def categories(self) -> dict[str, int]:
        """Event counts per category."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def format(self, limit: "int | None" = None) -> str:
        """Human-readable timeline (optionally the first ``limit`` rows)."""
        rows = self.events if limit is None else self.events[:limit]
        lines = [
            f"[{event.time:10.3f}] {event.category:<12} "
            f"@{event.node}: {event.description}"
            for event in rows
        ]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
