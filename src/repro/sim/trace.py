"""Structured event tracing for simulations.

A :class:`TraceLog` collects timestamped, categorised events.  The
protocol runtime records every externally meaningful action (detections,
reports, activations, rejoins, preemptions) when tracing is enabled,
which makes protocol runs debuggable and lets tests assert on causal
orderings rather than only on end states.

Tracing is off by default; a disabled log's :meth:`record` is a cheap
no-op so instrumented code needs no guards.

Logs are exportable as JSONL (:meth:`TraceLog.to_jsonl`): one JSON
object per event, in recording order, with keys ``time`` / ``category``
/ ``node`` / ``description`` — the ``repro.trace/1`` schema documented
in docs/architecture.md.  Non-primitive node ids (e.g.
:class:`~repro.network.components.LinkId`) are exported as their
``str()`` form.
"""

from __future__ import annotations

import json
from collections.abc import Collection, Iterable, Iterator
from dataclasses import dataclass, field

from repro.obs.spans import Span, SpanLog


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    node: object
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.3f}] {self.category:<12} @{self.node}: " \
               f"{self.description}"

    def to_dict(self) -> dict:
        """The event as a JSON-ready dict (``repro.trace/1`` row)."""
        node = self.node
        if not isinstance(node, (int, float, str, bool, type(None))):
            node = str(node)
        return {
            "time": self.time,
            "category": self.category,
            "node": node,
            "description": self.description,
        }


@dataclass
class TraceLog:
    """An append-only, filterable event log."""

    enabled: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    #: Live observers, notified of every recorded event *even when the log
    #: itself is disabled* — reactive consumers (the chaos engine's
    #: trace-triggered injections, the invariant auditor) need the stream,
    #: not the storage.
    listeners: list = field(default_factory=list, repr=False)
    #: Causal spans recorded alongside the flat event stream (see
    #: :mod:`repro.obs.spans`).  Created in ``__post_init__`` with the
    #: same enabled state as the log itself.
    spans: "SpanLog | None" = None
    #: Sticky view filter installed by :meth:`set_filter`; applied by
    #: :meth:`view`, :meth:`tail`, and :meth:`format` even to events
    #: recorded before the filter was set.
    _view_filter: "dict | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.spans is None:
            self.spans = SpanLog(enabled=self.enabled)

    def record(self, time: float, category: str, node: object,
               description: str) -> None:
        """Append an event (no-op when disabled; listeners always fire)."""
        if self.listeners:
            event = TraceEvent(time, category, node, description)
            for listener in tuple(self.listeners):
                listener(event)
            if self.enabled:
                self.events.append(event)
            return
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, category, node, description))

    def subscribe(self, listener) -> None:
        """Register ``listener(event)`` to run on every recorded event."""
        self.listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self.listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def filter(
        self,
        category: "str | Collection[str] | None" = None,
        node: object = None,
        since: "float | None" = None,
        until: "float | None" = None,
    ) -> list[TraceEvent]:
        """Events matching all given criteria, in recording order.

        ``category`` may be a single name or any collection of names
        (membership match).
        """
        selected: Iterable[TraceEvent] = self.events
        if category is not None:
            if isinstance(category, str):
                selected = (e for e in selected if e.category == category)
            else:
                wanted = frozenset(category)
                selected = (e for e in selected if e.category in wanted)
        if node is not None:
            selected = (e for e in selected if e.node == node)
        if since is not None:
            selected = (e for e in selected if e.time >= since)
        if until is not None:
            selected = (e for e in selected if e.time <= until)
        return list(selected)

    def set_filter(
        self,
        category: "str | Collection[str] | None" = None,
        node: object = None,
        kind: "str | Collection[str] | None" = None,
    ) -> None:
        """Install a sticky view filter.

        The filter applies retroactively: :meth:`view`, :meth:`tail`,
        and :meth:`format` all select from the *full* event history, so
        a filter set after events were recorded still narrows them
        consistently.  ``kind`` filters the span view (:meth:`view_spans`)
        by span kind.  Call :meth:`clear_filter` to remove it.
        """
        if category is None and node is None and kind is None:
            self._view_filter = None
            return
        self._view_filter = {"category": category, "node": node,
                             "kind": kind}

    def clear_filter(self) -> None:
        """Remove the sticky view filter installed by :meth:`set_filter`."""
        self._view_filter = None

    def view(self) -> list[TraceEvent]:
        """Events as seen through the sticky filter (all events when no
        filter is set), in recording order."""
        if self._view_filter is None:
            return list(self.events)
        return self.filter(category=self._view_filter["category"],
                           node=self._view_filter["node"])

    def view_spans(self) -> "list[Span]":
        """Spans as seen through the sticky filter's ``kind`` criterion
        (all spans when no filter / no kind is set), in emission order."""
        if self._view_filter is None:
            return list(self.spans.spans)
        return self.spans.filter(kind=self._view_filter["kind"])

    def tail(self, n: int) -> list[TraceEvent]:
        """The last ``n`` events of the (filtered) view, in recording
        order.  Unlike slicing :attr:`events` directly, this respects a
        filter installed after the events were recorded."""
        rows = self.view()
        return rows[-n:] if n else []

    def categories(self) -> dict[str, int]:
        """Event counts per category."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def format(self, limit: "int | None" = None,
               tail: "int | None" = None) -> str:
        """Human-readable timeline — the first ``limit`` rows, or the last
        ``tail`` rows (mutually exclusive)."""
        if limit is not None and tail is not None:
            raise ValueError("pass at most one of limit and tail")
        lines: list[str] = []
        selected = self.view()
        rows = selected
        if tail is not None:
            rows = selected[-tail:] if tail else []
            if len(selected) > len(rows):
                lines.append(f"... ({len(selected) - len(rows)} earlier)")
        elif limit is not None:
            rows = selected[:limit]
        lines.extend(
            f"[{event.time:10.3f}] {event.category:<12} "
            f"@{event.node}: {event.description}"
            for event in rows
        )
        if limit is not None and len(selected) > limit:
            lines.append(f"... ({len(selected) - limit} more)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dicts(self) -> Iterator[dict]:
        """Every event as a JSON-ready dict, in recording order."""
        return (event.to_dict() for event in self.events)

    def to_jsonl(self) -> str:
        """The log as JSONL (one compact JSON object per line, trailing
        newline; empty string for an empty log).

        Event rows (``repro.trace/1``) come first, then span rows
        (``repro.spans/1``, identified by their ``span`` key) — one
        stream a reader can split by key.
        """
        lines = [json.dumps(row, sort_keys=True) for row in self.to_dicts()]
        lines.extend(json.dumps(row, sort_keys=True)
                     for row in self.spans.to_dicts())
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self.events)
