"""Structured event tracing for simulations.

A :class:`TraceLog` collects timestamped, categorised events.  The
protocol runtime records every externally meaningful action (detections,
reports, activations, rejoins, preemptions) when tracing is enabled,
which makes protocol runs debuggable and lets tests assert on causal
orderings rather than only on end states.

Tracing is off by default; a disabled log's :meth:`record` is a cheap
no-op so instrumented code needs no guards.

Logs are exportable as JSONL (:meth:`TraceLog.to_jsonl`): one JSON
object per event, in recording order, with keys ``time`` / ``category``
/ ``node`` / ``description`` — the ``repro.trace/1`` schema documented
in docs/architecture.md.  Non-primitive node ids (e.g.
:class:`~repro.network.components.LinkId`) are exported as their
``str()`` form.
"""

from __future__ import annotations

import json
from collections.abc import Collection, Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    node: object
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.3f}] {self.category:<12} @{self.node}: " \
               f"{self.description}"

    def to_dict(self) -> dict:
        """The event as a JSON-ready dict (``repro.trace/1`` row)."""
        node = self.node
        if not isinstance(node, (int, float, str, bool, type(None))):
            node = str(node)
        return {
            "time": self.time,
            "category": self.category,
            "node": node,
            "description": self.description,
        }


@dataclass
class TraceLog:
    """An append-only, filterable event log."""

    enabled: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    #: Live observers, notified of every recorded event *even when the log
    #: itself is disabled* — reactive consumers (the chaos engine's
    #: trace-triggered injections, the invariant auditor) need the stream,
    #: not the storage.
    listeners: list = field(default_factory=list, repr=False)

    def record(self, time: float, category: str, node: object,
               description: str) -> None:
        """Append an event (no-op when disabled; listeners always fire)."""
        if self.listeners:
            event = TraceEvent(time, category, node, description)
            for listener in tuple(self.listeners):
                listener(event)
            if self.enabled:
                self.events.append(event)
            return
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, category, node, description))

    def subscribe(self, listener) -> None:
        """Register ``listener(event)`` to run on every recorded event."""
        self.listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self.listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def filter(
        self,
        category: "str | Collection[str] | None" = None,
        node: object = None,
        since: "float | None" = None,
        until: "float | None" = None,
    ) -> list[TraceEvent]:
        """Events matching all given criteria, in recording order.

        ``category`` may be a single name or any collection of names
        (membership match).
        """
        selected: Iterable[TraceEvent] = self.events
        if category is not None:
            if isinstance(category, str):
                selected = (e for e in selected if e.category == category)
            else:
                wanted = frozenset(category)
                selected = (e for e in selected if e.category in wanted)
        if node is not None:
            selected = (e for e in selected if e.node == node)
        if since is not None:
            selected = (e for e in selected if e.time >= since)
        if until is not None:
            selected = (e for e in selected if e.time <= until)
        return list(selected)

    def categories(self) -> dict[str, int]:
        """Event counts per category."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def format(self, limit: "int | None" = None,
               tail: "int | None" = None) -> str:
        """Human-readable timeline — the first ``limit`` rows, or the last
        ``tail`` rows (mutually exclusive)."""
        if limit is not None and tail is not None:
            raise ValueError("pass at most one of limit and tail")
        lines: list[str] = []
        rows = self.events
        if tail is not None:
            rows = self.events[-tail:] if tail else []
            if len(self.events) > len(rows):
                lines.append(f"... ({len(self.events) - len(rows)} earlier)")
        elif limit is not None:
            rows = self.events[:limit]
        lines.extend(
            f"[{event.time:10.3f}] {event.category:<12} "
            f"@{event.node}: {event.description}"
            for event in rows
        )
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dicts(self) -> Iterator[dict]:
        """Every event as a JSON-ready dict, in recording order."""
        return (event.to_dict() for event in self.events)

    def to_jsonl(self) -> str:
        """The log as JSONL (one compact JSON object per line, trailing
        newline; empty string for an empty log)."""
        lines = [json.dumps(row, sort_keys=True) for row in self.to_dicts()]
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self.events)
