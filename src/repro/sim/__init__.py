"""Discrete-event simulation kernel.

A minimal, dependency-free event engine (the offline environment has no
simpy): a monotonic clock, a binary-heap calendar, cancellable events, and
periodic-timer helpers.  The BCP protocol runtime in :mod:`repro.protocol`
is built on it.
"""

from repro.sim.engine import EventEngine, EventHandle, SimulationError
from repro.sim.timers import PeriodicTimer, Timeout
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "EventEngine",
    "EventHandle",
    "SimulationError",
    "PeriodicTimer",
    "Timeout",
    "TraceLog",
    "TraceEvent",
]
