"""Timer helpers over the event engine.

:class:`Timeout` models one-shot, restartable timers (retransmission and
rejoin timers in the BCP runtime); :class:`PeriodicTimer` models fixed-rate
recurring work (the RCC eligibility clock).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sim.engine import EventEngine, EventHandle
from repro.util.validation import check_positive


class Timeout:
    """A one-shot timer that can be restarted or cancelled.

    The callback fires once, ``duration`` after the most recent
    :meth:`start`.  Starting a running timer restarts it.
    """

    def __init__(
        self, engine: EventEngine, duration: float, callback: Callable[[], None]
    ) -> None:
        check_positive(duration, "duration")
        self._engine = engine
        self.duration = duration
        self._callback = callback
        self._handle: EventHandle | None = None

    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.active

    def start(self) -> None:
        """(Re)arm the timer for ``duration`` from now."""
        self.cancel()
        self._handle = self._engine.schedule(self.duration, self._fire)

    def cancel(self) -> None:
        """Disarm without firing; safe to call when not running."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTimer:
    """A fixed-period recurring timer.

    The callback fires every ``period`` until :meth:`stop`.  The first
    firing happens one period after :meth:`start` (or at a given phase).
    """

    def __init__(
        self, engine: EventEngine, period: float, callback: Callable[[], None]
    ) -> None:
        check_positive(period, "period")
        self._engine = engine
        self.period = period
        self._callback = callback
        self._handle: EventHandle | None = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, phase: float | None = None) -> None:
        """Begin firing; the first tick comes after ``phase`` (default: one
        full period).  ``phase`` must be non-negative — a negative phase
        would schedule the first tick in the simulated past."""
        if phase is not None and not phase >= 0:
            raise ValueError(f"phase must be >= 0, got {phase!r}")
        self.stop()
        self._running = True
        delay = self.period if phase is None else phase
        self._handle = self._engine.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop firing; safe to call when not running."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:  # pragma: no cover - stop() cancels the event
            return
        self._handle = self._engine.schedule(self.period, self._tick)
        self._callback()
