"""The event engine: a heap-based calendar queue.

Events are callbacks scheduled at absolute times.  Same-time events fire
in scheduling order (a monotone sequence number breaks ties), which keeps
protocol runs fully deterministic.

The engine is instrumented (see :mod:`repro.obs`): it counts schedules,
cancellations, and firings, tracks the heap-depth high-water mark, and —
when the registry is a real one — records per-callback-category wall
time.  Pass ``metrics=NULL_REGISTRY`` to de-instrument a hot loop; by
default the session registry is used.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.obs.registry import MetricsRegistry, get_registry


class SimulationError(Exception):
    """Raised on kernel misuse (scheduling in the past, etc.)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    category: str = field(default="", compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _ScheduledEvent, engine: "EventEngine") -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Absolute fire time."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelling a fired/cancelled event is a no-op."""
        event = self._event
        if not event.cancelled and not event.fired:
            self._engine._live -= 1
            self._engine._c_cancelled.inc()
        event.cancelled = True


class EventEngine:
    """A discrete-event clock and calendar."""

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_ScheduledEvent] = []
        self._events_processed = 0
        #: Post-fire observers: called as ``observer(time, category)`` after
        #: every fired event.  Kept in a plain list checked for truthiness
        #: per event, so the hook is free when nobody subscribed.
        self._observers: list[Callable[[float, str], None]] = []
        #: Live count of non-cancelled events in the calendar, maintained
        #: on push/fire/cancel so :attr:`pending` is O(1).
        self._live = 0
        self._metrics = metrics if metrics is not None else get_registry()
        self._timed = self._metrics.enabled
        self._c_fired = self._metrics.counter("engine.events_fired")
        self._c_scheduled = self._metrics.counter("engine.events_scheduled")
        self._c_cancelled = self._metrics.counter("engine.events_cancelled")
        self._g_heap = self._metrics.gauge("engine.heap_depth")
        #: Callback category -> cached Timer (avoids a registry lookup and
        #: string build per event).
        self._category_timers: dict[str, Any] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still in the calendar (cancelled
        tombstones awaiting their pop are excluded).  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    def subscribe(self, observer: Callable[[float, str], None]) -> None:
        """Register ``observer(time, category)`` to run after every fired
        event.  Observers are how auditors watch a run without patching
        callbacks; they must not schedule or cancel events."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[float, str], None]) -> None:
        """Remove a previously subscribed observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if not math.isfinite(delay):
            raise SimulationError(f"cannot schedule non-finite delay {delay!r}")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if not math.isfinite(time):
            # NaN would also silently corrupt heap ordering (every
            # comparison against it is False), so reject loudly.
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self._now}"
            )
        category = getattr(callback, "__qualname__", None) \
            or type(callback).__name__
        bound = (lambda: callback(*args)) if args else callback
        event = _ScheduledEvent(time=time, seq=self._seq, callback=bound,
                                category=category)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        self._c_scheduled.inc()
        self._g_heap.set(len(self._heap))
        return EventHandle(event, self)

    # ------------------------------------------------------------------
    def _fire(self, event: _ScheduledEvent) -> None:
        event.fired = True
        self._live -= 1
        self._now = event.time
        self._events_processed += 1
        self._c_fired.inc()
        if not self._timed:
            event.callback()
            if self._observers:
                for observer in self._observers:
                    observer(event.time, event.category)
            return
        timer = self._category_timers.get(event.category)
        if timer is None:
            timer = self._metrics.timer(f"engine.callback_s.{event.category}")
            self._category_timers[event.category] = timer
        start = perf_counter()
        try:
            event.callback()
        finally:
            timer.record(perf_counter() - start)
        if self._observers:
            for observer in self._observers:
                observer(event.time, event.category)

    def step(self) -> bool:
        """Fire the next pending event; returns ``False`` when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            # The gauge tracks the physical heap (tombstones included), so
            # every pop moves it — not just pushes in ``schedule_at``.
            self._g_heap.set(len(self._heap))
            if event.cancelled:
                continue
            self._fire(event)
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Run until the calendar drains, the clock passes ``until``, or
        ``max_events`` fire; returns the final clock value.

        With ``until`` set, events scheduled beyond it stay pending and the
        clock is advanced exactly to ``until`` (so repeated bounded runs
        compose).
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return self._now
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._g_heap.set(len(self._heap))
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return self._now
            if not self.step():  # pragma: no cover - guarded by loop head
                break
            fired += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now
