"""The event engine: a heap-based calendar queue.

Events are callbacks scheduled at absolute times.  Same-time events fire
in scheduling order (a monotone sequence number breaks ties), which keeps
protocol runs fully deterministic.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


class SimulationError(Exception):
    """Raised on kernel misuse (scheduling in the past, etc.)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute fire time."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelling a fired/cancelled event is a no-op."""
        self._event.cancelled = True


class EventEngine:
    """A discrete-event clock and calendar."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_ScheduledEvent] = []
        self._events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled
        tombstones not yet popped)."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self._now}"
            )
        bound = (lambda: callback(*args)) if args else callback
        event = _ScheduledEvent(time=time, seq=self._seq, callback=bound)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event; returns ``False`` when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Run until the calendar drains, the clock passes ``until``, or
        ``max_events`` fire; returns the final clock value.

        With ``until`` set, events scheduled beyond it stay pending and the
        clock is advanced exactly to ``until`` (so repeated bounded runs
        compose).
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return self._now
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return self._now
            if not self.step():  # pragma: no cover - guarded by loop head
                break
            fired += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now
