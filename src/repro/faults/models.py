"""Failure scenarios.

A :class:`FailureScenario` is a set of crashed nodes and simplex links.  A
crashed node implicitly disables every link incident to it ("a link can
crash by losing all messages transmitted over it" — and a crashed node
transmits nothing), which :meth:`FailureScenario.components` expands
against a topology.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.network.components import LinkId, NodeId
from repro.network.topology import Topology


def component_to_json(component) -> dict:
    """JSON-safe encoding of a failed component (node or simplex link).

    Used by replayable chaos artifacts; round-trips through
    :func:`component_from_json`.
    """
    if isinstance(component, LinkId):
        return {"kind": "link", "src": component.src, "dst": component.dst}
    return {"kind": "node", "id": component}


def component_from_json(data: dict):
    """Inverse of :func:`component_to_json`."""
    if data["kind"] == "link":
        return LinkId(data["src"], data["dst"])
    if data["kind"] == "node":
        return data["id"]
    raise ValueError(f"unknown component kind {data.get('kind')!r}")


@dataclass(frozen=True)
class FailureScenario:
    """A set of simultaneously crashed components."""

    failed_nodes: frozenset = field(default_factory=frozenset)
    failed_links: frozenset = field(default_factory=frozenset)
    name: str = ""

    @staticmethod
    def of_links(links: Iterable[LinkId], name: str = "") -> "FailureScenario":
        links = frozenset(links)
        label = name or "link " + "+".join(sorted(str(link) for link in links))
        return FailureScenario(failed_links=links, name=label)

    @staticmethod
    def of_nodes(nodes: Iterable[NodeId], name: str = "") -> "FailureScenario":
        nodes = frozenset(nodes)
        label = name or "node " + "+".join(sorted(str(node) for node in nodes))
        return FailureScenario(failed_nodes=nodes, name=label)

    # ------------------------------------------------------------------
    def components(self, topology: Topology) -> frozenset:
        """All failed components: the named nodes and links, plus every
        link incident to a failed node."""
        components: set = set(self.failed_nodes) | set(self.failed_links)
        for node in self.failed_nodes:
            components.update(topology.incident_links(node))
        return frozenset(components)

    def hits_endpoint(self, source: NodeId, destination: NodeId) -> bool:
        """Whether this scenario crashes either end-node of a connection.

        Such connections are unrecoverable by any protocol and the paper
        excludes them from R_fast (Section 7.2).
        """
        return source in self.failed_nodes or destination in self.failed_nodes

    @property
    def size(self) -> int:
        """Number of explicitly failed components."""
        return len(self.failed_nodes) + len(self.failed_links)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or repr(self)
