"""Scenario enumerators for the paper's three failure models."""

from __future__ import annotations

from itertools import combinations

from repro.faults.models import FailureScenario
from repro.network.topology import Topology
from repro.util.rng import make_rng


def all_single_link_failures(topology: Topology) -> list[FailureScenario]:
    """One scenario per simplex link (exhaustive single-link model)."""
    return [FailureScenario.of_links([link]) for link in topology.links()]


def all_single_node_failures(topology: Topology) -> list[FailureScenario]:
    """One scenario per node (exhaustive single-node model)."""
    return [FailureScenario.of_nodes([node]) for node in topology.nodes()]


def all_double_node_failures(topology: Topology) -> list[FailureScenario]:
    """One scenario per unordered node pair — exhaustive but quadratic;
    prefer :func:`sample_double_node_failures` on large networks."""
    return [
        FailureScenario.of_nodes(pair)
        for pair in combinations(topology.nodes(), 2)
    ]


def sample_double_node_failures(
    topology: Topology, count: int, seed: "int | None" = 0
) -> list[FailureScenario]:
    """``count`` distinct node pairs sampled uniformly without replacement.

    Falls back to the exhaustive list when ``count`` covers all pairs.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    pairs = list(combinations(topology.nodes(), 2))
    if count >= len(pairs):
        return [FailureScenario.of_nodes(pair) for pair in pairs]
    rng = make_rng(seed)
    return [FailureScenario.of_nodes(pair) for pair in rng.sample(pairs, count)]


def sample_multi_component_failures(
    topology: Topology,
    count: int,
    nodes_per_scenario: int = 0,
    links_per_scenario: int = 0,
    seed: "int | None" = 0,
) -> list[FailureScenario]:
    """Random mixed scenarios with the given number of node and link
    crashes each — used by stress tests beyond the paper's three models."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if nodes_per_scenario < 0 or links_per_scenario < 0:
        raise ValueError("per-scenario failure counts must be >= 0")
    if nodes_per_scenario == 0 and links_per_scenario == 0:
        raise ValueError("each scenario needs at least one failed component")
    rng = make_rng(seed)
    nodes = list(topology.nodes())
    links = list(topology.links())
    if nodes_per_scenario > len(nodes) or links_per_scenario > len(links):
        raise ValueError("scenario size exceeds the topology")
    scenarios = []
    for index in range(count):
        scenarios.append(
            FailureScenario(
                failed_nodes=frozenset(rng.sample(nodes, nodes_per_scenario)),
                failed_links=frozenset(rng.sample(links, links_per_scenario)),
                name=f"random#{index}",
            )
        )
    return scenarios
