"""Fault models and scenario enumeration.

The paper's evaluation (Section 7.2) injects three failure models after
the workload is established: single link failures, single node failures,
and double node failures.  This package enumerates those scenarios
(exhaustively or by sampling) and provides a Poisson failure process for
the discrete-event runtime.
"""

from repro.faults.models import FailureScenario
from repro.faults.enumerate import (
    all_double_node_failures,
    all_single_link_failures,
    all_single_node_failures,
    sample_double_node_failures,
    sample_multi_component_failures,
)
from repro.faults.poisson import FailureEvent, PoissonFailureProcess

__all__ = [
    "FailureScenario",
    "all_single_link_failures",
    "all_single_node_failures",
    "all_double_node_failures",
    "sample_double_node_failures",
    "sample_multi_component_failures",
    "PoissonFailureProcess",
    "FailureEvent",
]
