"""Poisson failure process for the discrete-event runtime.

Section 3.1 assumes "a Poisson failure process with rate λ" per component.
:class:`PoissonFailureProcess` draws exponential inter-failure times per
component and (optionally) exponential repair times, producing a timeline
of :class:`FailureEvent` records the protocol runtime replays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.topology import Topology
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One component crash (and optional later repair)."""

    time: float
    component: object
    #: Repair completion time, or ``None`` for a permanent crash.
    repair_time: "float | None" = None


class PoissonFailureProcess:
    """Independent per-component Poisson crashes over a horizon."""

    def __init__(
        self,
        topology: Topology,
        failure_rate: float,
        repair_rate: float = 0.0,
        include_links: bool = True,
        include_nodes: bool = True,
        seed: "int | None" = 0,
    ) -> None:
        check_positive(failure_rate, "failure_rate")
        check_non_negative(repair_rate, "repair_rate")
        if not include_links and not include_nodes:
            raise ValueError("at least one of links/nodes must be included")
        self.topology = topology
        self.failure_rate = failure_rate
        self.repair_rate = repair_rate
        self.include_links = include_links
        self.include_nodes = include_nodes
        self._rng = make_rng(seed)

    def _exponential(self, rate: float) -> float:
        # Inverse-CDF sampling keeps the draw count per event fixed, so the
        # timeline is stable under seed-preserving refactors.
        u = self._rng.random()
        return -math.log(1.0 - u) / rate

    def generate(self, horizon: float) -> list[FailureEvent]:
        """All crash events in ``[0, horizon)``, time-ordered.

        With a non-zero repair rate each crash carries its repair time and
        the component can crash again after repair; with repair rate 0 each
        component crashes at most once (permanent failures).
        """
        check_positive(horizon, "horizon")
        components: list[object] = []
        if self.include_nodes:
            components.extend(self.topology.nodes())
        if self.include_links:
            components.extend(self.topology.links())
        events: list[FailureEvent] = []
        for component in components:
            clock = self._exponential(self.failure_rate)
            while clock < horizon:
                if self.repair_rate > 0:
                    repair_at = clock + self._exponential(self.repair_rate)
                    events.append(FailureEvent(clock, component, repair_at))
                    clock = repair_at + self._exponential(self.failure_rate)
                else:
                    events.append(FailureEvent(clock, component, None))
                    break
        events.sort(key=lambda event: event.time)
        return events
