"""repro — reproduction of Han & Shin, "Fast Restoration of Real-Time
Communication Service from Component Failures in Multi-hop Networks"
(SIGCOMM 1997).

The library implements the Backup Channel Protocol (BCP): dependable
real-time connections consisting of a primary channel plus cold-standby
backup channels whose spare resources are shared through *backup
multiplexing*, together with the failure-recovery protocol, the real-time
control channel (RCC) network, baselines, and the paper's full evaluation
harness.

Quickstart::

    from repro import BCPNetwork, FaultToleranceQoS, torus
    from repro.faults import FailureScenario
    from repro.recovery import RecoveryEvaluator

    net = BCPNetwork(torus(8, 8, capacity=200.0))
    conn = net.establish(0, 63, ft_qos=FaultToleranceQoS(num_backups=1,
                                                         mux_degree=3))
    evaluator = RecoveryEvaluator(net)
    result = evaluator.evaluate(
        FailureScenario.of_links([conn.primary.path.links[0]]))
    print(result.r_fast)
"""

from repro.channels import (
    Channel,
    ChannelRole,
    DelayQoS,
    FaultToleranceQoS,
    TrafficSpec,
)
from repro.core import (
    BCPNetwork,
    ConnectionState,
    DConnection,
    EstablishmentError,
    NegotiationOffer,
    OverlapPolicy,
)
from repro.network import Topology, mesh, torus
from repro.obs import MetricsRegistry, NullRegistry
from repro.routing import Path

__version__ = "1.0.0"

__all__ = [
    "BCPNetwork",
    "DConnection",
    "ConnectionState",
    "EstablishmentError",
    "NegotiationOffer",
    "OverlapPolicy",
    "Channel",
    "ChannelRole",
    "TrafficSpec",
    "DelayQoS",
    "FaultToleranceQoS",
    "Topology",
    "Path",
    "MetricsRegistry",
    "NullRegistry",
    "torus",
    "mesh",
    "__version__",
]
