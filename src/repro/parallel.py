"""Deterministic parallel scenario evaluation.

Experiment sweeps replay thousands of independent failure scenarios
against a loaded network — embarrassingly parallel work that the serial
drivers leave on the table.  This module shards a scenario stream across
a process pool while keeping one hard guarantee:

**results are bit-identical for any worker count.**

The guarantee rests on three rules:

1. *Shard boundaries never depend on the worker count.*  The stream is
   chunked into fixed-size shards (:data:`DEFAULT_SHARD_SIZE`), so shard
   ``k`` holds the same scenarios whether one worker or sixteen exist.
2. *Randomness is per-shard.*  Each shard gets its own integer seed
   drawn from one parent RNG (``repro.util.rng.make_rng(seed)``), and
   the shard's evaluator is built with that seed — no RNG is ever
   threaded *across* shards, so scheduling order cannot leak into
   ``ActivationOrder.RANDOM`` shuffles.
3. *Merging is ordered.*  Shard outputs are folded in shard-index order
   via :meth:`~repro.recovery.metrics.RecoveryStats.merge` and
   :meth:`~repro.obs.registry.MetricsRegistry.absorb`, regardless of
   completion order.  Trace events are captured into a private
   :class:`~repro.sim.trace.TraceLog` per shard and replayed into the
   caller's trace sink in the same order, so ``--trace-out`` exports are
   also identical for any worker count.

``workers=1`` runs the identical per-shard code inline (fresh registry
per shard, per-shard seeds, ordered merge) without creating a pool, so
the serial path *is* the parallel path — there is no second code path to
drift.  Worker processes receive the pickled network and evaluator
configuration once, at pool initialisation, not per shard; per-worker
construction cost is then amortised by the ledger's version-cached
spare snapshots (:meth:`~repro.network.reservations.ReservationLedger.
shared_spares`).

Failures in a worker are *surfaced*, never swallowed: the parent blocks
on ``Future.result()`` which re-raises the worker's exception (or
``BrokenProcessPool`` when the child died hard), so a poisoned scenario
aborts the sweep loudly instead of hanging it.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor

from repro.core.bcp import BCPNetwork
from repro.faults.models import FailureScenario
from repro.network.components import LinkId
from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
    get_trace_sink,
    obs_session,
)
from repro.recovery.evaluator import ActivationOrder, RecoveryEvaluator
from repro.recovery.grouping import GroupKey, by_mux_degree, evaluate_grouped
from repro.recovery.metrics import RecoveryStats
from repro.sim.trace import TraceLog
from repro.util.rng import make_rng

#: Scenarios per shard.  Fixed (never derived from the worker count) so
#: that shard contents — and therefore per-shard seeds and merge order —
#: are invariant across worker counts.  Small enough to load-balance a
#: few hundred scenarios over a handful of workers, large enough that
#: per-shard overhead (evaluator construction, snapshot transfer) stays
#: well under the evaluation cost.
DEFAULT_SHARD_SIZE = 32


def resolve_workers(workers: "int | None") -> int:
    """Turn a ``--workers`` value into a concrete worker count.

    ``None`` means *auto*: every available CPU.  Explicit values must be
    positive.
    """
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _mp_context():
    # fork keeps worker start cheap and inherits loaded modules (so
    # exceptions defined in test modules unpickle fine on the way back);
    # platforms without fork fall back to their default start method.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# worker-side machinery
# ----------------------------------------------------------------------
# One shared-state dict per worker process, installed by the pool
# initializer from a payload pickled exactly once in the parent.
_SHARED: "dict | None" = None


def _init_shared(payload: bytes) -> None:
    global _SHARED
    _SHARED = pickle.loads(payload)


def _make_evaluator(shared: dict, shard_seed: int, registry: MetricsRegistry):
    return RecoveryEvaluator(
        shared["network"],
        order=shared["order"],
        spare_override=shared["spare_override"],
        free_capacity_fallback=shared["free_capacity_fallback"],
        seed=shard_seed,
        metrics=registry,
    )


def _shard_stats(
    shared: dict, index: int, scenarios: list, shard_seed: int
) -> tuple:
    registry = MetricsRegistry()
    trace = TraceLog()
    evaluator = _make_evaluator(shared, shard_seed, registry)
    with obs_session(registry, trace):
        stats = evaluator.evaluate_many(scenarios)
    return index, stats, registry.snapshot(), trace.events, trace.spans.spans


def _shard_groups(
    shared: dict, index: int, scenarios: list, shard_seed: int
) -> tuple:
    registry = MetricsRegistry()
    trace = TraceLog()
    evaluator = _make_evaluator(shared, shard_seed, registry)
    with obs_session(registry, trace):
        groups = evaluate_grouped(
            shared["network"], evaluator, scenarios, shared["key"]
        )
    return index, groups, registry.snapshot(), trace.events, trace.spans.spans


def _pool_shard_stats(index: int, scenarios: list, shard_seed: int) -> tuple:
    return _shard_stats(_SHARED, index, scenarios, shard_seed)


def _pool_shard_groups(index: int, scenarios: list, shard_seed: int) -> tuple:
    return _shard_groups(_SHARED, index, scenarios, shard_seed)


def _map_one(func: Callable, item: object) -> tuple:
    registry = MetricsRegistry()
    trace = TraceLog()
    with obs_session(registry, trace):
        result = func(item)
    return result, registry.snapshot(), trace.events, trace.spans.spans


def _replay_trace(sink, events, spans=()) -> None:
    """Append a shard's captured trace events (and spans) to the caller's
    sink.

    Each shard records into a private :class:`TraceLog` (worker *or*
    inline — same capture either way), and the parent replays the events
    in shard order, so the session trace is identical for any worker
    count.  Captured spans are absorbed the same way — span ids are
    remapped in merge order (see :meth:`repro.obs.spans.SpanLog.absorb`),
    so span streams are also worker-count invariant.
    """
    if sink is None:
        return
    for event in events:
        sink.record(event.time, event.category, event.node,
                    event.description)
    if spans:
        sink.spans.absorb(spans)


# ----------------------------------------------------------------------
# parent-side orchestration
# ----------------------------------------------------------------------
def _run_sharded(
    network: BCPNetwork,
    scenarios: Iterable[FailureScenario],
    *,
    workers: "int | None",
    order: ActivationOrder,
    spare_override: "Mapping[LinkId, float] | float | None",
    free_capacity_fallback: bool,
    seed: "int | None",
    shard_size: int,
    metrics: "MetricsRegistry | None",
    key: "GroupKey | None",
) -> list:
    """Shard, evaluate (inline or pooled), and merge snapshots in order.

    Returns the per-shard payloads (stats or group dicts) in shard order;
    the caller folds those into its result shape.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    scenario_list = list(scenarios)
    registry = metrics if metrics is not None else get_registry()
    shards = [
        scenario_list[start : start + shard_size]
        for start in range(0, len(scenario_list), shard_size)
    ]
    parent_rng = make_rng(seed)
    seeds = [parent_rng.getrandbits(64) for _ in shards]
    shared = {
        "network": network,
        "order": order,
        "spare_override": spare_override,
        "free_capacity_fallback": free_capacity_fallback,
        "key": key,
    }
    shard_fn = _shard_stats if key is None else _shard_groups
    worker_count = min(resolve_workers(workers), max(1, len(shards)))
    if worker_count <= 1 or len(shards) <= 1:
        outputs = [
            shard_fn(shared, index, shard, shard_seed)
            for index, (shard, shard_seed) in enumerate(zip(shards, seeds))
        ]
    else:
        pool_fn = _pool_shard_stats if key is None else _pool_shard_groups
        context = _mp_context()
        if context.get_start_method() == "fork":
            # Fork inherits the parent's address space, so the shared
            # state can be installed as a module global before the pool
            # forks — no pickle round-trip of the (potentially large)
            # network at all.  Every worker is forked during the submit
            # loop, strictly inside the window where ``_SHARED`` is set;
            # the previous value is restored once all results are in.
            global _SHARED
            previous = _SHARED
            _SHARED = shared
            try:
                with ProcessPoolExecutor(
                    max_workers=worker_count, mp_context=context
                ) as pool:
                    futures = [
                        pool.submit(pool_fn, index, shard, shard_seed)
                        for index, (shard, shard_seed) in enumerate(
                            zip(shards, seeds)
                        )
                    ]
                    # result() re-raises worker exceptions — a poisoned
                    # scenario aborts the sweep instead of hanging it.
                    outputs = [future.result() for future in futures]
            finally:
                _SHARED = previous
        else:  # pragma: no cover - non-fork platforms
            payload = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
            with ProcessPoolExecutor(
                max_workers=worker_count,
                mp_context=context,
                initializer=_init_shared,
                initargs=(payload,),
            ) as pool:
                futures = [
                    pool.submit(pool_fn, index, shard, shard_seed)
                    for index, (shard, shard_seed) in enumerate(zip(shards, seeds))
                ]
                outputs = [future.result() for future in futures]
    outputs.sort(key=lambda output: output[0])
    sink = get_trace_sink()
    for _, _, snapshot, events, spans in outputs:
        registry.absorb(snapshot)
        _replay_trace(sink, events, spans)
    return [payload_part for _, payload_part, _, _, _ in outputs]


def evaluate_scenarios(
    network: BCPNetwork,
    scenarios: Iterable[FailureScenario],
    *,
    workers: "int | None" = 1,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    spare_override: "Mapping[LinkId, float] | float | None" = None,
    free_capacity_fallback: bool = False,
    seed: "int | None" = 0,
    shard_size: int = DEFAULT_SHARD_SIZE,
    metrics: "MetricsRegistry | None" = None,
) -> RecoveryStats:
    """Evaluate a scenario stream, optionally across worker processes.

    The parallel twin of
    :meth:`~repro.recovery.evaluator.RecoveryEvaluator.evaluate_many`:
    same parameters as the evaluator constructor, plus ``workers``
    (``None`` = one per CPU) and ``shard_size``.  Returns the merged
    :class:`~repro.recovery.metrics.RecoveryStats`; per-shard metric
    snapshots are folded into ``metrics`` (default: session registry) in
    shard order, so counters are bit-identical across worker counts.
    """
    stats_list = _run_sharded(
        network,
        scenarios,
        workers=workers,
        order=order,
        spare_override=spare_override,
        free_capacity_fallback=free_capacity_fallback,
        seed=seed,
        shard_size=shard_size,
        metrics=metrics,
        key=None,
    )
    merged = RecoveryStats()
    for stats in stats_list:
        merged = merged.merge(stats)
    return merged


def evaluate_scenarios_grouped(
    network: BCPNetwork,
    scenarios: Iterable[FailureScenario],
    *,
    key: GroupKey = by_mux_degree,
    workers: "int | None" = 1,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    spare_override: "Mapping[LinkId, float] | float | None" = None,
    free_capacity_fallback: bool = False,
    seed: "int | None" = 0,
    shard_size: int = DEFAULT_SHARD_SIZE,
    metrics: "MetricsRegistry | None" = None,
) -> dict[object, RecoveryStats]:
    """Parallel twin of :func:`repro.recovery.grouping.evaluate_grouped`.

    ``key`` must be picklable (a module-level function, like the ones in
    :mod:`repro.recovery.grouping`) so worker processes can apply it.
    """
    group_lists = _run_sharded(
        network,
        scenarios,
        workers=workers,
        order=order,
        spare_override=spare_override,
        free_capacity_fallback=free_capacity_fallback,
        seed=seed,
        shard_size=shard_size,
        metrics=metrics,
        key=key,
    )
    merged: dict[object, RecoveryStats] = {}
    for groups in group_lists:
        for group, stats in groups.items():
            merged[group] = merged.get(group, RecoveryStats()).merge(stats)
    return merged


def parallel_map(
    func: Callable,
    items: Iterable,
    *,
    workers: "int | None" = 1,
    metrics: "MetricsRegistry | None" = None,
) -> list:
    """Ordered map over independent tasks, optionally across processes.

    For drivers whose unit of work is a whole simulation or sweep cell
    (reliability, message-loss, delay-bound, inhomogeneous workloads)
    rather than a scenario stream.  ``func`` and every item must be
    picklable; each task runs under its own fresh metrics registry
    (worker *or* inline — same semantics), and the per-task snapshots
    are folded into ``metrics`` (default: session registry) in item
    order.  Results come back in item order; a task exception propagates
    to the caller.
    """
    item_list = list(items)
    registry = metrics if metrics is not None else get_registry()
    worker_count = min(resolve_workers(workers), max(1, len(item_list)))
    if worker_count <= 1 or len(item_list) <= 1:
        outputs = [_map_one(func, item) for item in item_list]
    else:
        with ProcessPoolExecutor(
            max_workers=worker_count, mp_context=_mp_context()
        ) as pool:
            futures = [
                pool.submit(_map_one, func, item) for item in item_list
            ]
            outputs = [future.result() for future in futures]
    sink = get_trace_sink()
    results = []
    for result, snapshot, events, spans in outputs:
        registry.absorb(snapshot)
        _replay_trace(sink, events, spans)
        results.append(result)
    return results
