"""Table 2: per-connection fault-tolerance control with mixed degrees.

A quarter of the connections use each of mux = 1, 3, 5, 6 (assigned round-
robin by establishment index), all with the same number of backups.  The
spare bandwidth is a single figure for the whole network; R_fast is broken
down per class, demonstrating that "the fault-tolerance level of each
class of D-connections can be readily controlled" (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.core.bcp import BCPNetwork
from repro.experiments.setup import (
    FAILURE_MODELS,
    NetworkConfig,
    load_network,
    standard_failure_models,
)
from repro.faults.models import FailureScenario
from repro.parallel import evaluate_scenarios_grouped
from repro.recovery.evaluator import ActivationOrder, RecoveryEvaluator
from repro.recovery.grouping import by_mux_degree, evaluate_grouped
from repro.recovery.metrics import RecoveryStats
from repro.util.tables import format_percent, format_table

PAPER_MIX = (1, 3, 5, 6)

#: Paper-reported values (panel -> row -> class degree -> fraction).
PAPER_TABLE2 = {
    ("torus", 1): {
        "Spare bandwidth": 0.1243,
        "1 link failure": {1: 1.0, 3: 1.0, 5: 0.9348, 6: 0.5043},
        "1 node failure": {1: 1.0, 3: 0.9964, 5: 0.6992, 6: 0.4414},
        "2 node failures": {1: 0.9311, 3: 0.9241, 5: 0.6588, 6: 0.3929},
    },
    ("torus", 2): {
        "Spare bandwidth": 0.1688,
        "1 link failure": {1: 1.0, 3: 1.0, 5: 1.0, 6: 1.0},
        "1 node failure": {1: 1.0, 3: 1.0, 5: 1.0, 6: 1.0},
        "2 node failures": {1: 1.0, 3: 1.0, 5: 0.9945, 6: 0.9367},
    },
    ("mesh", 1): {
        "Spare bandwidth": 0.1741,
        "1 link failure": {1: 1.0, 3: 1.0, 5: 0.9729, 6: 0.68},
        "1 node failure": {1: 1.0, 3: 0.9961, 5: 0.8815, 6: 0.5218},
        "2 node failures": {1: 0.8946, 3: 0.8904, 5: 0.7855, 6: 0.4747},
    },
}


def evaluate_by_class(
    network: BCPNetwork,
    evaluator: RecoveryEvaluator,
    scenarios: list[FailureScenario],
) -> dict[int, RecoveryStats]:
    """Aggregate recovery stats per multiplexing-degree class (thin alias
    over the general :func:`repro.recovery.grouping.evaluate_grouped`)."""
    return evaluate_grouped(network, evaluator, scenarios, key=by_mux_degree)


@dataclass
class Table2Result:
    """One panel of Table 2."""

    config: NetworkConfig
    num_backups: int
    classes: tuple[int, ...]
    spare: "float | None" = None
    complete: bool = True
    rejected: int = 0
    #: failure model -> class degree -> R_fast.
    r_fast: dict[str, dict[int, "float | None"]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the panel in the paper's row layout."""
        headers = ["row"] + [f"mux={degree}" for degree in self.classes]
        rows: list[list[object]] = [
            ["Spare bandwidth", format_percent(self.spare)]
            + [""] * (len(self.classes) - 1)
        ]
        for model, values in self.r_fast.items():
            rows.append(
                [model]
                + [format_percent(values.get(d)) for d in self.classes]
            )
        title = (
            f"Table 2: R_fast, mixed mux ({'/'.join(map(str, self.classes))}) "
            f"— {self.config.label}, {self.num_backups} backup(s)"
        )
        return format_table(headers, rows, title=title)

    def paper_reference(self) -> "dict | None":
        """The paper's values for this panel at 8x8 scale, if any."""
        return PAPER_TABLE2.get((self.config.topology, self.num_backups))


def run_table2(
    config: "NetworkConfig | None" = None,
    num_backups: int = 1,
    classes: tuple[int, ...] = PAPER_MIX,
    double_node_samples: int = 200,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
) -> Table2Result:
    """Regenerate one Table 2 panel.

    ``workers`` fans the scenario evaluation out over processes (``None``
    = one per CPU); results are identical for any worker count.
    """
    config = config or NetworkConfig()
    result = Table2Result(
        config=config, num_backups=num_backups, classes=tuple(classes)
    )

    def qos_for(index: int) -> FaultToleranceQoS:
        return FaultToleranceQoS(
            num_backups=num_backups, mux_degree=classes[index % len(classes)]
        )

    network, report = load_network(config, qos_for)
    result.complete = report.essentially_complete
    result.rejected = report.rejected
    result.spare = (
        network.spare_fraction() if report.essentially_complete else None
    )
    models = standard_failure_models(network.topology, double_node_samples, seed)
    for model in FAILURE_MODELS:
        scenarios = models[model]
        per_class = evaluate_scenarios_grouped(
            network, scenarios, key=by_mux_degree,
            workers=workers, order=order, seed=seed,
        )
        result.r_fast[model] = {
            degree: (per_class[degree].r_fast if degree in per_class else None)
            for degree in classes
        }
    return result
