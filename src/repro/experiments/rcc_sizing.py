"""Section 5.2: RCC capacity sizing and bounded control-message delay.

The experiment computes the frame capacity the sizing rule demands for the
loaded workload, then stresses the control plane with a node failure (the
largest report burst) under (a) a compliant frame size and (b) a
deliberately undersized one, measuring the worst per-hop control-message
delay.  The paper's claim: with the rule satisfied, "the control-message
delay on any link is bounded by D_max"; undersizing queues messages beyond
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.delay import required_rcc_frame_messages
from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import NetworkConfig, load_network
from repro.faults.models import FailureScenario
from repro.protocol.config import ProtocolConfig, RCCParams
from repro.protocol.runtime import ProtocolSimulation
from repro.util.tables import format_table


@dataclass
class RCCSizingResult:
    config: NetworkConfig
    required_messages: int = 0
    #: frame capacity -> worst observed per-hop message delay.
    worst_delay: dict[int, float] = field(default_factory=dict)
    #: The per-hop budget: D_max plus one eligibility interval (a message
    #: enqueued just after a transmission waits 1/R_max before flying).
    budget: float = 1.0

    def format(self) -> str:
        """Render the sizing comparison table."""
        rows = [
            [capacity,
             f"{delay:.3f}",
             "yes" if delay <= self.budget + 1e-9 else "NO"]
            for capacity, delay in sorted(self.worst_delay.items())
        ]
        return format_table(
            ["frame capacity (msgs)", "worst hop delay", "within budget"],
            rows,
            title=(
                f"Section 5.2: RCC sizing — {self.config.label}, required "
                f">= {self.required_messages} msgs/frame, "
                f"budget={self.budget:.2f}"
            ),
        )


def run_rcc_sizing(
    config: "NetworkConfig | None" = None,
    num_backups: int = 1,
    mux_degree: int = 3,
    undersized_messages: int = 2,
    horizon: float = 300.0,
) -> RCCSizingResult:
    """Compare compliant vs. undersized RCC frames under a failure burst."""
    config = config or NetworkConfig(rows=4, cols=4)
    qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=mux_degree)
    network, _ = load_network(config, qos)
    required = required_rcc_frame_messages(network)
    result = RCCSizingResult(config=config, required_messages=required)

    # The worst single-failure burst: fail the most loaded node.
    def burst_size(node) -> int:
        return sum(
            network.registry.channel_count_on_link(link)
            for link in network.topology.incident_links(node)
        )

    victim = max(network.topology.nodes(), key=burst_size)
    scenario = FailureScenario.of_nodes([victim])

    for capacity in (required, max(1, undersized_messages)):
        protocol = ProtocolConfig(
            rcc=RCCParams(max_messages_per_frame=capacity, max_rate=10.0)
        )
        result.budget = protocol.rcc.max_delay + protocol.rcc.min_interval
        simulation = ProtocolSimulation(network, protocol)
        simulation.inject_scenario(scenario, at=1.0)
        simulation.run(until=horizon)
        result.worst_delay[capacity] = simulation.worst_control_delay()
    return result
