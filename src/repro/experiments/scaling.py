"""Section 6's scaling claim, measured.

"The efficiency of backup multiplexing does not degrade as the network
scales up.  In fact, backup multiplexing will become more effective in
large-scale and highly-connected networks, because such networks contain
more versatile paths between two end nodes of a connection, thus lowering
the probability that primary channels overlap with one another."

The experiment measures the *multiplexing saving* — how much spare a
given degree reclaims relative to no sharing at all,
``1 − spare(mux=α) / spare(mux=0)`` — across network sizes and
connectivities, under the paper's all-pairs workload.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.core.bcp import BCPNetwork
from repro.experiments.workloads import all_pairs, establish_workload
from repro.network.generators import hypercube, mesh, torus
from repro.network.topology import Topology
from repro.util.tables import format_percent, format_table


@dataclass
class ScalingPoint:
    label: str
    nodes: int
    mean_degree: float
    spare_unshared: float
    spare_multiplexed: float
    #: Fraction of backup pairs per link whose primaries are multiplexable
    #: at the chosen degree, averaged over loaded links — the paper's
    #: actual quantity ("lowering the probability that primary channels
    #: overlap with one another").
    multiplexable_fraction: float = 0.0

    @property
    def saving(self) -> float:
        """Fraction of the unshared spare that multiplexing reclaims."""
        if self.spare_unshared == 0:
            return 0.0
        return 1.0 - self.spare_multiplexed / self.spare_unshared


@dataclass
class ScalingResult:
    mux_degree: int
    points: list[ScalingPoint] = field(default_factory=list)

    def format(self) -> str:
        """Render the scaling table."""
        rows = [
            [
                point.label,
                point.nodes,
                f"{point.mean_degree:.1f}",
                format_percent(point.spare_unshared),
                format_percent(point.spare_multiplexed),
                format_percent(point.saving),
                format_percent(point.multiplexable_fraction),
            ]
            for point in self.points
        ]
        return format_table(
            ["network", "nodes", "degree", "spare mux=0",
             f"spare mux={self.mux_degree}", "saving", "muxable pairs"],
            rows,
            title="Section 6: multiplexing efficiency vs scale and "
                  "connectivity",
        )

    def point(self, label: str) -> ScalingPoint:
        """The point with the given label; raises ``KeyError``."""
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(label)


def _multiplexable_fraction(network: BCPNetwork, mux_degree: int) -> float:
    """Average fraction of multiplexable backup pairs per loaded link."""
    policy = network.policy
    fractions = []
    for link in network.topology.links():
        entries = network.mux.link_state(link).entries()
        if len(entries) < 2:
            continue
        multiplexable = total = 0
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                total += 1
                shared = len(a.primary_components & b.primary_components)
                if policy.multiplexable_counts(
                    a.primary_count, b.primary_count, shared, mux_degree
                ):
                    multiplexable += 1
        fractions.append(multiplexable / total)
    return sum(fractions) / len(fractions) if fractions else 0.0


def _measure(factory: Callable[[], Topology], label: str,
             mux_degree: int) -> ScalingPoint:
    spares = {}
    fraction = 0.0
    sample = factory()
    for degree in (0, mux_degree):
        network = BCPNetwork(factory())
        establish_workload(
            network,
            all_pairs(network.topology),
            FaultToleranceQoS(num_backups=1, mux_degree=degree),
        )
        spares[degree] = network.spare_fraction()
        if degree == mux_degree:
            fraction = _multiplexable_fraction(network, mux_degree)
    return ScalingPoint(
        label=label,
        nodes=sample.num_nodes,
        mean_degree=sample.num_links / sample.num_nodes,
        spare_unshared=spares[0],
        spare_multiplexed=spares[mux_degree],
        multiplexable_fraction=fraction,
    )


def run_scaling(
    mux_degree: int = 5,
    torus_sizes: tuple[int, ...] = (4, 6, 8),
    include_connectivity_sweep: bool = True,
) -> ScalingResult:
    """Measure the multiplexing saving across sizes and connectivities.

    Capacities are sized so the all-pairs workload produces the paper's
    ~32% network load at every scale (for a k×k torus the required
    capacity grows like k·(k²−1): both the pair count and the mean path
    length grow with k).
    """
    result = ScalingResult(mux_degree=mux_degree)
    for size in torus_sizes:
        capacity = (size * size - 1) * size / 2.56
        result.points.append(_measure(
            lambda s=size, c=capacity: torus(s, s, c),
            f"{size}x{size} torus",
            mux_degree,
        ))
    if include_connectivity_sweep:
        # Capacities chosen for ~32% load on each topology's own workload.
        result.points.append(_measure(
            lambda: mesh(6, 6, 131.0), "6x6 mesh (degree<4)", mux_degree
        ))
        result.points.append(_measure(
            lambda: hypercube(5, 49.0), "5-cube (degree 5)", mux_degree
        ))
    return result
