"""Figure 9: average spare-bandwidth reservation vs. network load.

The paper plots, for each multiplexing degree, the spare-bandwidth
fraction as connections are established incrementally (x-axis: the
network-load that the already-established primaries produce), in three
panels: (a) single backup in the torus, (b) double backups in the torus,
(c) single backup in the mesh.

``run_figure9`` regenerates one panel: one curve per mux degree, each
point a (network-load, spare-fraction) checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import NetworkConfig, load_network
from repro.util.tables import format_percent, format_table

#: The degrees the paper plots ('mux=2'/'mux=4' dropped as near-identical
#: to 'mux=3'/'mux=5'; Section 7.1 explains why).
PAPER_DEGREES = (0, 1, 3, 5, 6)


@dataclass
class Figure9Result:
    """One panel of Figure 9."""

    config: NetworkConfig
    num_backups: int
    #: mux degree -> [(network_load, spare_fraction), ...] checkpoints.
    curves: dict[int, list[tuple[float, float]]] = field(default_factory=dict)
    #: mux degree -> True when the full workload fit (else the curve stops
    #: early; the paper's N/A condition).
    complete: dict[int, bool] = field(default_factory=dict)

    def final_spare(self, degree: int) -> "float | None":
        """Spare fraction at the last checkpoint of one curve."""
        curve = self.curves.get(degree)
        if not curve:
            return None
        return curve[-1][1]

    def format(self) -> str:
        """Render the per-degree load/spare checkpoints as a table."""
        degrees = sorted(self.curves)
        rows = []
        checkpoints = max(len(curve) for curve in self.curves.values())
        for index in range(checkpoints):
            row: list[object] = []
            for degree in degrees:
                curve = self.curves[degree]
                if index < len(curve):
                    load, spare = curve[index]
                    row.extend([format_percent(load), format_percent(spare)])
                else:
                    row.extend(["-", "-"])
            rows.append(row)
        headers = []
        for degree in degrees:
            suffix = "" if self.complete.get(degree, True) else " (N/A)"
            headers.extend([f"load mux={degree}{suffix}", f"spare mux={degree}"])
        title = (
            f"Figure 9: spare bandwidth vs network load — "
            f"{self.config.label}, {self.num_backups} backup(s)"
        )
        return format_table(headers, rows, title=title)


def run_figure9(
    config: "NetworkConfig | None" = None,
    num_backups: int = 1,
    mux_degrees: tuple[int, ...] = PAPER_DEGREES,
    checkpoints: int = 8,
) -> Figure9Result:
    """Regenerate one Figure 9 panel.

    A fresh network is loaded per mux degree (the paper's per-curve
    simulation); ``checkpoints`` controls the sampling resolution along
    the establishment sequence.
    """
    config = config or NetworkConfig()
    result = Figure9Result(config=config, num_backups=num_backups)
    nodes = config.rows * config.cols
    total_connections = nodes * (nodes - 1)
    every = max(1, total_connections // checkpoints)
    for degree in mux_degrees:
        qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=degree)
        _, report = load_network(config, qos, checkpoint_every=every)
        result.curves[degree] = report.checkpoints
        result.complete[degree] = report.essentially_complete
    return result
