"""Section 7.1/7.4: inhomogeneous traffic and topology sensitivity.

The paper reports (prose, no table): multiplexing efficiency is "relatively
insensitive to network traffic conditions, but more sensitive to network
topology — less effective in sparsely-connected networks", and under
hot-spots or mixed bandwidths "the efficiency of the brute-force scheme
degrades significantly unlike the proposed scheme".

This experiment quantifies both claims: for each workload variant
(uniform, hotspot, mixed-bandwidth) and each topology (torus, mesh, and a
sparse ring-like variant), it reports the proposed scheme's spare fraction
and the R_fast gap to brute-force under single link failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.bruteforce import uniform_spare_amount
from repro.channels.qos import FaultToleranceQoS
from repro.core.bcp import BCPNetwork
from repro.core.overlap import OverlapPolicy
from repro.experiments.workloads import (
    all_pairs,
    establish_workload,
    hotspot_pairs,
    mixed_bandwidth_traffic,
    uniform_traffic,
)
from repro.faults.enumerate import all_single_link_failures
from repro.network.generators import mesh, random_regular, torus
from repro.parallel import evaluate_scenarios
from repro.util.tables import format_percent, format_table


@dataclass
class InhomogeneousCell:
    spare: "float | None" = None
    proposed_r_fast: "float | None" = None
    bruteforce_r_fast: "float | None" = None

    @property
    def advantage(self) -> "float | None":
        if self.proposed_r_fast is None or self.bruteforce_r_fast is None:
            return None
        return self.proposed_r_fast - self.bruteforce_r_fast


@dataclass
class InhomogeneousResult:
    cells: dict[tuple[str, str], InhomogeneousCell] = field(default_factory=dict)

    def format(self) -> str:
        """Render the sensitivity table."""
        rows = [
            [
                topology,
                workload,
                format_percent(cell.spare),
                format_percent(cell.proposed_r_fast),
                format_percent(cell.bruteforce_r_fast),
                format_percent(cell.advantage, digits=2),
            ]
            for (topology, workload), cell in sorted(self.cells.items())
        ]
        return format_table(
            ["topology", "workload", "spare", "proposed R_fast",
             "brute-force R_fast", "advantage"],
            rows,
            title="Section 7.1/7.4: inhomogeneity and topology sensitivity "
                  "(single link failures)",
        )


def _topologies(rows: int, cols: int):
    nodes = rows * cols
    return {
        "torus": lambda: torus(rows, cols, 200.0),
        "mesh": lambda: mesh(rows, cols, 300.0),
        "sparse(3-reg)": lambda: random_regular(nodes, 3, 250.0, seed=0),
    }


def run_inhomogeneous(
    rows: int = 8,
    cols: int = 8,
    mux_degree: int = 5,
    num_backups: int = 1,
    hotspot_count: int = 4,
    seed: int = 0,
    workers: "int | None" = 1,
) -> InhomogeneousResult:
    """Sweep workload variants across topologies.

    ``workers`` fans the scenario evaluation out over processes (``None``
    = one per CPU); results are identical for any worker count.
    """
    result = InhomogeneousResult()
    qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=mux_degree)
    for topo_name, factory in _topologies(rows, cols).items():
        topology_sample = factory()
        hotspots = sorted(topology_sample.nodes())[:hotspot_count]
        workloads = {
            "uniform": (all_pairs(topology_sample), uniform_traffic(1.0)),
            "hotspot": (
                hotspot_pairs(topology_sample, hotspots, seed=seed),
                uniform_traffic(1.0),
            ),
            "mixed-bw": (
                all_pairs(topology_sample),
                mixed_bandwidth_traffic(seed=seed),
            ),
        }
        for workload_name, (pairs, traffic) in workloads.items():
            network = BCPNetwork(factory(), policy=OverlapPolicy())
            establish_workload(network, pairs, qos, traffic=traffic)
            cell = InhomogeneousCell(spare=network.spare_fraction())
            scenarios = all_single_link_failures(network.topology)
            cell.proposed_r_fast = evaluate_scenarios(
                network, scenarios, workers=workers
            ).r_fast
            cell.bruteforce_r_fast = evaluate_scenarios(
                network, scenarios, workers=workers,
                spare_override=uniform_spare_amount(network),
            ).r_fast
            result.cells[(topo_name, workload_name)] = cell
    return result
