"""Sections 3.1/3.3: the reliability models (Fig. 3) in practice.

Two sweeps:

* **model comparison** — R(one time unit) from the continuous-time Markov
  model of Fig. 3 against the combinatorial ``P_r`` the client interface
  uses, over a range of λ (they agree to first order; the combinatorial
  model is the λ≪1, fast-repair limit the paper argues for);
* **P_r vs configuration** — achieved ``P_r`` of live connections as a
  function of multiplexing degree and backup count on a loaded network,
  showing the fault-tolerance/overhead dial of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.markov import DConnectionMarkovModel
from repro.channels.qos import FaultToleranceQoS
from repro.core.reliability import pr_single_backup
from repro.experiments.setup import NetworkConfig, load_network
from repro.parallel import parallel_map
from repro.util.tables import format_table


@dataclass
class ReliabilityResult:
    #: λ -> (markov R(1), combinatorial P_r) for the model comparison.
    model_comparison: dict[float, tuple[float, float]] = field(
        default_factory=dict
    )
    #: (num_backups, mux_degree) -> (min P_r, mean P_r, spare fraction).
    configuration_sweep: dict[tuple[int, int], tuple[float, float, float]] = (
        field(default_factory=dict)
    )

    def format(self) -> str:
        """Render both reliability tables."""
        rows = [
            [f"{lam:g}", f"{markov:.9f}", f"{combinatorial:.9f}",
             f"{abs(markov - combinatorial):.2e}"]
            for lam, (markov, combinatorial) in sorted(
                self.model_comparison.items()
            )
        ]
        part1 = format_table(
            ["lambda", "Markov R(1)", "combinatorial P_r", "|diff|"],
            rows,
            title="Fig. 3 models: Markov vs combinatorial",
        )
        rows2 = [
            [backups, degree, f"{low:.9f}", f"{mean:.9f}", f"{spare:.2%}"]
            for (backups, degree), (low, mean, spare) in sorted(
                self.configuration_sweep.items()
            )
        ]
        part2 = format_table(
            ["backups", "mux", "min P_r", "mean P_r", "spare"],
            rows2,
            title="Achieved P_r vs backup configuration",
        )
        return part1 + "\n\n" + part2


def _configuration_cell(item: tuple) -> "tuple | None":
    """One (backups, mux) cell of the P_r sweep — its own establishment.

    Module-level so :func:`repro.parallel.parallel_map` can ship it to a
    worker process.
    """
    config, backups, degree = item
    qos = FaultToleranceQoS(num_backups=backups, mux_degree=degree)
    try:
        network, report = load_network(config, qos)
    except Exception:  # pragma: no cover - tiny topologies may refuse
        return None
    if report.established == 0:
        return None
    values = [
        network.connection_reliability(connection)
        for connection in network.connections()
    ]
    return (backups, degree), (
        min(values),
        sum(values) / len(values),
        network.spare_fraction(),
    )


def run_reliability(
    config: "NetworkConfig | None" = None,
    primary_components: int = 9,
    backup_components: int = 11,
    lambdas: tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3),
    configurations: tuple[tuple[int, int], ...] = (
        (1, 1), (1, 3), (1, 6), (2, 3), (2, 6),
    ),
    workers: "int | None" = 1,
) -> ReliabilityResult:
    """Run both reliability sweeps.

    ``workers`` parallelises the configuration sweep (one establishment
    per cell) across processes; cell results are position-independent, so
    any worker count gives the same tables.
    """
    config = config or NetworkConfig(rows=4, cols=4)
    result = ReliabilityResult()

    # Model comparison: one disjointly-routed backup, no multiplexing.
    for lam in lambdas:
        markov = DConnectionMarkovModel(
            primary_rate=primary_components * lam,
            backup_rate=backup_components * lam,
            shared_rate=0.0,
            repair_rate=0.0,  # combinatorial model resets per unit instead
        )
        combinatorial = pr_single_backup(
            primary_components, backup_components, lam
        )
        result.model_comparison[lam] = (markov.reliability(1.0), combinatorial)

    # Configuration sweep on a live network — one establishment per cell,
    # fanned out over workers.
    cells = parallel_map(
        _configuration_cell,
        [(config, backups, degree) for backups, degree in configurations],
        workers=workers,
    )
    for cell in cells:
        if cell is not None:
            key, values = cell
            result.configuration_sweep[key] = values
    return result
