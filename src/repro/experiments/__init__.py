"""Experiment harness: one module per table/figure of the paper's
evaluation (Section 7), plus the analytic experiments of Sections 3 and 5.

Every experiment exposes ``run_*`` functions returning a result dataclass
with a ``format()`` method that prints the same rows as the paper, and is
parameterised by network size so tests can exercise scaled-down versions
while the benchmarks regenerate the full 8x8 configurations.
"""

from repro.experiments.workloads import (
    WorkloadReport,
    all_pairs,
    bit_reversal_pairs,
    establish_workload,
    hotspot_pairs,
    mixed_bandwidth_traffic,
    transpose_pairs,
    uniform_traffic,
)
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.delay_bound import DelayBoundResult, run_delay_bound
from repro.experiments.rcc_sizing import RCCSizingResult, run_rcc_sizing
from repro.experiments.reliability import ReliabilityResult, run_reliability
from repro.experiments.inhomogeneous import (
    InhomogeneousResult,
    run_inhomogeneous,
)
from repro.experiments.message_loss import MessageLossResult, run_message_loss
from repro.experiments.baseline_comparison import (
    BaselineComparisonResult,
    run_baseline_comparison,
)

__all__ = [
    "all_pairs",
    "hotspot_pairs",
    "transpose_pairs",
    "bit_reversal_pairs",
    "uniform_traffic",
    "mixed_bandwidth_traffic",
    "establish_workload",
    "WorkloadReport",
    "run_figure9",
    "Figure9Result",
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Result",
    "run_table3",
    "Table3Result",
    "run_delay_bound",
    "DelayBoundResult",
    "run_rcc_sizing",
    "RCCSizingResult",
    "run_reliability",
    "ReliabilityResult",
    "run_inhomogeneous",
    "InhomogeneousResult",
    "run_message_loss",
    "MessageLossResult",
    "run_baseline_comparison",
    "BaselineComparisonResult",
]
