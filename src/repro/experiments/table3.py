"""Table 3: R_fast with brute-force multiplexing (Section 7.4).

The proposed scheme's workload and backup routing are kept; only the
spare placement changes — every link gets the *same* amount, equal to the
proposed scheme's average.  The paper's finding: near-parity on the
homogeneous torus, clear loss on the mesh (and under any inhomogeneity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.bruteforce import uniform_spare_amount
from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import (
    FAILURE_MODELS,
    NetworkConfig,
    load_network,
    standard_failure_models,
)
from repro.parallel import evaluate_scenarios
from repro.recovery.evaluator import ActivationOrder
from repro.util.tables import format_percent, format_table

PAPER_DEGREES = (1, 3, 5, 6)

#: Paper values (topology -> row -> mux degree -> fraction).
PAPER_TABLE3 = {
    "torus": {
        "Spare bandwidth": {1: 0.3025, 3: 0.225, 5: 0.16, 6: 0.095},
        "1 link failure": {1: 1.0, 3: 0.9805, 5: 0.9219, 6: 0.7631},
        "1 node failure": {1: 1.0, 3: 0.9534, 5: 0.8798, 6: 0.6887},
        "2 node failures": {1: 0.9311, 3: 0.8982, 5: 0.8223, 6: 0.6353},
    },
    "mesh": {
        "Spare bandwidth": {1: 0.3311, 3: 0.2447, 5: 0.1969, 6: 0.1722},
        "1 link failure": {1: 0.9618, 3: 0.8974, 5: 0.8318, 6: 0.7818},
        "1 node failure": {1: 0.9503, 3: 0.8719, 5: 0.7949, 6: 0.7303},
        "2 node failures": {1: 0.8678, 3: 0.7962, 5: 0.7188, 6: 0.6603},
    },
}


@dataclass
class Table3Result:
    """One panel of Table 3."""

    config: NetworkConfig
    num_backups: int
    mux_degrees: tuple[int, ...]
    #: The (uniformised) spare fraction per degree — by construction equal
    #: to the proposed scheme's average, so the paper reuses Table 1's row.
    spare: dict[int, "float | None"] = field(default_factory=dict)
    uniform_per_link: dict[int, float] = field(default_factory=dict)
    r_fast: dict[str, dict[int, "float | None"]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the panel in the paper's row layout."""
        headers = ["row"] + [f"mux={degree}" for degree in self.mux_degrees]
        rows: list[list[object]] = [
            ["Spare bandwidth"]
            + [format_percent(self.spare.get(d)) for d in self.mux_degrees]
        ]
        for model, values in self.r_fast.items():
            rows.append(
                [model]
                + [format_percent(values.get(d)) for d in self.mux_degrees]
            )
        title = (
            f"Table 3: R_fast, brute-force multiplexing — {self.config.label}"
        )
        return format_table(headers, rows, title=title)

    def paper_reference(self) -> "dict | None":
        """The paper's values for this panel at 8x8 scale, if any."""
        return PAPER_TABLE3.get(self.config.topology)


def run_table3(
    config: "NetworkConfig | None" = None,
    num_backups: int = 1,
    mux_degrees: tuple[int, ...] = PAPER_DEGREES,
    double_node_samples: int = 200,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
) -> Table3Result:
    """Regenerate one Table 3 panel.

    ``workers`` fans the scenario evaluation out over processes (``None``
    = one per CPU); results are identical for any worker count.
    """
    config = config or NetworkConfig()
    result = Table3Result(
        config=config, num_backups=num_backups, mux_degrees=tuple(mux_degrees)
    )
    for model in FAILURE_MODELS:
        result.r_fast[model] = {}
    for degree in mux_degrees:
        qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=degree)
        network, report = load_network(config, qos)
        if not report.essentially_complete:
            result.spare[degree] = None
            for model in FAILURE_MODELS:
                result.r_fast[model][degree] = None
            continue
        result.spare[degree] = network.spare_fraction()
        uniform = uniform_spare_amount(network)
        result.uniform_per_link[degree] = uniform
        models = standard_failure_models(
            network.topology, double_node_samples, seed
        )
        for model, scenarios in models.items():
            stats = evaluate_scenarios(
                network, scenarios, workers=workers, order=order,
                spare_override=uniform, seed=seed,
            )
            result.r_fast[model][degree] = stats.r_fast
    return result
