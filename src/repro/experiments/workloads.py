"""Connection workload generators and the establishment driver.

The paper's workload (Section 7): "A total of 4032 connections were
established incrementally, so that there may exist a D-connection between
each node pair, i.e. 64·63 = 4032."  :func:`all_pairs` reproduces it;
:func:`hotspot_pairs` and :func:`mixed_bandwidth_traffic` implement the
"inhomogeneous traffic" variations of Section 7.1 (hot-spots, mixed
bandwidth requirements).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.core.bcp import BCPNetwork
from repro.core.establishment import EstablishmentError
from repro.network.components import NodeId
from repro.network.topology import Topology
from repro.util.rng import make_rng

NodePair = "tuple[NodeId, NodeId]"


def all_pairs(topology: Topology) -> list[NodePair]:
    """Every ordered node pair, ascending — the paper's workload order."""
    nodes = sorted(topology.nodes())
    return [(src, dst) for src in nodes for dst in nodes if src != dst]


def hotspot_pairs(
    topology: Topology,
    hotspots: Sequence[NodeId],
    hotspot_weight: int = 4,
    count: "int | None" = None,
    seed: "int | None" = 0,
) -> list[NodePair]:
    """A workload skewed toward a few hotspot nodes.

    Each connection endpoint is drawn from a distribution where every
    hotspot counts ``hotspot_weight`` times.  ``count`` defaults to the
    all-pairs size so overhead comparisons stay like-for-like.
    """
    if hotspot_weight < 1:
        raise ValueError(f"hotspot_weight must be >= 1, got {hotspot_weight}")
    nodes = sorted(topology.nodes())
    for hotspot in hotspots:
        if not topology.has_node(hotspot):
            raise ValueError(f"hotspot {hotspot!r} not in topology")
    weighted = list(nodes)
    for hotspot in hotspots:
        weighted.extend([hotspot] * (hotspot_weight - 1))
    rng = make_rng(seed)
    if count is None:
        count = len(nodes) * (len(nodes) - 1)
    pairs: list[NodePair] = []
    while len(pairs) < count:
        src = rng.choice(weighted)
        dst = rng.choice(weighted)
        if src != dst:
            pairs.append((src, dst))
    return pairs


def transpose_pairs(topology: Topology, rows: int, cols: int) -> list[NodePair]:
    """The matrix-transpose permutation: node (r, c) talks to (c, r).

    A classic adversarial pattern for grid/torus networks — traffic
    concentrates on the diagonal, stressing exactly the links where
    backup multiplexing has the least routing diversity.
    """
    if rows != cols:
        raise ValueError(
            f"transpose needs a square grid, got {rows}x{cols}"
        )
    pairs: list[NodePair] = []
    for row in range(rows):
        for col in range(cols):
            src = row * cols + col
            dst = col * cols + row
            if src != dst:
                if not topology.has_node(src) or not topology.has_node(dst):
                    raise ValueError(f"grid node {src} not in topology")
                pairs.append((src, dst))
    return pairs


def bit_reversal_pairs(topology: Topology) -> list[NodePair]:
    """The bit-reversal permutation over power-of-two node counts.

    Another standard stress pattern (long, structured paths); requires
    the topology's node count to be a power of two with integer labels.
    """
    nodes = sorted(topology.nodes())
    count = len(nodes)
    if count & (count - 1) != 0:
        raise ValueError(f"bit reversal needs 2^k nodes, got {count}")
    bits = count.bit_length() - 1
    pairs: list[NodePair] = []
    for src in nodes:
        dst = int(format(src, f"0{bits}b")[::-1], 2)
        if src != dst:
            pairs.append((src, dst))
    return pairs


def uniform_traffic(bandwidth: float = 1.0) -> Callable[[int], TrafficSpec]:
    """The paper's traffic model: every channel needs the same bandwidth."""
    spec = TrafficSpec(bandwidth=bandwidth)
    return lambda index: spec


def mixed_bandwidth_traffic(
    bandwidths: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    seed: "int | None" = 0,
) -> Callable[[int], TrafficSpec]:
    """Mixed bandwidth requirements (Section 7.1's inhomogeneous variant):
    each connection draws its bandwidth from ``bandwidths``."""
    rng = make_rng(seed)
    choices = [TrafficSpec(bandwidth=b) for b in bandwidths]
    return lambda index: rng.choice(choices)


@dataclass
class WorkloadReport:
    """Outcome of driving a workload into a network."""

    requested: int = 0
    established: int = 0
    rejected: int = 0
    #: (network_load, spare_fraction) samples taken along the way.
    checkpoints: list[tuple[float, float]] = field(default_factory=list)
    #: First establishment error encountered, if any (the paper's "N/A"
    #: condition: capacity exhausted before all connections fit).
    first_error: "str | None" = None

    #: Rejection fraction above which a configuration counts as infeasible
    #: (the paper's N/A: "the total bandwidth requirement had exceeded the
    #: network capacity before establishing all connections").  A sub-1%
    #: residual — a couple of connections pinched by saturated central
    #: links — is reported normally, with the count noted.
    NA_THRESHOLD = 0.01

    @property
    def complete(self) -> bool:
        """Whether every requested connection was established."""
        return self.rejected == 0

    @property
    def essentially_complete(self) -> bool:
        """Whether the workload fit up to the N/A threshold."""
        if self.requested == 0:
            return True
        return self.rejected / self.requested <= self.NA_THRESHOLD


def establish_workload(
    network: BCPNetwork,
    pairs: Sequence[NodePair],
    ft_qos: "FaultToleranceQoS | Callable[[int], FaultToleranceQoS]",
    traffic: "Callable[[int], TrafficSpec] | None" = None,
    delay_qos: DelayQoS | None = None,
    checkpoint_every: "int | None" = None,
) -> WorkloadReport:
    """Establish ``pairs`` incrementally, tolerating rejections.

    ``ft_qos`` is either one spec for all connections or a function of the
    connection index (per-connection fault-tolerance control, Section 7.3).
    Load/spare checkpoints every ``checkpoint_every`` connections feed the
    Figure 9 curves.
    """
    traffic = traffic or uniform_traffic()
    delay_qos = delay_qos or DelayQoS()
    report = WorkloadReport(requested=len(pairs))
    for index, (src, dst) in enumerate(pairs):
        qos = ft_qos(index) if callable(ft_qos) else ft_qos
        try:
            network.establish(src, dst, traffic(index), delay_qos, qos)
        except EstablishmentError as error:
            report.rejected += 1
            if report.first_error is None:
                report.first_error = str(error)
        else:
            report.established += 1
        if checkpoint_every and (index + 1) % checkpoint_every == 0:
            report.checkpoints.append(
                (network.network_load(), network.spare_fraction())
            )
    report.checkpoints.append((network.network_load(), network.spare_fraction()))
    return report
