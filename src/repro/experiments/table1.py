"""Table 1: R_fast with uniform multiplexing degrees.

For each mux degree the full all-pairs workload is established, then the
three failure models are replayed and the fast-recovery rate measured.
Panels: (a) single backup, 8x8 torus; (b) double backups, 8x8 torus;
(c) single backup, 8x8 mesh.  A degree whose workload does not fully fit
reports N/A (the paper's Table 1(b) mux=1 case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import (
    FAILURE_MODELS,
    NetworkConfig,
    load_network,
    standard_failure_models,
)
from repro.parallel import evaluate_scenarios
from repro.recovery.evaluator import ActivationOrder
from repro.util.tables import format_percent, format_table

PAPER_DEGREES = (1, 3, 5, 6)

#: The paper's reported values, for side-by-side comparison in reports
#: (panel -> row -> mux degree -> value as a fraction).
PAPER_TABLE1 = {
    ("torus", 1): {
        "Spare bandwidth": {1: 0.3025, 3: 0.225, 5: 0.16, 6: 0.095},
        "1 link failure": {1: 1.0, 3: 1.0, 5: 0.9727, 6: 0.7411},
        "1 node failure": {1: 1.0, 3: 1.0, 5: 0.8999, 6: 0.6472},
        "2 node failures": {1: 0.9311, 3: 0.9298, 5: 0.8405, 6: 0.5836},
    },
    ("torus", 2): {
        "Spare bandwidth": {1: None, 3: 0.3025, 5: 0.2125, 6: 0.1288},
        "1 link failure": {1: None, 3: 1.0, 5: 1.0, 6: 1.0},
        "1 node failure": {1: None, 3: 1.0, 5: 1.0, 6: 0.9768},
        "2 node failures": {1: None, 3: 1.0, 5: 0.9982, 6: 0.9328},
    },
    ("mesh", 1): {
        "Spare bandwidth": {1: 0.3311, 3: 0.2447, 5: 0.1969, 6: 0.1722},
        "1 link failure": {1: 1.0, 3: 1.0, 5: 0.9763, 6: 0.9039},
        "1 node failure": {1: 1.0, 3: 0.9994, 5: 0.9174, 6: 0.8408},
        "2 node failures": {1: 0.8922, 3: 0.8883, 5: 0.8182, 6: 0.7532},
    },
}


@dataclass
class Table1Result:
    """One panel of Table 1."""

    config: NetworkConfig
    num_backups: int
    mux_degrees: tuple[int, ...]
    #: mux degree -> spare fraction (None when the workload didn't fit).
    spare: dict[int, "float | None"] = field(default_factory=dict)
    #: failure model -> mux degree -> R_fast.
    r_fast: dict[str, dict[int, "float | None"]] = field(default_factory=dict)
    network_load: dict[int, float] = field(default_factory=dict)
    #: mux degree -> connections rejected at establishment (sub-threshold
    #: residuals; above the threshold the degree reports N/A instead).
    rejected: dict[int, int] = field(default_factory=dict)

    def format(self) -> str:
        """Render the panel in the paper's row layout."""
        headers = ["row"] + [f"mux={degree}" for degree in self.mux_degrees]
        rows: list[list[object]] = [
            ["Spare bandwidth"]
            + [format_percent(self.spare.get(d)) for d in self.mux_degrees]
        ]
        for model in self.r_fast:
            rows.append(
                [model]
                + [format_percent(self.r_fast[model].get(d))
                   for d in self.mux_degrees]
            )
        title = (
            f"Table 1: R_fast, uniform mux — {self.config.label}, "
            f"{self.num_backups} backup(s)"
        )
        text = format_table(headers, rows, title=title)
        residuals = {
            degree: count
            for degree, count in self.rejected.items()
            if count and self.spare.get(degree) is not None
        }
        if residuals:
            text += (
                "\n(connections rejected at establishment: "
                + ", ".join(f"mux={d}: {c}" for d, c in residuals.items())
                + ")"
            )
        return text

    def paper_reference(self) -> "dict | None":
        """The paper's values for this panel at the 8x8 scale, if any."""
        return PAPER_TABLE1.get((self.config.topology, self.num_backups))


def run_table1(
    config: "NetworkConfig | None" = None,
    num_backups: int = 1,
    mux_degrees: tuple[int, ...] = PAPER_DEGREES,
    double_node_samples: int = 200,
    order: ActivationOrder = ActivationOrder.PRIORITY,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
) -> Table1Result:
    """Regenerate one Table 1 panel.

    ``workers`` fans the scenario evaluation out over processes (``None``
    = one per CPU); results are identical for any worker count.
    """
    config = config or NetworkConfig()
    result = Table1Result(
        config=config, num_backups=num_backups, mux_degrees=tuple(mux_degrees)
    )
    for model in FAILURE_MODELS:
        result.r_fast[model] = {}
    for degree in mux_degrees:
        qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=degree)
        network, report = load_network(config, qos)
        result.rejected[degree] = report.rejected
        if not report.essentially_complete:
            # The paper's N/A: capacity exceeded before all connections fit.
            result.spare[degree] = None
            for model in FAILURE_MODELS:
                result.r_fast[model][degree] = None
            continue
        result.spare[degree] = network.spare_fraction()
        result.network_load[degree] = network.network_load()
        models = standard_failure_models(
            network.topology, double_node_samples, seed
        )
        for model, scenarios in models.items():
            stats = evaluate_scenarios(
                network, scenarios, workers=workers, order=order, seed=seed
            )
            result.r_fast[model][degree] = stats.r_fast
    return result
