"""Shared experiment setup: the paper's network configurations and
failure models (Section 7).

The torus gets 200 Mbps simplex links and the mesh 300 Mbps so their total
capacities are comparable; channels need 1 Mbps per link; the delay QoS is
shortest+2 hops.  Experiments default to the paper's 8x8 scale but accept
smaller dimensions for fast tests.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.channels.qos import FaultToleranceQoS
from repro.core.bcp import BCPNetwork
from repro.core.overlap import OverlapPolicy
from repro.experiments.workloads import (
    WorkloadReport,
    all_pairs,
    establish_workload,
    uniform_traffic,
)
from repro.faults.enumerate import (
    all_single_link_failures,
    all_single_node_failures,
    sample_double_node_failures,
)
from repro.faults.models import FailureScenario
from repro.network.generators import mesh, torus
from repro.network.topology import Topology

#: Failure-model labels exactly as the paper's table rows.
FAILURE_MODELS = ("1 link failure", "1 node failure", "2 node failures")


@dataclass(frozen=True)
class NetworkConfig:
    """One evaluated network configuration."""

    topology: str = "torus"  # "torus" | "mesh"
    rows: int = 8
    cols: int = 8
    capacity: "float | None" = None  # paper defaults per topology

    def build(self) -> Topology:
        """Instantiate the configured topology."""
        if self.topology == "torus":
            return torus(self.rows, self.cols, self.capacity or 200.0)
        if self.topology == "mesh":
            return mesh(self.rows, self.cols, self.capacity or 300.0)
        raise ValueError(f"unknown topology {self.topology!r}")

    @property
    def label(self) -> str:
        return f"{self.rows}x{self.cols} {self.topology}"


def load_network(
    config: NetworkConfig,
    ft_qos: "FaultToleranceQoS | Callable[[int], FaultToleranceQoS]",
    policy: "OverlapPolicy | None" = None,
    checkpoint_every: "int | None" = None,
) -> tuple[BCPNetwork, WorkloadReport]:
    """Build the configured topology and drive the all-pairs workload."""
    network = BCPNetwork(config.build(), policy=policy)
    report = establish_workload(
        network,
        all_pairs(network.topology),
        ft_qos,
        traffic=uniform_traffic(1.0),
        checkpoint_every=checkpoint_every,
    )
    return network, report


def standard_failure_models(
    topology: Topology,
    double_node_samples: int = 200,
    seed: "int | None" = 0,
) -> dict[str, list[FailureScenario]]:
    """The paper's three failure models (Section 7.2): exhaustive single
    link and single node, sampled double node."""
    return {
        "1 link failure": all_single_link_failures(topology),
        "1 node failure": all_single_node_failures(topology),
        "2 node failures": sample_double_node_failures(
            topology, double_node_samples, seed
        ),
    }
