"""Section 8 quantified: BCP against the two classical alternatives.

The paper positions BCP between two families (Section 8):

* **reactive re-establishment** ([BAN93]): no standing overhead, but "it
  does not give any guarantee on failure recovery" and recovery costs a
  full channel-establishment round trip;
* **pre-planned local detours** ([ZHE92] and the telecom self-healing
  line): guaranteed and fast, but "requires reservation of substantial
  amounts of extra resources" and stretches paths after recovery.

This experiment puts numbers on the triangle for one workload: spare
overhead, single-link-failure coverage, the latency *class* of recovery
(none / activation / re-establishment), and the post-recovery path
stretch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.localdetour import plan_local_detours
from repro.baselines.reactive import ReactiveOutcome, evaluate_reactive
from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import NetworkConfig, load_network
from repro.faults.enumerate import all_single_link_failures
from repro.protocol.config import ProtocolConfig
from repro.protocol.runtime import simulate_scenario
from repro.protocol.signaling import establishment_latency
from repro.recovery.evaluator import RecoveryEvaluator
from repro.util.tables import format_percent, format_table


@dataclass
class SchemeSummary:
    """One restoration scheme's corner of the trade-off triangle."""

    name: str
    spare_fraction: float
    coverage_single_link: "float | None"
    #: "none" (forward masking), "activation" (one report + activation),
    #: "re-establishment" (full signalling round with admission).
    latency_class: str
    #: Mean extra hops of the post-recovery path vs the original primary.
    mean_stretch: "float | None" = None
    #: Mean service-disruption time, in RCC D_max units (measured for BCP
    #: via the protocol runtime; modelled for reactive via the Section 3.4
    #: signalling round trip; ~0 for local patching).
    mean_disruption: "float | None" = None


@dataclass
class BaselineComparisonResult:
    config: NetworkConfig
    schemes: list[SchemeSummary] = field(default_factory=list)

    def format(self) -> str:
        """Render the trade-off table."""
        rows = [
            [
                scheme.name,
                format_percent(scheme.spare_fraction),
                format_percent(scheme.coverage_single_link),
                scheme.latency_class,
                "-" if scheme.mean_disruption is None
                else f"{scheme.mean_disruption:.1f}",
                "-" if scheme.mean_stretch is None
                else f"{scheme.mean_stretch:+.2f}",
            ]
            for scheme in self.schemes
        ]
        return format_table(
            ["scheme", "spare", "coverage (1 link)", "recovery latency",
             "mean disruption", "path stretch"],
            rows,
            title=(
                f"Section 8: restoration-scheme trade-offs — "
                f"{self.config.label}"
            ),
        )

    def scheme(self, name: str) -> SchemeSummary:
        """The summary for one scheme by name; raises ``KeyError``."""
        for scheme in self.schemes:
            if scheme.name == name:
                return scheme
        raise KeyError(name)


def run_baseline_comparison(
    config: "NetworkConfig | None" = None,
    bcp_mux_degree: int = 3,
    reactive_samples: "int | None" = None,
    disruption_samples: int = 8,
    seed: "int | None" = 0,
) -> BaselineComparisonResult:
    """Compare BCP (single backup), reactive re-establishment, and
    pre-planned local detours on the all-pairs workload."""
    config = config or NetworkConfig(rows=6, cols=6)
    result = BaselineComparisonResult(config=config)

    # --- BCP -----------------------------------------------------------
    qos = FaultToleranceQoS(num_backups=1, mux_degree=bcp_mux_degree)
    network, _ = load_network(config, qos)
    scenarios = all_single_link_failures(network.topology)
    stats = RecoveryEvaluator(network, seed=seed).evaluate_many(scenarios)
    # Stretch of the activated backup vs the failed primary.
    stretches = []
    evaluator = RecoveryEvaluator(network, seed=seed)
    for scenario in scenarios:
        outcome = evaluator.evaluate(scenario)
        for connection_id, serial in outcome.activated_serial.items():
            connection = network.connection(connection_id)
            backup = next(
                b for b in connection.backups if b.serial == serial
            )
            stretches.append(backup.path.hops - connection.primary.path.hops)
    # Measured service disruptions via the protocol runtime.
    disruptions: list[float] = []
    stride = max(1, len(scenarios) // disruption_samples)
    for scenario in scenarios[::stride][:disruption_samples]:
        metrics = simulate_scenario(network, scenario, ProtocolConfig())
        disruptions.extend(metrics.service_disruptions().values())
    result.schemes.append(SchemeSummary(
        name=f"BCP (1 backup, mux={bcp_mux_degree})",
        spare_fraction=network.spare_fraction(),
        coverage_single_link=stats.r_fast,
        latency_class="activation",
        mean_stretch=(sum(stretches) / len(stretches)) if stretches else None,
        mean_disruption=(
            sum(disruptions) / len(disruptions) if disruptions else None
        ),
    ))

    # --- reactive ([BAN93]) ---------------------------------------------
    bare_qos = FaultToleranceQoS(num_backups=0, mux_degree=0)
    bare_network, _ = load_network(config, bare_qos)
    sampled = scenarios if reactive_samples is None else (
        scenarios[:reactive_samples]
    )
    rerouted = failed = 0
    reactive_stretches = []
    reactive_latencies = []
    for scenario in sampled:
        reactive = evaluate_reactive(bare_network, scenario, seed=seed)
        for connection_id, outcome in reactive.outcomes.items():
            if outcome is ReactiveOutcome.EXCLUDED:
                continue
            failed += 1
            if outcome is ReactiveOutcome.REROUTED:
                rerouted += 1
                connection = bare_network.connection(connection_id)
                new_hops = reactive.new_hops[connection_id]
                reactive_stretches.append(
                    new_hops - connection.primary.path.hops
                )
                # Failure report back to the source, then the Section 3.4
                # two-pass establishment over the replacement path.
                reactive_latencies.append(
                    (connection.primary.path.hops - 1) * 1.0
                    + establishment_latency(new_hops)
                )
    result.schemes.append(SchemeSummary(
        name="reactive re-establishment",
        spare_fraction=bare_network.spare_fraction(),
        coverage_single_link=(rerouted / failed) if failed else None,
        latency_class="re-establishment",
        mean_stretch=(
            sum(reactive_stretches) / len(reactive_stretches)
            if reactive_stretches else None
        ),
        mean_disruption=(
            sum(reactive_latencies) / len(reactive_latencies)
            if reactive_latencies else None
        ),
    ))

    # --- local detours ([ZHE92]) -----------------------------------------
    plan = plan_local_detours(bare_network)
    stretch_values = [
        plan.stretch(link) for link in plan.detours
    ]
    result.schemes.append(SchemeSummary(
        name="pre-planned local detours",
        spare_fraction=plan.spare_fraction,
        coverage_single_link=plan.recovery_ratio_single_link(bare_network),
        latency_class="none (local patch)",
        mean_stretch=(
            sum(stretch_values) / len(stretch_values)
            if stretch_values else None
        ),
        mean_disruption=0.0,
    ))
    return result
