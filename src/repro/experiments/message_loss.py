"""Figure 8: message loss during failure recovery.

The paper's Fig. 8 illustrates which data messages a failure costs: those
in flight on the failed segment and those the source emits before it
learns of the failure; service resumes with the activation message.  This
experiment quantifies it: a steady message stream runs over a connection,
one primary link fails, and the lost-message count is compared with the
prediction

    expected_losses ≈ rate · (service_disruption + in_flight_window)

where the in-flight window covers messages already launched toward the
failed component.  The loss count must also grow with the failure's
distance from the source (reports travel further, so more messages are
emitted into the void).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.datapath.stream import DataStream
from repro.experiments.setup import NetworkConfig, load_network
from repro.faults.models import FailureScenario
from repro.parallel import parallel_map
from repro.protocol.config import ProtocolConfig
from repro.protocol.runtime import ProtocolSimulation
from repro.util.tables import format_table


@dataclass
class LossMeasurement:
    connection_id: int
    failed_link_index: int
    sent: int
    delivered: int
    lost: int
    service_disruption: "float | None"
    loss_window: "tuple[float, float] | None"


@dataclass
class MessageLossResult:
    config: NetworkConfig
    message_rate: float
    measurements: list[LossMeasurement] = field(default_factory=list)

    def format(self) -> str:
        """Render the per-injection loss table."""
        rows = [
            [
                m.connection_id,
                m.failed_link_index,
                m.sent,
                m.delivered,
                m.lost,
                "-" if m.service_disruption is None
                else f"{m.service_disruption:.1f}",
            ]
            for m in self.measurements
        ]
        return format_table(
            ["conn", "failed link #", "sent", "delivered", "lost",
             "disruption"],
            rows,
            title=(
                f"Figure 8: message loss during recovery — "
                f"{self.config.label}, rate={self.message_rate:g}"
            ),
        )


def _measure_loss(item: tuple) -> LossMeasurement:
    """One failure injection with a live data stream — one simulation.

    Module-level so :func:`repro.parallel.parallel_map` can ship it to a
    worker process.
    """
    (network, connection_id, victim, index,
     message_rate, failure_time, horizon) = item
    simulation = ProtocolSimulation(network, ProtocolConfig())
    stream = DataStream(simulation, connection_id, message_rate=message_rate)
    stream.start(at=0.0, until=horizon - 50.0)
    simulation.inject_scenario(
        FailureScenario.of_links([victim]), at=failure_time
    )
    simulation.run(until=horizon)
    record = simulation.metrics.recoveries.get(connection_id)
    return LossMeasurement(
        connection_id=connection_id,
        failed_link_index=index,
        sent=stream.report.sent,
        delivered=stream.report.delivered,
        lost=stream.report.lost,
        service_disruption=record.service_disruption if record else None,
        loss_window=stream.report.loss_window,
    )


def run_message_loss(
    config: "NetworkConfig | None" = None,
    message_rate: float = 2.0,
    sample_connections: int = 4,
    failure_time: float = 50.0,
    horizon: float = 400.0,
    workers: "int | None" = 1,
) -> MessageLossResult:
    """Measure per-message loss around single link failures.

    ``workers`` parallelises the independent failure injections (one
    simulation each) across processes; measurement order is preserved,
    so any worker count gives the same table.
    """
    config = config or NetworkConfig(rows=4, cols=4)
    qos = FaultToleranceQoS(num_backups=1, mux_degree=1)
    network, _ = load_network(config, qos)
    result = MessageLossResult(config=config, message_rate=message_rate)

    connections = [
        connection for connection in network.connections()
        if connection.primary.path.hops >= 3
    ]
    stride = max(1, len(connections) // sample_connections)
    items = [
        (network, connection.connection_id,
         connection.primary.path.links[index], index,
         message_rate, failure_time, horizon)
        for connection in connections[::stride][:sample_connections]
        for index in range(connection.primary.path.hops)
    ]
    result.measurements.extend(
        parallel_map(_measure_loss, items, workers=workers)
    )
    return result
