"""Ablations of the reproduction's design choices.

DESIGN.md documents the modelling decisions the paper leaves open; this
experiment measures how much each one matters, at one mux degree, under
the standard single-failure models:

* **activation order** — priority (the §4.3 default) vs establishment
  order vs random: how much of the guarantee structure comes from
  priority-ordered spare draws;
* **endpoint counting** — whether a primary's endpoints count in
  ``sc`` (the paper's literal formula) or not;
* **exact S comparison** — exact probability vs the integer ``sc < α``
  shortcut (differs only at the λ-boundary);
* **free-capacity fallback** — letting activations spill into unreserved
  bandwidth (not the paper's model; shows how much headroom the 33%-load
  setting hides).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channels.qos import FaultToleranceQoS
from repro.core.overlap import OverlapPolicy
from repro.experiments.setup import (
    NetworkConfig,
    load_network,
    standard_failure_models,
)
from repro.parallel import evaluate_scenarios
from repro.recovery.evaluator import ActivationOrder
from repro.util.tables import format_percent, format_table


@dataclass
class AblationRow:
    name: str
    spare: float
    r_fast_link: "float | None"
    r_fast_node: "float | None"


@dataclass
class AblationResult:
    config: NetworkConfig
    mux_degree: int
    rows: list[AblationRow] = field(default_factory=list)

    def row(self, name: str) -> AblationRow:
        """The row with the given variant name; raises ``KeyError``."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        """Render the ablation table."""
        table = [
            [row.name, format_percent(row.spare),
             format_percent(row.r_fast_link), format_percent(row.r_fast_node)]
            for row in self.rows
        ]
        return format_table(
            ["variant", "spare", "R_fast 1-link", "R_fast 1-node"],
            table,
            title=(
                f"Design-choice ablations — {self.config.label}, "
                f"mux={self.mux_degree}"
            ),
        )


def run_ablations(
    config: "NetworkConfig | None" = None,
    mux_degree: int = 5,
    double_node_samples: int = 0,
    seed: "int | None" = 0,
    workers: "int | None" = 1,
) -> AblationResult:
    """Measure each design-choice variant's spare and R_fast.

    ``workers`` fans the scenario evaluation out over processes (``None``
    = one per CPU); results are identical for any worker count.
    """
    config = config or NetworkConfig()
    result = AblationResult(config=config, mux_degree=mux_degree)
    qos = FaultToleranceQoS(num_backups=1, mux_degree=mux_degree)

    def evaluate(network, **evaluator_kwargs) -> tuple:
        models = standard_failure_models(network.topology,
                                         double_node_samples, seed)
        link = evaluate_scenarios(
            network, models["1 link failure"],
            workers=workers, seed=seed, **evaluator_kwargs,
        ).r_fast
        node = evaluate_scenarios(
            network, models["1 node failure"],
            workers=workers, seed=seed, **evaluator_kwargs,
        ).r_fast
        return link, node

    # Baseline: paper-literal policy, priority activation.
    baseline_network, _ = load_network(config, qos)
    spare = baseline_network.spare_fraction()
    for name, evaluator_kwargs in (
        ("baseline (priority order)", {"order": ActivationOrder.PRIORITY}),
        ("establishment order", {"order": ActivationOrder.CONNECTION_ID}),
        ("random order", {"order": ActivationOrder.RANDOM}),
        ("free-capacity fallback", {"free_capacity_fallback": True}),
    ):
        link, node = evaluate(baseline_network, **evaluator_kwargs)
        result.rows.append(AblationRow(name, spare, link, node))

    # Policy variants need their own establishment.
    for name, policy in (
        ("exact S comparison", OverlapPolicy(exact=True)),
        ("endpoints not counted", OverlapPolicy(count_endpoints=False)),
    ):
        network, _ = load_network(config, qos, policy=policy)
        link, node = evaluate(network)
        result.rows.append(
            AblationRow(name, network.spare_fraction(), link, node)
        )
    return result
