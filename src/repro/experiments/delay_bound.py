"""Section 5.3: measured recovery delay vs. the analytic Γ bound.

For a sample of connections, every component of the primary path is failed
in turn (one scenario per component), the protocol runtime measures the
service-disruption time, and each measurement is compared against
``Γ ≤ (K-1)·D_max + 2(b-1)(K-1)·D_max``.  The experiment also reproduces
the qualitative claim that failures close to the source recover faster
(Section 5.3: "if the failed component is located close to the source
node, the recovery delay will be very short").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.delay import connection_delay_bound
from repro.channels.qos import FaultToleranceQoS
from repro.experiments.setup import NetworkConfig, load_network
from repro.faults.models import FailureScenario
from repro.parallel import parallel_map
from repro.protocol.config import ProtocolConfig
from repro.protocol.runtime import simulate_scenario
from repro.util.tables import format_table


@dataclass
class DelayMeasurement:
    """One failure injection on one connection."""

    connection_id: int
    hops: int
    failed_link_index: int
    measured: "float | None"
    bound: float

    @property
    def within_bound(self) -> "bool | None":
        if self.measured is None:
            return None
        return self.measured <= self.bound + 1e-9


@dataclass
class DelayBoundResult:
    """All measurements plus the aggregate verdict."""

    config: NetworkConfig
    d_max: float
    measurements: list[DelayMeasurement] = field(default_factory=list)

    @property
    def violations(self) -> list[DelayMeasurement]:
        return [m for m in self.measurements if m.within_bound is False]

    @property
    def max_measured(self) -> "float | None":
        values = [m.measured for m in self.measurements if m.measured is not None]
        return max(values) if values else None

    def format(self) -> str:
        """Render the measurement table."""
        rows = [
            [
                m.connection_id,
                m.hops,
                m.failed_link_index,
                "-" if m.measured is None else f"{m.measured:.2f}",
                f"{m.bound:.2f}",
                {True: "yes", False: "NO", None: "-"}[m.within_bound],
            ]
            for m in self.measurements
        ]
        return format_table(
            ["conn", "K (hops)", "failed link #", "measured Γ", "bound",
             "within"],
            rows,
            title=(
                f"Section 5.3: recovery delay vs bound — {self.config.label}, "
                f"D_max={self.d_max}"
            ),
        )


def _measure_delay(item: tuple) -> DelayMeasurement:
    """One failure injection against one connection — one simulation.

    Module-level so :func:`repro.parallel.parallel_map` can ship it to a
    worker process.
    """
    network, connection_id, hops, bound, index, link, protocol, horizon = item
    metrics = simulate_scenario(
        network,
        FailureScenario.of_links([link]),
        protocol,
        failure_time=1.0,
        horizon=horizon,
    )
    record = metrics.recoveries.get(connection_id)
    return DelayMeasurement(
        connection_id=connection_id,
        hops=hops,
        failed_link_index=index,
        measured=record.service_disruption if record else None,
        bound=bound,
    )


def run_delay_bound(
    config: "NetworkConfig | None" = None,
    num_backups: int = 2,
    mux_degree: int = 1,
    sample_connections: int = 6,
    d_max: float = 1.0,
    horizon: float = 2000.0,
    workers: "int | None" = 1,
) -> DelayBoundResult:
    """Measure service disruptions against the Γ bound.

    ``sample_connections`` distinct connections are picked evenly from the
    workload; every link of each one's primary path is failed in turn.
    ``workers`` parallelises the independent injections (one simulation
    each) across processes; measurement order is preserved, so any worker
    count gives the same table.
    """
    config = config or NetworkConfig(rows=4, cols=4)
    qos = FaultToleranceQoS(num_backups=num_backups, mux_degree=mux_degree)
    network, _ = load_network(config, qos)
    protocol = ProtocolConfig()
    result = DelayBoundResult(config=config, d_max=protocol.rcc.max_delay)

    connections = network.connections()
    stride = max(1, len(connections) // sample_connections)
    sampled = connections[::stride][:sample_connections]
    items = [
        (network, connection.connection_id,
         max(c.path.hops for c in connection.channels),
         connection_delay_bound(connection, protocol.rcc.max_delay),
         index, link, protocol, horizon)
        for connection in sampled
        for index, link in enumerate(connection.primary.path.links)
    ]
    result.measurements.extend(
        parallel_map(_measure_delay, items, workers=workers)
    )
    return result
