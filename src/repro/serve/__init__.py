"""Always-on admission service: the library as a long-running server.

The batch CLI re-admits the world on every invocation; :mod:`repro.serve`
keeps one :class:`~repro.core.bcp.BCPNetwork` — its compiled flat views,
route caches, mux-kernel arena, and reservation ledger — warm across
requests and exposes establish/teardown/audit/recovery-query operations
over a line-delimited JSON protocol (:mod:`repro.serve.protocol`) on a
Unix or TCP socket.

* :mod:`repro.serve.server` — the single-threaded
  :class:`~repro.serve.server.AdmissionServer`; recovery queries fan out
  over :func:`repro.parallel.evaluate_scenarios` worker processes, and
  p50/p99 admission latency and recovery delay are tracked as
  ``serve.*`` histograms for :mod:`repro.obs` SLO gating.
* :mod:`repro.serve.client` — :class:`~repro.serve.client.ServeClient`
  (the RPC stream) and :class:`~repro.serve.client.RemoteNetwork`, a
  drop-in network for :class:`~repro.workload.churn.ChurnEngine`, which
  turns the existing churn engine into a remote load generator.
* :mod:`repro.serve.state` — the versioned snapshot codec
  (``repro.snapshot/1``): a restarted server restores the full ledger /
  registry / mux state byte-identically without re-admitting anything.

See the "Admission service" section of docs/architecture.md.
"""

from repro.serve.client import (
    RemoteConnection,
    RemoteNetwork,
    ServeClient,
    ServeError,
)
from repro.serve.protocol import SERVE_SCHEMA, MessageStream, ProtocolError
from repro.serve.server import AdmissionServer
from repro.serve.state import (
    SNAPSHOT_SCHEMA,
    load_snapshot,
    restore_network,
    snapshot_network,
    write_snapshot,
)

__all__ = [
    "SERVE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "AdmissionServer",
    "MessageStream",
    "ProtocolError",
    "RemoteConnection",
    "RemoteNetwork",
    "ServeClient",
    "ServeError",
    "load_snapshot",
    "restore_network",
    "snapshot_network",
    "write_snapshot",
]
