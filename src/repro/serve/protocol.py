"""Line-delimited JSON request/response protocol for the admission server.

One request per line, one response per line, strictly in order over one
connection:

* request — ``{"id": <int>, "op": <str>, ...operands}``
* success — ``{"id": <int>, "ok": true, ...results}``
* failure — ``{"id": <int>, "ok": false, "error": <str>}``

``id`` is a client-chosen correlation number echoed back verbatim.  The
payload is ``sort_keys`` JSON so a captured wire exchange is
deterministic for a deterministic workload.  Framing is a single ``\\n``;
JSON strings never contain raw newlines, so no escaping is needed.

Addresses are strings: ``host:port`` (last-colon split) selects TCP,
anything else is a filesystem path to a Unix domain socket.
"""

from __future__ import annotations

import json
import socket

#: Protocol schema tag, reported by the server's ``hello`` response.
SERVE_SCHEMA = "repro.serve/1"

#: Hard cap on one encoded message, as a guard against a corrupt or
#: hostile peer streaming an unterminated line into memory.  Generous:
#: the largest legitimate messages (snapshot paths, batched establishes,
#: metrics snapshots) are a few hundred KiB.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed message or violated framing rule."""


def encode_message(message: dict) -> bytes:
    """One wire frame: deterministic JSON plus the newline terminator."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"undecodable message: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_address(address: str) -> "tuple[str, int] | str":
    """``host:port`` → a TCP pair; anything else → a Unix socket path."""
    host, _, port = address.rpartition(":")
    if host and port.isdigit():
        return (host, int(port))
    return address


def create_listener(address: str, backlog: int = 8) -> socket.socket:
    """Bind and listen on ``address`` (TCP pair or Unix socket path)."""
    parsed = parse_address(address)
    if isinstance(parsed, tuple):
        sock = socket.create_server(parsed)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(parsed)
    sock.listen(backlog)
    return sock


def connect(address: str, timeout: "float | None" = None) -> socket.socket:
    """Connect to ``address``; raises ``OSError`` if nothing listens."""
    parsed = parse_address(address)
    if isinstance(parsed, tuple):
        return socket.create_connection(parsed, timeout=timeout)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(parsed)
    return sock


class MessageStream:
    """Blocking message pump over one connected socket.

    Both peers use the same pump: :meth:`send` writes one frame,
    :meth:`recv` returns the next complete frame (``None`` on clean EOF).
    Partial lines are buffered across reads, and several frames arriving
    in one segment are handed out one at a time.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()
        self._eof = False

    def send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def recv(self) -> "dict | None":
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return decode_message(line)
            if self._eof:
                if self._buffer:
                    raise ProtocolError("connection closed mid-message")
                return None
            if len(self._buffer) > MAX_MESSAGE_BYTES:
                raise ProtocolError(
                    f"unterminated message exceeds {MAX_MESSAGE_BYTES} bytes"
                )
            segment = self._sock.recv(1 << 16)
            if not segment:
                self._eof = True
            else:
                self._buffer.extend(segment)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
