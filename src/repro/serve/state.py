"""Versioned full-network snapshot codec (``repro.snapshot/1``).

Extends :meth:`~repro.network.reservations.ReservationLedger.snapshot_spares`
from a spare-pool copy into a complete, JSON-serialisable snapshot of a
:class:`~repro.core.bcp.BCPNetwork`: reservation pools, live connections
and their channels, the id counters, and the per-link multiplexing state.
A restarted server restores from it and continues **byte-identically** —
no re-admission, no re-routing, no drifted floats.

Why the mux section stores floats verbatim
------------------------------------------

Both mux backends maintain per-entry ``requirement`` values and the
per-link pool maximum *incrementally* (``+= bandwidth`` on add,
``-= bandwidth`` on remove).  IEEE arithmetic makes those values a
function of the full add/remove **history**, not of the resident entry
set — ``(x + b) - b != x`` in general.  Recomputing requirements from
the surviving entries after a restore would therefore produce subtly
different floats, different admission decisions, and a diverged run.

The codec instead records, per link, the resident entries **in
insertion order** with their exact requirement floats plus the link's
pool maximum.  Restore replays ``add`` per link in that order — the
integer structure (Π conflict sets, arena rows, distinct-row slots) is
order-deterministic and rebuilds identically — then transplants the
recorded floats over the freshly computed ones via
``set_requirements``.  The same reasoning covers the ledger: pools are
written back verbatim through
:meth:`~repro.network.reservations.ReservationLedger.restore_pools`,
which also bumps the ledger version (and the restore path bumps the
topology version) so route-cache floor tables, flat-view free mirrors,
and spare snapshots can never serve pre-restore state.

Snapshots are portable across mux backends: the kernel and reference
engines agree bit-for-bit on requirements, so a snapshot taken with the
vectorized kernel restores correctly into a ``--no-mux-kernel`` engine
and vice versa.
"""

from __future__ import annotations

import json

from repro.channels.channel import Channel, ChannelRole
from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.core.bcp import BCPNetwork
from repro.core.dconnection import ConnectionState, DConnection
from repro.routing.paths import Path

#: Snapshot schema tag; bump on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.snapshot/1"


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_channel(channel: Channel) -> dict:
    return {
        "id": channel.channel_id,
        "serial": channel.serial,
        "nodes": list(channel.path.nodes),
        "mux_degree": channel.mux_degree,
    }


def _encode_connection(connection: DConnection) -> dict:
    traffic = connection.traffic
    delay = connection.delay_qos
    ft = connection.ft_qos
    return {
        "id": connection.connection_id,
        "source": connection.source,
        "destination": connection.destination,
        "traffic": {
            "bandwidth": traffic.bandwidth,
            "max_message_size": traffic.max_message_size,
            "max_message_rate": traffic.max_message_rate,
        },
        "delay_qos": {
            "slack_hops": delay.slack_hops,
            "per_channel_baseline": delay.per_channel_baseline,
        },
        "ft_qos": {
            "num_backups": ft.num_backups,
            "mux_degree": ft.mux_degree,
            "required_pr": ft.required_pr,
            "max_backups": ft.max_backups,
        },
        "state": connection.state.name,
        "achieved_pr": connection.achieved_pr,
        "primary": _encode_channel(connection.primary),
        "backups": [_encode_channel(backup) for backup in connection.backups],
    }


def snapshot_network(network: BCPNetwork) -> dict:
    """The complete restorable state of ``network`` as a JSON-ready dict.

    Deterministic: connections in establishment order, links in
    ``topology.links()`` order, mux entries in per-link insertion order,
    every float verbatim.  Two networks with identical histories produce
    byte-identical snapshots — the serve smoke gate relies on that.
    """
    topology = network.topology
    links = list(topology.links())
    link_index = {link: position for position, link in enumerate(links)}
    mux_rows = []
    for link, state in network.mux.link_states().items():
        entries = state.entries()
        if not entries:
            continue  # indistinguishable from an untouched link
        mux_rows.append(
            {
                "link": link_index[link],
                "entries": [
                    [entry.channel_id, entry.requirement] for entry in entries
                ],
                "spare_required": state.spare_required(),
            }
        )
    mux_rows.sort(key=lambda row: row["link"])
    return {
        "schema": SNAPSHOT_SCHEMA,
        "topology": {
            "name": topology.name,
            "links": [
                [link.src, link.dst, topology.capacity(link)] for link in links
            ],
        },
        "ledger": [list(pair) for pair in network.ledger.snapshot_pools()],
        "connections": [
            _encode_connection(connection)
            for connection in network.connections()
        ],
        "counters": {
            "next_channel_id": network.registry.next_id,
            "next_connection_id": network.engine.next_connection_id,
        },
        "mux": mux_rows,
    }


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _decode_channel(
    data: dict,
    connection_id: int,
    role: ChannelRole,
    traffic: TrafficSpec,
) -> Channel:
    return Channel(
        channel_id=data["id"],
        connection_id=connection_id,
        role=role,
        serial=data["serial"],
        path=Path(data["nodes"]),
        traffic=traffic,
        mux_degree=data["mux_degree"],
    )


def _decode_connection(data: dict) -> DConnection:
    traffic = TrafficSpec(**data["traffic"])
    connection_id = data["id"]
    primary = _decode_channel(
        data["primary"], connection_id, ChannelRole.PRIMARY, traffic
    )
    backups = [
        _decode_channel(backup, connection_id, ChannelRole.BACKUP, traffic)
        for backup in data["backups"]
    ]
    return DConnection(
        connection_id=connection_id,
        source=data["source"],
        destination=data["destination"],
        traffic=traffic,
        delay_qos=DelayQoS(**data["delay_qos"]),
        ft_qos=FaultToleranceQoS(**data["ft_qos"]),
        primary=primary,
        backups=backups,
        state=ConnectionState[data["state"]],
        achieved_pr=data["achieved_pr"],
    )


def _check_topology(network: BCPNetwork, snapshot: dict) -> list:
    recorded = snapshot["topology"]["links"]
    links = list(network.topology.links())
    actual = [
        [link.src, link.dst, network.topology.capacity(link)]
        for link in links
    ]
    if actual != recorded:
        raise ValueError(
            f"snapshot topology mismatch: snapshot has {len(recorded)} "
            f"links, network {network.topology.name!r} has {len(actual)} "
            f"(and/or endpoints or capacities differ) — restore needs a "
            f"topology built from the same spec"
        )
    return links


def restore_network(network: BCPNetwork, snapshot: dict) -> None:
    """Restore ``snapshot`` into a freshly built ``network`` in place.

    ``network`` must carry the same topology the snapshot was taken over
    (same links, same order, same capacities — build it from the same
    :class:`~repro.scenario.spec.TopologySpec`) and must not have
    admitted anything yet.  On return the network is observationally
    identical to the snapshotted one: every admission decision, pool
    size, audit result, and recovery evaluation from here on matches the
    uninterrupted original bit for bit.
    """
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"not a {SNAPSHOT_SCHEMA} snapshot: "
            f"schema={snapshot.get('schema')!r}"
        )
    links = _check_topology(network, snapshot)
    if network.num_connections or next(network.registry.channels(), None):
        raise ValueError(
            "restore_network needs a fresh network; this one already "
            f"holds {network.num_connections} connection(s)"
        )

    # 1. Connections and channels.  Channels register in channel-id
    # order: registration originally happened in allocation order, and
    # dicts preserve the survivors' relative order across deletions, so
    # this reproduces the live registry's iteration order exactly.
    connections = [
        _decode_connection(data) for data in snapshot["connections"]
    ]
    channels: dict[int, Channel] = {}
    for connection in connections:
        network._connections[connection.connection_id] = connection
        for channel in connection.channels:
            channels[channel.channel_id] = channel
    for channel in sorted(channels.values(), key=lambda c: c.channel_id):
        network.registry.add(channel)
    counters = snapshot["counters"]
    network.registry.next_id = counters["next_channel_id"]
    network.engine.next_connection_id = counters["next_connection_id"]

    # 2. Reservation pools, verbatim (bumps the ledger version).
    network.ledger.restore_pools(
        (pair[0], pair[1]) for pair in snapshot["ledger"]
    )

    # 3. Multiplexing state: replay add per link in recorded insertion
    # order (rebuilds the integer structure deterministically), then
    # transplant the recorded floats (see module docstring).
    mux = network.mux
    described: dict[int, tuple] = {}
    for row in snapshot["mux"]:
        state = mux.link_state(links[row["link"]])
        requirements: dict[int, float] = {}
        for channel_id, requirement in row["entries"]:
            backup = channels[channel_id]
            if channel_id not in described:
                mux.overlaps.register(channel_id)
                primary = network._connections[backup.connection_id].primary
                described[channel_id] = mux.describe_backup(backup, primary)
            components, count, mask = described[channel_id]
            state.add(
                channel_id,
                backup.bandwidth,
                backup.mux_degree,
                components,
                count,
                mask,
            )
            requirements[channel_id] = requirement
        state.set_requirements(requirements, row["spare_required"])

    # 4. Belt and braces: force every topology-keyed view (flat CSR
    # arrays, route caches, the capacity cache) to recompile too.
    network.topology.invalidate()


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def write_snapshot(network: BCPNetwork, path: str) -> dict:
    """Snapshot ``network`` to ``path`` (deterministic JSON); returns it."""
    snapshot = snapshot_network(network)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, sort_keys=True)
        handle.write("\n")
    return snapshot


def load_snapshot(path: str) -> dict:
    """Read a snapshot file; raises ``ValueError`` on a wrong schema."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or (
        snapshot.get("schema") != SNAPSHOT_SCHEMA
    ):
        raise ValueError(f"{path}: not a {SNAPSHOT_SCHEMA} snapshot file")
    return snapshot
