"""The always-on admission server.

One :class:`AdmissionServer` owns one warm
:class:`~repro.core.bcp.BCPNetwork` for the lifetime of the process:
compiled flat views, route-cache floor tables, the mux-kernel arena, and
the reservation ledger all persist across requests instead of being
rebuilt per CLI invocation.  Requests arrive over the line-delimited
JSON protocol of :mod:`repro.serve.protocol`; recovery queries fan out
across worker processes through
:func:`repro.parallel.evaluate_scenarios`'s deterministic sharding.

The server itself is single-threaded and handles one connection at a
time — admission is a serialized state machine by design (the
determinism contract), so a request pipeline, not request concurrency,
is the scaling axis.  Every operation's wall time lands in the
``serve.admission_latency`` / ``serve.recovery_delay`` histograms, whose
p50/p99 summaries feed :class:`~repro.obs.slo.SLOEngine` gating (the
serve-smoke CI job fails on breached targets).
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.channels.qos import DelayQoS, FaultToleranceQoS
from repro.channels.traffic import TrafficSpec
from repro.core.bcp import BCPNetwork, BatchRequest, EstablishmentError
from repro.faults.models import FailureScenario
from repro.obs.registry import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    get_registry,
)
from repro.obs.slo import SLOEngine
from repro.parallel import evaluate_scenarios
from repro.recovery.metrics import RecoveryStats
from repro.scenario.spec import ScenarioSpec
from repro.serve.protocol import (
    SERVE_SCHEMA,
    MessageStream,
    ProtocolError,
    create_listener,
    parse_address,
)
from repro.serve.state import load_snapshot, restore_network, write_snapshot


class AdmissionServer:
    """Serves establish/teardown/audit/recovery operations over a socket.

    Parameters
    ----------
    spec:
        The scenario cell pinning the topology (and, for churn clients,
        the workload defaults).  ``hello`` hands the spec to clients so
        they can rebuild an identical local topology for seeded pair and
        failure-link sampling.
    workers:
        Worker-process count for recovery evaluations (``None`` = one
        per CPU) — the :mod:`repro.parallel` fan-out.
    metrics:
        Target registry for the ``serve.*`` metrics (default: the
        session registry).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        workers: "int | None" = 1,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.spec = spec
        self.workers = workers
        self.registry = metrics if metrics is not None else get_registry()
        self.network = BCPNetwork(spec.topology.build())
        self._h_admission = self.registry.histogram("serve.admission_latency")
        self._h_recovery = self.registry.histogram("serve.recovery_delay")
        self._c_requests = self.registry.counter("serve.requests")
        self._c_established = self.registry.counter("serve.established")
        self._c_blocked = self.registry.counter("serve.blocked")
        self._c_teardowns = self.registry.counter("serve.teardowns")
        self._c_snapshots = self.registry.counter("serve.snapshots")
        self._c_restores = self.registry.counter("serve.restores")
        self._c_errors = self.registry.counter("serve.errors")
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def restore(self, path: str) -> int:
        """Load a ``repro.snapshot/1`` file into the warm network.

        Returns the number of restored connections.  Must run before any
        admission traffic (the codec refuses non-fresh networks).
        """
        restore_network(self.network, load_snapshot(path))
        self._c_restores.inc()
        return self.network.num_connections

    def slo_breaches(self, slos: "tuple[str, ...]") -> list[str]:
        """Evaluate declarative SLO targets against this server's metrics
        snapshot; one human-readable line per breached target."""
        engine = SLOEngine(slos)
        return [
            f"{breach.target.spec()} observed {breach.observed!r}"
            + (f" ({breach.detail})" if breach.detail else "")
            for breach in engine.breaches(self.registry.snapshot())
        ]

    # ------------------------------------------------------------------
    # the serve loop
    # ------------------------------------------------------------------
    def serve_forever(self, address: str) -> None:
        """Listen on ``address`` and serve until a ``shutdown`` request.

        Connections are accepted and served one at a time, each until
        its peer disconnects; a Unix socket path is unlinked on exit.
        """
        parsed = parse_address(address)
        listener = create_listener(address)
        self._running = True
        try:
            while self._running:
                conn, _ = listener.accept()
                try:
                    self.serve_connection(conn)
                finally:
                    conn.close()
        finally:
            listener.close()
            if isinstance(parsed, str):
                try:
                    os.unlink(parsed)
                except OSError:  # pragma: no cover - already gone
                    pass

    def serve_connection(self, sock) -> None:
        """Serve one connected peer until EOF or ``shutdown``.

        Public so tests and the in-process bench can run the full
        protocol over a ``socketpair`` without binding a listener.
        """
        stream = MessageStream(sock)
        while True:
            try:
                request = stream.recv()
            except ProtocolError as error:
                self._c_errors.inc()
                stream.send({"id": None, "ok": False, "error": str(error)})
                return
            if request is None:
                return
            stream.send(self.handle_request(request))
            if not self._running:
                return

    def handle_request(self, request: dict) -> dict:
        """Dispatch one request dict to its ``op`` handler."""
        self._c_requests.inc()
        request_id = request.get("id")
        op = request.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            self._c_errors.inc()
            return {
                "id": request_id,
                "ok": False,
                "error": f"unknown op {op!r}",
            }
        try:
            result = handler(self, request)
        except Exception as error:
            self._c_errors.inc()
            return {
                "id": request_id,
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        result["id"] = request_id
        result["ok"] = True
        return result

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_hello(self, request: dict) -> dict:
        return {
            "schema": SERVE_SCHEMA,
            "spec": self.spec.to_dict(),
            "workers": self.workers,
            "connections": self.network.num_connections,
        }

    def _op_ping(self, request: dict) -> dict:
        return {}

    def _op_shutdown(self, request: dict) -> dict:
        self._running = False
        return {"connections": self.network.num_connections}

    def _op_establish(self, request: dict) -> dict:
        requests = [
            BatchRequest(
                src=item["src"],
                dst=item["dst"],
                traffic=TrafficSpec(**item.get("traffic", {})),
                delay_qos=DelayQoS(**item.get("delay_qos", {})),
                ft_qos=FaultToleranceQoS(**item.get("ft_qos", {})),
            )
            for item in request["requests"]
        ]
        started = perf_counter()
        results = self.network.establish_batch(requests)
        elapsed = perf_counter() - started
        encoded = []
        for result in results:
            # Each request in the batch experienced the batch's wall
            # time as its admission latency.
            self._h_admission.record(elapsed)
            if isinstance(result, EstablishmentError):
                self._c_blocked.inc()
                encoded.append({"ok": False, "error": str(result)})
            else:
                self._c_established.inc()
                encoded.append(
                    {
                        "ok": True,
                        "connection_id": result.connection_id,
                        "total_hops": result.total_hops,
                    }
                )
        return {"results": encoded}

    def _op_teardown(self, request: dict) -> dict:
        self.network.teardown(request["connection_id"])
        self._c_teardowns.inc()
        return {"connections": self.network.num_connections}

    def _op_audit(self, request: dict) -> dict:
        return {"violations": self.network.audit_invariants()}

    def _op_num_connections(self, request: dict) -> dict:
        return {"value": self.network.num_connections}

    def _op_network_load(self, request: dict) -> dict:
        return {"value": self.network.network_load()}

    def _op_spare_fraction(self, request: dict) -> dict:
        return {"value": self.network.spare_fraction()}

    def _op_evaluate(self, request: dict) -> dict:
        topology = self.network.topology
        links = [topology.link(src, dst) for src, dst in request["links"]]
        scenarios = [FailureScenario.of_links([link]) for link in links]
        workers = request.get("workers", self.workers)
        started = perf_counter()
        private = MetricsRegistry()
        stats = evaluate_scenarios(
            self.network,
            scenarios,
            workers=workers,
            seed=request["seed"],
            metrics=private,
        )
        self._h_recovery.record(perf_counter() - started)
        return {
            "stats": {
                "scenarios": stats.scenarios,
                "failed_primaries": stats.failed_primaries,
                "fast_recovered": stats.fast_recovered,
                "mux_failures": stats.mux_failures,
                "channels_lost": stats.channels_lost,
                "excluded_connections": stats.excluded_connections,
                "r_fast_sum": stats._r_fast_sum,
                "r_fast_scenarios": stats._r_fast_scenarios,
            },
            "counters": private.snapshot()["counters"],
        }

    def _op_snapshot(self, request: dict) -> dict:
        write_snapshot(self.network, request["path"])
        self._c_snapshots.inc()
        return {
            "path": request["path"],
            "connections": self.network.num_connections,
        }

    def _op_metrics(self, request: dict) -> dict:
        return {"snapshot": self.registry.snapshot()}

    _OPS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "shutdown": _op_shutdown,
        "establish": _op_establish,
        "teardown": _op_teardown,
        "audit": _op_audit,
        "num_connections": _op_num_connections,
        "network_load": _op_network_load,
        "spare_fraction": _op_spare_fraction,
        "evaluate": _op_evaluate,
        "snapshot": _op_snapshot,
        "metrics": _op_metrics,
    }


def remote_recovery_stats(data: dict) -> RecoveryStats:
    """Rebuild a :class:`RecoveryStats` from an ``evaluate`` response."""
    return RecoveryStats(
        scenarios=data["scenarios"],
        failed_primaries=data["failed_primaries"],
        fast_recovered=data["fast_recovered"],
        mux_failures=data["mux_failures"],
        channels_lost=data["channels_lost"],
        excluded_connections=data["excluded_connections"],
        _r_fast_sum=data["r_fast_sum"],
        _r_fast_scenarios=data["r_fast_scenarios"],
    )


def counters_only_snapshot(counters: dict) -> dict:
    """A ``repro.metrics/1`` snapshot carrying only counters — the shape
    the churn engine absorbs after a remote recovery evaluation."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "counters": dict(counters),
        "gauges": {},
        "histograms": {},
        "series": {},
    }
