"""Client side of the admission service.

:class:`ServeClient` is the low-level RPC stream — one request, one
response, correlation-id checked.  :class:`RemoteNetwork` adapts it to
the network surface :class:`~repro.workload.churn.ChurnEngine` drives
(``establish_batch`` / ``teardown`` / audit / metrics / per-epoch
recovery evaluation), which turns the existing churn engine into a
remote load generator: every seeded draw happens client-side against a
local topology mirror rebuilt from the server's ``hello`` spec, so a
remote run's stats are byte-identical to a local run's.
"""

from __future__ import annotations

import time

from repro.core.bcp import EstablishmentError
from repro.network.components import LinkId
from repro.scenario.spec import ScenarioSpec
from repro.serve.protocol import MessageStream, connect
from repro.serve.server import remote_recovery_stats


class ServeError(Exception):
    """The server reported an operation failure (``ok: false``)."""


class ServeClient:
    """Blocking request/response client over one server connection."""

    def __init__(self, address: str, timeout: "float | None" = 30.0) -> None:
        self.address = address
        self.timeout = timeout
        self._stream: "MessageStream | None" = None
        self._next_id = 0

    def connect(self, retry_window: float = 0.0) -> dict:
        """(Re)connect and handshake; returns the ``hello`` response.

        ``retry_window`` keeps retrying the TCP/Unix connect for that
        many seconds — how a client rides through a server restart.
        """
        self.close()
        deadline = time.monotonic() + retry_window
        while True:
            try:
                self._stream = MessageStream(
                    connect(self.address, timeout=self.timeout)
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        return self.call("hello")

    def call(self, op: str, **params) -> dict:
        """One round trip; raises :class:`ServeError` on ``ok: false``."""
        if self._stream is None:
            raise ServeError(f"not connected to {self.address}")
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **params}
        self._stream.send(request)
        response = self._stream.recv()
        if response is None:
            raise ServeError(f"server closed the connection during {op!r}")
        if response.get("id") != self._next_id:
            raise ServeError(
                f"response correlation mismatch: sent id {self._next_id}, "
                f"got {response.get('id')!r}"
            )
        if not response.get("ok"):
            raise ServeError(response.get("error", f"{op} failed"))
        return response

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class RemoteConnection:
    """Client-side handle for one admitted D-connection.

    Carries exactly what the churn engine consumes: the id (for
    teardown scheduling) and the hop count (for the modelled
    establishment latency).
    """

    __slots__ = ("connection_id", "total_hops")

    def __init__(self, connection_id: int, total_hops: int) -> None:
        self.connection_id = connection_id
        self.total_hops = total_hops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteConnection(id={self.connection_id}, "
            f"hops={self.total_hops})"
        )


class RemoteNetwork:
    """The churn engine's network surface, backed by an admission server.

    The constructor handshakes, then rebuilds the server's topology
    locally from the ``hello`` spec — seeded node-pair and failure-link
    sampling need the node/link tables, and building them from the same
    :class:`~repro.scenario.spec.TopologySpec` guarantees both sides
    agree on insertion order.  All admission state stays server-side.
    """

    def __init__(self, client: ServeClient, retry_window: float = 0.0) -> None:
        self.client = client
        hello = client.connect(retry_window=retry_window)
        self.spec = ScenarioSpec.from_dict(hello["spec"])
        self.topology = self.spec.topology.build()

    def reconnect(self, retry_window: float = 30.0) -> dict:
        """Ride through a server restart; returns the new ``hello``."""
        return self.client.connect(retry_window=retry_window)

    # -- the ChurnEngine surface ---------------------------------------
    def establish_batch(self, requests) -> list:
        """Admit a batch remotely; per-request results in order, each a
        :class:`RemoteConnection` or an
        :class:`~repro.core.bcp.EstablishmentError`."""
        response = self.client.call(
            "establish",
            requests=[
                {
                    "src": request.src,
                    "dst": request.dst,
                    "traffic": {
                        "bandwidth": request.traffic.bandwidth,
                        "max_message_size": request.traffic.max_message_size,
                        "max_message_rate": request.traffic.max_message_rate,
                    },
                    "delay_qos": {
                        "slack_hops": request.delay_qos.slack_hops,
                        "per_channel_baseline": (
                            request.delay_qos.per_channel_baseline
                        ),
                    },
                    "ft_qos": {
                        "num_backups": request.ft_qos.num_backups,
                        "mux_degree": request.ft_qos.mux_degree,
                        "required_pr": request.ft_qos.required_pr,
                        "max_backups": request.ft_qos.max_backups,
                    },
                }
                for request in requests
            ],
        )
        return [
            RemoteConnection(item["connection_id"], item["total_hops"])
            if item["ok"]
            else EstablishmentError(item["error"])
            for item in response["results"]
        ]

    def teardown(self, connection_id: int) -> None:
        self.client.call("teardown", connection_id=connection_id)

    @property
    def num_connections(self) -> int:
        return self.client.call("num_connections")["value"]

    def network_load(self) -> float:
        return self.client.call("network_load")["value"]

    def spare_fraction(self) -> float:
        return self.client.call("spare_fraction")["value"]

    def audit_invariants(self) -> list[str]:
        """The server-side epoch audit, in one round trip."""
        return self.client.call("audit")["violations"]

    def evaluate_failures(
        self,
        links: "list[LinkId]",
        seed: int,
        workers: "int | None" = None,
    ) -> tuple:
        """Run a recovery evaluation server-side (its worker pool, its
        warm caches); returns ``(RecoveryStats, counters)`` exactly as
        the local evaluate-under-churn path produces them."""
        params = {
            "links": [[link.src, link.dst] for link in links],
            "seed": seed,
        }
        if workers is not None:
            params["workers"] = workers
        response = self.client.call("evaluate", **params)
        stats = remote_recovery_stats(response["stats"])
        return stats, response["counters"]

    # -- management helpers (not part of the engine surface) -----------
    def snapshot(self, path: str) -> dict:
        """Ask the server to write a ``repro.snapshot/1`` file."""
        return self.client.call("snapshot", path=path)

    def metrics_snapshot(self) -> dict:
        """The server's ``repro.metrics/1`` registry snapshot."""
        return self.client.call("metrics")["snapshot"]

    def shutdown(self) -> dict:
        return self.client.call("shutdown")


__all__ = [
    "RemoteConnection",
    "RemoteNetwork",
    "ServeClient",
    "ServeError",
]
