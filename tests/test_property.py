"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiplexing import LinkMuxState
from repro.core.overlap import OverlapPolicy, simultaneous_activation_probability
from repro.core.reliability import (
    p_muxf_upper_bound,
    pr_multiple_backups,
)
from repro.network.components import LinkId
from repro.network.reservations import ReservationLedger
from repro.network.topology import Topology
from repro.recovery.metrics import RecoveryStats
from repro.routing.paths import Path, shared_component_count
from repro.sim.engine import EventEngine
from repro.util.tables import format_table

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

node_lists = st.lists(
    st.integers(min_value=0, max_value=50), min_size=2, max_size=10, unique=True
)


@st.composite
def paths(draw):
    return Path(draw(node_lists))


@st.composite
def mux_operations(draw):
    """A random sequence of backup add/remove operations on one link."""
    count = draw(st.integers(min_value=1, max_value=12))
    operations = []
    live = []
    next_id = 0
    for _ in range(count):
        if live and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            operations.append(("remove", victim, None, None, None))
        else:
            nodes = draw(node_lists)
            degree = draw(st.integers(min_value=0, max_value=8))
            bandwidth = draw(
                st.floats(min_value=0.5, max_value=8.0, allow_nan=False)
            )
            operations.append(("add", next_id, nodes, degree, bandwidth))
            live.append(next_id)
            next_id += 1
    return operations


# ---------------------------------------------------------------------------
# paths
# ---------------------------------------------------------------------------


class TestPathProperties:
    @given(paths())
    def test_component_count_is_nodes_plus_links(self, path):
        assert len(path.components) == len(path.nodes) + path.hops

    @given(paths())
    def test_links_match_hops(self, path):
        assert len(path.links) == path.hops
        for link, (a, b) in zip(path.links, zip(path.nodes, path.nodes[1:])):
            assert link == LinkId(a, b)

    @given(paths(), paths())
    def test_shared_count_symmetric(self, a, b):
        assert shared_component_count(a, b) == shared_component_count(b, a)

    @given(paths(), paths())
    def test_shared_count_bounded(self, a, b):
        shared = shared_component_count(a, b)
        assert 0 <= shared <= min(len(a.components), len(b.components))

    @given(paths())
    def test_path_shares_everything_with_itself(self, path):
        assert shared_component_count(path, path) == len(path.components)

    @given(paths(), st.integers(min_value=0, max_value=60))
    def test_intersects_iff_membership(self, path, probe):
        assert path.intersects(frozenset({probe})) == (probe in path.components)


# ---------------------------------------------------------------------------
# overlap / S formula
# ---------------------------------------------------------------------------


class TestOverlapProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    def test_s_is_probability(self, ci, cj, shared, lam):
        shared = min(shared, ci, cj)
        s = simultaneous_activation_probability(ci, cj, shared, lam)
        assert -1e-12 <= s <= 1.0 + 1e-12

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=1e-6, max_value=0.2, allow_nan=False),
    )
    def test_s_monotone_in_overlap(self, ci, cj, lam):
        values = [
            simultaneous_activation_probability(ci, cj, shared, lam)
            for shared in range(min(ci, cj) + 1)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=30),
    )
    def test_zero_lambda_never_coactivates(self, ci, cj, shared):
        shared = min(shared, ci, cj)
        assert simultaneous_activation_probability(ci, cj, shared, 0.0) == 0.0

    @given(paths(), paths(), st.integers(min_value=0, max_value=10))
    def test_multiplexable_symmetric_at_equal_degree(self, a, b, degree):
        policy = OverlapPolicy()
        assert policy.multiplexable(a, b, degree) == policy.multiplexable(
            b, a, degree
        )


# ---------------------------------------------------------------------------
# multiplexing engine
# ---------------------------------------------------------------------------


class TestMuxStateProperties:
    @given(mux_operations())
    @settings(max_examples=60, deadline=None)
    def test_incremental_always_matches_recompute(self, operations):
        state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
        for op in operations:
            if op[0] == "add":
                _, cid, nodes, degree, bandwidth = op
                path = Path(nodes)
                state.add(cid, bandwidth, degree, path.components,
                          len(path.components))
            else:
                state.remove(op[1])
            incremental = state.spare_required()
            recomputed = state.spare_required_recomputed()
            assert abs(incremental - recomputed) < 1e-9

    @given(mux_operations())
    @settings(max_examples=60, deadline=None)
    def test_spare_bounded_by_sum_and_max(self, operations):
        state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
        live: dict[int, float] = {}
        for op in operations:
            if op[0] == "add":
                _, cid, nodes, degree, bandwidth = op
                path = Path(nodes)
                state.add(cid, bandwidth, degree, path.components,
                          len(path.components))
                live[cid] = bandwidth
            else:
                state.remove(op[1])
                live.pop(op[1], None)
            spare = state.spare_required()
            if live:
                assert spare >= max(live.values()) - 1e-9
                assert spare <= sum(live.values()) + 1e-9
            else:
                assert spare == 0.0

    @given(mux_operations())
    @settings(max_examples=40, deadline=None)
    def test_preview_equals_add(self, operations):
        state = LinkMuxState(LinkId("x", "y"), OverlapPolicy())
        for op in operations:
            if op[0] != "add":
                continue
            _, cid, nodes, degree, bandwidth = op
            path = Path(nodes)
            preview = state.preview_add(
                bandwidth, degree, path.components, len(path.components)
            )
            actual = state.add(
                cid, bandwidth, degree, path.components, len(path.components)
            )
            assert abs(preview - actual) < 1e-9


# ---------------------------------------------------------------------------
# reliability formulas
# ---------------------------------------------------------------------------


class TestReliabilityProperties:
    @given(
        st.integers(min_value=0, max_value=30),
        st.lists(st.integers(min_value=0, max_value=30), max_size=4),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_pr_is_probability(self, primary, backups, lam):
        value = pr_multiple_backups(primary, backups, lam)
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3),
        st.floats(min_value=1e-6, max_value=0.3, allow_nan=False),
    )
    def test_extra_backup_never_hurts(self, primary, backups, lam):
        fewer = pr_multiple_backups(primary, backups[:-1], lam)
        more = pr_multiple_backups(primary, backups, lam)
        assert more >= fewer - 1e-12

    @given(
        st.lists(st.integers(min_value=0, max_value=40), max_size=8),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_p_muxf_bound_is_probability(self, psi_sizes, nu):
        value = p_muxf_upper_bound(psi_sizes, nu)
        assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=5),
        st.floats(min_value=1e-6, max_value=0.1, allow_nan=False),
    )
    def test_p_muxf_monotone_in_psi(self, psi_sizes, nu):
        bigger = [size + 1 for size in psi_sizes]
        assert p_muxf_upper_bound(bigger, nu) >= p_muxf_upper_bound(
            psi_sizes, nu
        )


# ---------------------------------------------------------------------------
# ledger
# ---------------------------------------------------------------------------


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["reserve", "release", "spare"]),
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            ),
            max_size=30,
        )
    )
    def test_invariants_under_random_operations(self, operations):
        topology = Topology()
        link = topology.add_link("a", "b", 100.0)
        ledger = ReservationLedger(topology)
        reserved = 0.0
        for action, amount in operations:
            entry = ledger.ledger(link)
            if action == "reserve" and ledger.can_reserve_primary(link, amount):
                ledger.reserve_primary(link, amount)
                reserved += amount
            elif action == "release" and amount <= reserved:
                ledger.release_primary(link, amount)
                reserved -= amount
            elif action == "spare" and ledger.can_set_spare(link, amount):
                ledger.set_spare(link, amount)
            entry = ledger.ledger(link)
            assert entry.primary >= -1e-9
            assert entry.spare >= 0.0
            assert entry.reserved <= entry.capacity + 1e-6
            assert abs(entry.free - (entry.capacity - entry.reserved)) < 1e-9


# ---------------------------------------------------------------------------
# routing vs networkx oracle
# ---------------------------------------------------------------------------


@st.composite
def random_topologies(draw):
    """A random connected duplex topology with 4-12 nodes."""
    import networkx as nx

    count = draw(st.integers(min_value=4, max_value=12))
    extra = draw(st.integers(min_value=0, max_value=count * 2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    graph = nx.random_labeled_tree(count, seed=seed)
    rng = __import__("random").Random(seed)
    for _ in range(extra):
        a, b = rng.sample(range(count), 2)
        graph.add_edge(a, b)
    topology = Topology(name="random")
    for node in range(count):
        topology.add_node(node)
    for a, b in graph.edges:
        topology.add_duplex_link(a, b, 100.0)
    return topology


class TestRoutingOracle:
    @given(random_topologies(), st.integers(0, 11), st.integers(0, 11))
    @settings(max_examples=60, deadline=None)
    def test_bfs_matches_networkx_distances(self, topology, a, b):
        import networkx as nx

        from repro.routing import hop_distance, shortest_path

        nodes = sorted(topology.nodes())
        src, dst = nodes[a % len(nodes)], nodes[b % len(nodes)]
        if src == dst:
            return
        graph = topology.to_networkx()
        expected = nx.shortest_path_length(graph, src, dst)
        assert hop_distance(topology, src, dst) == expected
        assert shortest_path(topology, src, dst).hops == expected

    @given(random_topologies(), st.integers(0, 11), st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_ksp_first_path_optimal_and_sorted(self, topology, a, b):
        from repro.routing import hop_distance, k_shortest_paths

        nodes = sorted(topology.nodes())
        src, dst = nodes[a % len(nodes)], nodes[b % len(nodes)]
        if src == dst:
            return
        paths = k_shortest_paths(topology, src, dst, k=4)
        assert paths
        assert paths[0].hops == hop_distance(topology, src, dst)
        hops = [path.hops for path in paths]
        assert hops == sorted(hops)
        assert len(set(paths)) == len(paths)

    @given(random_topologies(), st.integers(0, 11), st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_sequential_disjoint_bounded_by_max_flow(self, topology, a, b):
        import networkx as nx

        from repro.routing import DisjointPathError, sequential_disjoint_paths

        nodes = sorted(topology.nodes())
        src, dst = nodes[a % len(nodes)], nodes[b % len(nodes)]
        if src == dst:
            return
        optimum = len(list(nx.node_disjoint_paths(
            topology.to_networkx(), src, dst
        )))
        try:
            found = sequential_disjoint_paths(topology, src, dst, optimum)
        except DisjointPathError as error:
            found = error.found
        # Greedy may find fewer than the max-flow optimum, never more; and
        # whatever it finds must be mutually disjoint.
        assert 1 <= len(found) <= optimum
        for i in range(len(found)):
            for j in range(i + 1, len(found)):
                assert set(found[i].links).isdisjoint(found[j].links)
                assert set(found[i].interior_nodes).isdisjoint(
                    found[j].interior_nodes
                )


# ---------------------------------------------------------------------------
# misc
# ---------------------------------------------------------------------------


class TestMiscProperties:
    @given(
        st.lists(
            st.lists(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("L", "N", "P", "Zs")
                    ),
                    max_size=8,
                ),
                min_size=2,
                max_size=2,
            ),
            max_size=8,
        )
    )
    def test_format_table_lines_equal_width(self, rows):
        text = format_table(["col_a", "col_b"], rows)
        lines = text.splitlines()
        widths = {len(line.rstrip()) <= len(lines[1]) for line in lines}
        assert len(lines) == 2 + len(rows)
        assert widths == {True}

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=10,
        )
    )
    def test_recovery_stats_merge_matches_sequential(self, scenario_counts):
        together = RecoveryStats()
        parts = []
        for failed, fast in scenario_counts:
            fast = min(fast, failed)
            together.add_scenario(failed, fast, failed - fast, 0, 0)
            part = RecoveryStats()
            part.add_scenario(failed, fast, failed - fast, 0, 0)
            parts.append(part)
        merged = RecoveryStats()
        for part in parts:
            merged = merged.merge(part)
        assert merged.failed_primaries == together.failed_primaries
        assert merged.fast_recovered == together.fast_recovered
        assert merged.r_fast == together.r_fast

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
    def test_event_engine_fires_in_sorted_order(self, delays):
        engine = EventEngine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(delays)
