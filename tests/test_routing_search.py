"""Tests for repro.routing: shortest paths, disjoint routing, Yen's KSP."""

from __future__ import annotations

import pytest

from repro.network import LinkId, Topology, mesh, ring, torus
from repro.routing import (
    DisjointPathError,
    NoPathError,
    RouteConstraints,
    hop_distance,
    k_shortest_paths,
    sequential_disjoint_paths,
    shortest_path,
)
from repro.routing.disjoint import max_disjoint_paths


class TestHopDistance:
    def test_adjacent(self):
        assert hop_distance(torus(4, 4), 0, 1) == 1

    def test_torus_wraparound_shortens(self):
        # 0 -> 3 in a 4-wide row: distance 1 via wrap, not 3.
        assert hop_distance(torus(4, 4), 0, 3) == 1

    def test_mesh_manhattan(self):
        assert hop_distance(mesh(4, 4), 0, 15) == 6

    def test_same_node_is_zero(self):
        assert hop_distance(torus(4, 4), 5, 5) == 0

    def test_disconnected_raises(self):
        topology = Topology()
        topology.add_node("a")
        topology.add_node("b")
        with pytest.raises(NoPathError):
            hop_distance(topology, "a", "b")


class TestShortestPath:
    def test_finds_shortest(self):
        path = shortest_path(torus(4, 4), 0, 5)
        assert path.hops == hop_distance(torus(4, 4), 0, 5)

    def test_deterministic(self):
        a = shortest_path(torus(8, 8), 0, 27)
        b = shortest_path(torus(8, 8), 0, 27)
        assert a == b

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            shortest_path(torus(4, 4), 3, 3)

    def test_excluded_node_avoided(self):
        topology = ring(6)
        constraints = RouteConstraints(excluded_nodes=frozenset({1}))
        path = shortest_path(topology, 0, 2, constraints)
        assert 1 not in path.nodes
        assert path.hops == 4  # forced the long way round

    def test_excluded_link_avoided(self):
        topology = ring(6)
        constraints = RouteConstraints(excluded_links=frozenset({LinkId(0, 1)}))
        path = shortest_path(topology, 0, 1, constraints)
        assert path.hops == 5

    def test_excluded_endpoint_fails(self):
        constraints = RouteConstraints(excluded_nodes=frozenset({0}))
        with pytest.raises(NoPathError):
            shortest_path(torus(4, 4), 0, 5, constraints)

    def test_max_hops_enforced(self):
        topology = ring(6)
        constraints = RouteConstraints(
            excluded_links=frozenset({LinkId(0, 1)}), max_hops=3
        )
        with pytest.raises(NoPathError):
            shortest_path(topology, 0, 1, constraints)

    def test_link_admission_predicate(self):
        topology = ring(6)
        constraints = RouteConstraints(
            link_admissible=lambda link: link != LinkId(0, 1)
        )
        assert shortest_path(topology, 0, 1, constraints).hops == 5

    def test_unknown_endpoint(self):
        with pytest.raises(NoPathError):
            shortest_path(torus(4, 4), 0, 999)


class TestDijkstraCosts:
    def test_cost_function_changes_route(self):
        topology = ring(4)  # 0-1-2-3-0
        # Make the direct hop 0->1 very expensive.
        cost = lambda link: 100.0 if link == LinkId(0, 1) else 1.0
        path = shortest_path(topology, 0, 1, cost=cost)
        assert path.nodes == (0, 3, 2, 1)

    def test_cost_respects_max_hops(self):
        topology = ring(4)
        cost = lambda link: 100.0 if link == LinkId(0, 1) else 1.0
        constraints = RouteConstraints(max_hops=1)
        path = shortest_path(topology, 0, 1, constraints, cost=cost)
        assert path.hops == 1  # forced onto the expensive direct link

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            shortest_path(ring(4), 0, 2, cost=lambda link: -1.0)

    def test_zero_costs_allowed(self):
        path = shortest_path(ring(4), 0, 2, cost=lambda link: 0.0)
        assert path.source == 0 and path.destination == 2


class TestSequentialDisjoint:
    def test_two_disjoint_in_ring(self):
        paths = sequential_disjoint_paths(ring(6), 0, 3, count=2)
        assert len(paths) == 2
        interiors = [set(path.interior_nodes) for path in paths]
        assert interiors[0].isdisjoint(interiors[1])
        links = [set(path.links) for path in paths]
        assert links[0].isdisjoint(links[1])

    def test_three_in_ring_impossible(self):
        with pytest.raises(DisjointPathError) as info:
            sequential_disjoint_paths(ring(6), 0, 3, count=3)
        assert len(info.value.found) == 2

    def test_first_path_is_shortest(self):
        paths = sequential_disjoint_paths(torus(4, 4), 0, 5, count=2)
        assert paths[0].hops == hop_distance(torus(4, 4), 0, 5)

    def test_torus_supports_three_disjoint(self):
        paths = sequential_disjoint_paths(torus(4, 4), 0, 5, count=3)
        assert len(paths) == 3

    def test_count_validation(self):
        with pytest.raises(ValueError):
            sequential_disjoint_paths(ring(6), 0, 3, count=0)

    def test_max_hops_limits_backups(self):
        # In a 6-ring the second disjoint path needs hops = 6 - shortest.
        constraints = RouteConstraints(max_hops=3)
        with pytest.raises(DisjointPathError):
            sequential_disjoint_paths(ring(6), 0, 2, count=2, constraints=constraints)


class TestMaxDisjoint:
    def test_matches_topology_connectivity(self):
        assert len(max_disjoint_paths(ring(6), 0, 3)) == 2
        assert len(max_disjoint_paths(torus(4, 4), 0, 5)) == 4

    def test_mesh_corner_limited_to_two(self):
        # Why the paper's 8x8 mesh cannot run double backups: corners have
        # degree 2, so at most 2 disjoint channels exist.
        assert len(max_disjoint_paths(mesh(8, 8), 0, 63)) == 2


class TestKShortestPaths:
    def test_first_is_shortest_and_ordered(self):
        paths = k_shortest_paths(torus(4, 4), 0, 5, k=5)
        assert len(paths) == 5
        hops = [path.hops for path in paths]
        assert hops == sorted(hops)
        assert hops[0] == hop_distance(torus(4, 4), 0, 5)

    def test_paths_distinct(self):
        paths = k_shortest_paths(torus(4, 4), 0, 5, k=8)
        assert len(set(paths)) == len(paths)

    def test_exhausts_small_graph(self):
        # The 4-ring has exactly two loopless paths between opposite nodes.
        paths = k_shortest_paths(ring(4), 0, 2, k=10)
        assert len(paths) == 2

    def test_no_path_returns_empty(self):
        topology = Topology()
        topology.add_node("a")
        topology.add_node("b")
        assert k_shortest_paths(topology, "a", "b", k=3) == []

    def test_respects_constraints(self):
        constraints = RouteConstraints(max_hops=1)
        paths = k_shortest_paths(ring(4), 0, 2, k=10, constraints=constraints)
        assert paths == []

    def test_k_validation(self):
        with pytest.raises(ValueError):
            k_shortest_paths(ring(4), 0, 2, k=0)

    def test_all_returned_are_valid_paths(self):
        topology = torus(4, 4)
        for path in k_shortest_paths(topology, 0, 15, k=6):
            path.validate(topology)
            assert path.source == 0 and path.destination == 15
