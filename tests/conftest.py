"""Shared fixtures: small networks and pre-loaded BCP instances."""

from __future__ import annotations

import pytest

from repro import BCPNetwork, FaultToleranceQoS, torus
from repro.network.generators import line, mesh, ring


@pytest.fixture
def torus4() -> "BCPNetwork":
    """An empty BCP network over a 4x4 torus (200 Mbps links)."""
    return BCPNetwork(torus(4, 4, capacity=200.0))


@pytest.fixture
def loaded_torus4() -> "BCPNetwork":
    """A 4x4 torus with all-pairs D-connections, single backup, mux=3."""
    network = BCPNetwork(torus(4, 4, capacity=200.0))
    qos = FaultToleranceQoS(num_backups=1, mux_degree=3)
    for src in range(16):
        for dst in range(16):
            if src != dst:
                network.establish(src, dst, ft_qos=qos)
    return network


@pytest.fixture
def mesh3() -> "BCPNetwork":
    """An empty BCP network over a 3x3 mesh."""
    return BCPNetwork(mesh(3, 3, capacity=300.0))


@pytest.fixture
def ring6() -> "BCPNetwork":
    """An empty BCP network over a 6-node ring (exactly two disjoint
    paths between any node pair)."""
    return BCPNetwork(ring(6, capacity=100.0))


@pytest.fixture
def line4() -> "BCPNetwork":
    """A 4-node line — no disjoint backup paths exist at all."""
    return BCPNetwork(line(4, capacity=100.0))
